"""Least-mean-squares fits for the paper's model equations.

The paper: "The involved coefficients can be computed via off-the-shelf
linear regression.  In our work, we use least mean squares fitting
technique for coefficient estimation."  Each fitter returns the model
object plus a :class:`FitReport` quantifying goodness of fit, and raises
:class:`~repro.errors.ProfilingError` on degenerate inputs instead of
silently producing garbage coefficients.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ProfilingError
from repro.core.model import CoolerModel, NodeCoefficients, PowerModel


@dataclass(frozen=True)
class FitReport:
    """Goodness-of-fit summary for one regression.

    Attributes
    ----------
    rmse:
        Root-mean-square residual, in the fitted quantity's unit.
    r_squared:
        Coefficient of determination (1.0 is a perfect fit).
    n_samples:
        Number of samples used.
    max_abs_error:
        Largest absolute residual.
    """

    rmse: float
    r_squared: float
    n_samples: int
    max_abs_error: float


def _least_squares(
    design: np.ndarray, target: np.ndarray, what: str
) -> tuple[np.ndarray, FitReport]:
    if design.shape[0] != target.shape[0]:
        raise ProfilingError(
            f"{what}: design has {design.shape[0]} rows but target has "
            f"{target.shape[0]}"
        )
    if design.shape[0] < design.shape[1]:
        raise ProfilingError(
            f"{what}: {design.shape[0]} samples cannot determine "
            f"{design.shape[1]} coefficients"
        )
    if not (np.all(np.isfinite(design)) and np.all(np.isfinite(target))):
        raise ProfilingError(f"{what}: non-finite values in the data")
    # Columns (other than an intercept) must actually vary.
    for col in range(design.shape[1]):
        column = design[:, col]
        if np.allclose(column, column[0]) and not np.allclose(column, 1.0):
            raise ProfilingError(
                f"{what}: regressor column {col} is constant; the sweep "
                "did not vary it"
            )
    coef, _, rank, _ = np.linalg.lstsq(design, target, rcond=None)
    if rank < design.shape[1]:
        raise ProfilingError(f"{what}: design matrix is rank-deficient")
    residuals = target - design @ coef
    ss_res = float(np.sum(residuals**2))
    ss_tot = float(np.sum((target - target.mean()) ** 2))
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0.0 else 1.0
    report = FitReport(
        rmse=float(np.sqrt(ss_res / target.shape[0])),
        r_squared=r2,
        n_samples=int(target.shape[0]),
        max_abs_error=float(np.max(np.abs(residuals))) if residuals.size else 0.0,
    )
    return coef, report


def fit_power_model(
    loads: np.ndarray, powers: np.ndarray
) -> tuple[PowerModel, FitReport]:
    """Fit Eq. 9 (``P = w1 * L + w2``) from a load/power sweep."""
    loads = np.asarray(loads, dtype=float)
    powers = np.asarray(powers, dtype=float)
    design = np.column_stack([loads, np.ones_like(loads)])
    coef, report = _least_squares(design, powers, "power model")
    w1, w2 = float(coef[0]), float(coef[1])
    if w1 <= 0.0:
        raise ProfilingError(
            f"power fit produced non-positive w1={w1:.4f}; the sweep data "
            "does not show power increasing with load"
        )
    return PowerModel(w1=w1, w2=max(0.0, w2)), report


def fit_node_coefficients(
    t_ac: np.ndarray, power: np.ndarray, t_cpu: np.ndarray
) -> tuple[NodeCoefficients, FitReport]:
    """Fit Eq. 8 (``T_cpu = alpha*T_ac + beta*P + gamma``) for one machine.

    The sweep must vary both the cooling set point and the machine's load
    (the paper profiles each machine at several set points and load
    levels).
    """
    t_ac = np.asarray(t_ac, dtype=float)
    power = np.asarray(power, dtype=float)
    t_cpu = np.asarray(t_cpu, dtype=float)
    design = np.column_stack([t_ac, power, np.ones_like(t_ac)])
    coef, report = _least_squares(design, t_cpu, "thermal model")
    alpha, beta, gamma = (float(c) for c in coef)
    if alpha <= 0.0 or beta <= 0.0:
        raise ProfilingError(
            f"thermal fit produced alpha={alpha:.4f}, beta={beta:.4f}; "
            "both must be positive for a physical machine"
        )
    return NodeCoefficients(alpha=alpha, beta=beta, gamma=gamma), report


def fit_cooler_model(
    t_sp: np.ndarray,
    t_ac: np.ndarray,
    p_ac: np.ndarray,
    server_power: np.ndarray,
    t_ac_min: float,
    t_ac_max: float,
) -> tuple[CoolerModel, FitReport]:
    """Fit Eq. 10 and the set-point actuation map from cooler telemetry.

    Two regressions share the same sweep data:

    - ``P_ac = c_f_ac * (T_SP - T_ac) + idle`` — Eq. 10 with an intercept
      for the blower floor, giving the lumped slope the optimizer's cost
      model needs;
    - ``T_SP = e0 + e1 * T_ac + e2 * sum(P)`` — the actuation map used to
      translate a desired supply temperature into a set-point command
      ("we empirically measured the relation between T_ac and the set
      point ... at different server loads").

    The returned :class:`FitReport` describes the Eq. 10 fit (the one the
    energy model uses).
    """
    t_sp = np.asarray(t_sp, dtype=float)
    t_ac = np.asarray(t_ac, dtype=float)
    p_ac = np.asarray(p_ac, dtype=float)
    server_power = np.asarray(server_power, dtype=float)
    delta = t_sp - t_ac
    if np.allclose(delta, 0.0):
        raise ProfilingError(
            "cooler fit: T_SP equals T_AC throughout the sweep"
        )
    design_p = np.column_stack([delta, np.ones_like(delta)])
    coef, report = _least_squares(design_p, p_ac, "cooler power model")
    c_f_ac = float(coef[0])
    idle_power = max(0.0, float(coef[1]))
    if c_f_ac <= 0.0:
        raise ProfilingError(
            f"cooler fit produced non-positive c_f_ac={c_f_ac:.3f}"
        )
    design = np.column_stack(
        [np.ones_like(t_ac), t_ac, server_power]
    )
    act_coef, _ = _least_squares(design, t_sp, "actuation map")
    e0, e1, e2 = (float(c) for c in act_coef)
    if e1 <= 0.0:
        raise ProfilingError(
            f"actuation fit produced non-increasing map (e1={e1:.4f})"
        )
    model = CoolerModel(
        c_f_ac=c_f_ac,
        actuation_offset=e0,
        actuation_t_ac=e1,
        actuation_power=e2,
        t_ac_min=t_ac_min,
        t_ac_max=t_ac_max,
        idle_power=idle_power,
    )
    return model, report
