"""Profiling: estimate the model coefficients from (simulated) measurements.

Mirrors Section IV-A of the paper.  The coefficients of the power law
(Eq. 9), of each machine's thermal model (Eq. 8), and of the cooler
(Eq. 10) are "computed via off-the-shelf linear regression" from load
sweeps — here run against the simulated testbed through the same noisy
sensors the paper used (Watts-up-Pro meters, lm-sensors).
"""

from repro.profiling.campaign import (
    CampaignConfig,
    ProfilingCampaign,
    ProfilingResult,
)
from repro.profiling.online import (
    OnlinePowerEstimator,
    OnlineThermalEstimator,
    RecursiveLeastSquares,
)
from repro.profiling.regression import (
    FitReport,
    fit_cooler_model,
    fit_node_coefficients,
    fit_power_model,
)

__all__ = [
    "FitReport",
    "fit_power_model",
    "fit_node_coefficients",
    "fit_cooler_model",
    "CampaignConfig",
    "ProfilingCampaign",
    "ProfilingResult",
    "RecursiveLeastSquares",
    "OnlinePowerEstimator",
    "OnlineThermalEstimator",
]
