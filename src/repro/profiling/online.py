"""Online model estimation: recursive least squares with forgetting.

The paper profiles once, offline.  Real machine rooms drift — heatsinks
gather dust (``theta`` falls, so ``beta`` rises), seasons move the
building temperature behind ``gamma``, firmware changes shift the power
curve.  This module provides the standard operational complement: a
recursive least-squares (RLS) estimator with exponential forgetting that
refines the fitted coefficients from routine telemetry, so the
controller's model tracks the plant without re-running the campaign.

``RecursiveLeastSquares`` is the generic engine;
``OnlineThermalEstimator`` and ``OnlinePowerEstimator`` wrap it with the
paper's regressor layouts (Eq. 8 and Eq. 9) and produce the same model
objects the optimizer consumes.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.model import NodeCoefficients, PowerModel
from repro.errors import ConfigurationError, ProfilingError


class RecursiveLeastSquares:
    """Exponentially weighted recursive least squares.

    Parameters
    ----------
    n_params:
        Dimension of the coefficient vector.
    forgetting:
        Forgetting factor ``lambda`` in ``(0, 1]``; 1.0 weights all
        history equally, smaller values track drift faster at the cost
        of noisier estimates.  The effective memory is roughly
        ``1 / (1 - lambda)`` samples.
    initial_coefficients:
        Starting estimate (e.g. the offline campaign's fit); defaults to
        zeros.
    initial_covariance:
        Diagonal magnitude of the initial covariance.  Large values mean
        "trust the data, not the prior".
    """

    def __init__(
        self,
        n_params: int,
        forgetting: float = 0.995,
        initial_coefficients: Optional[Sequence[float]] = None,
        initial_covariance: float = 1e4,
    ) -> None:
        if n_params < 1:
            raise ConfigurationError(
                f"n_params must be positive, got {n_params}"
            )
        if not 0.0 < forgetting <= 1.0:
            raise ConfigurationError(
                f"forgetting must be in (0, 1], got {forgetting}"
            )
        if initial_covariance <= 0.0:
            raise ConfigurationError(
                f"initial_covariance must be positive, got {initial_covariance}"
            )
        self.n_params = n_params
        self.forgetting = forgetting
        if initial_coefficients is None:
            self.coefficients = np.zeros(n_params)
        else:
            arr = np.asarray(initial_coefficients, dtype=float)
            if arr.shape != (n_params,):
                raise ConfigurationError(
                    f"expected {n_params} initial coefficients, got {arr.shape}"
                )
            self.coefficients = arr.copy()
        self.covariance = np.eye(n_params) * initial_covariance
        self.samples_seen = 0

    def update(self, regressors: Sequence[float], target: float) -> float:
        """Fold in one sample; returns the pre-update prediction residual."""
        x = np.asarray(regressors, dtype=float)
        if x.shape != (self.n_params,):
            raise ConfigurationError(
                f"expected {self.n_params} regressors, got {x.shape}"
            )
        if not (np.all(np.isfinite(x)) and np.isfinite(target)):
            raise ProfilingError("non-finite sample fed to RLS")
        lam = self.forgetting
        px = self.covariance @ x
        gain = px / (lam + float(x @ px))
        residual = float(target - x @ self.coefficients)
        self.coefficients = self.coefficients + gain * residual
        self.covariance = (
            self.covariance - np.outer(gain, px)
        ) / lam
        self.samples_seen += 1
        return residual

    def predict(self, regressors: Sequence[float]) -> float:
        """Model output for one regressor vector."""
        x = np.asarray(regressors, dtype=float)
        return float(x @ self.coefficients)


class OnlinePowerEstimator:
    """Tracks the Eq. 9 power law from (load, power) telemetry."""

    def __init__(
        self,
        initial: Optional[PowerModel] = None,
        forgetting: float = 0.995,
    ) -> None:
        start = None
        if initial is not None:
            start = [initial.w1, initial.w2]
        self._rls = RecursiveLeastSquares(
            2, forgetting=forgetting, initial_coefficients=start,
            initial_covariance=1.0 if initial is not None else 1e4,
        )

    def observe(self, load: float, power: float) -> float:
        """Fold in one telemetry sample; returns the residual (W)."""
        return self._rls.update([load, 1.0], power)

    @property
    def samples_seen(self) -> int:
        """Telemetry samples folded in so far."""
        return self._rls.samples_seen

    def current_model(self) -> PowerModel:
        """The tracked power law (raises until it is physical)."""
        w1, w2 = self._rls.coefficients
        if w1 <= 0.0:
            raise ProfilingError(
                f"online power fit not yet physical (w1={w1:.4f}); "
                "feed more samples"
            )
        return PowerModel(w1=float(w1), w2=float(max(0.0, w2)))


class OnlineThermalEstimator:
    """Tracks one machine's Eq. 8 coefficients from routine telemetry."""

    def __init__(
        self,
        initial: Optional[NodeCoefficients] = None,
        forgetting: float = 0.995,
    ) -> None:
        start = None
        if initial is not None:
            start = [initial.alpha, initial.beta, initial.gamma]
        self._rls = RecursiveLeastSquares(
            3, forgetting=forgetting, initial_coefficients=start,
            initial_covariance=1.0 if initial is not None else 1e4,
        )

    def observe(self, t_ac: float, power: float, t_cpu: float) -> float:
        """Fold in one telemetry sample; returns the residual (K)."""
        return self._rls.update([t_ac, power, 1.0], t_cpu)

    @property
    def samples_seen(self) -> int:
        """Telemetry samples folded in so far."""
        return self._rls.samples_seen

    def current_model(self) -> NodeCoefficients:
        """The tracked thermal coefficients (raises until physical)."""
        alpha, beta, gamma = self._rls.coefficients
        if alpha <= 0.0 or beta <= 0.0:
            raise ProfilingError(
                "online thermal fit not yet physical "
                f"(alpha={alpha:.4f}, beta={beta:.4f}); feed more samples"
            )
        return NodeCoefficients(
            alpha=float(alpha), beta=float(beta), gamma=float(gamma)
        )
