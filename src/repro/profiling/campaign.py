"""Profiling campaign: load sweeps against the simulated testbed.

Reproduces the paper's Section IV-A procedure:

- **Power model** — one machine is stepped through 0%, 10%, 25%, 50% and
  75% of its measured capacity, dwelling 15 minutes per level with short
  idle gaps, while a Watts-up-Pro meter samples at 1 Hz.  The smoothed
  trace is regressed onto Eq. 9 (``w1``, ``w2`` are shared by all machines
  since the hardware is identical).
- **Thermal model** — the whole rack is swept across several cooling set
  points and load levels; at each operating point the system settles
  (~200 s in the paper; we use the algebraic steady state, or full
  transient integration when ``transient=True``) and each machine's CPU
  temperature, power, and the supply-air temperature are recorded through
  noisy sensors.  Per-machine regression gives ``alpha_i, beta_i,
  gamma_i`` (Eq. 8).
- **Cooler model** — the same sweep provides ``(T_SP, T_ac, P_ac)``
  telemetry for fitting Eq. 10 and the set-point actuation map.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro import obs
from repro.errors import ConfigurationError, ProfilingError
from repro.core.model import CoolerModel, NodeCoefficients, PowerModel, SystemModel
from repro.power.server import ServerPowerModel
from repro.profiling.regression import (
    FitReport,
    fit_cooler_model,
    fit_node_coefficients,
    fit_power_model,
)
from repro.thermal.sensors import PowerMeter, TemperatureSensor, low_pass_filter
from repro.thermal.simulation import RoomSimulation


@dataclass(frozen=True)
class CampaignConfig:
    """Knobs of the profiling campaign (paper defaults).

    Attributes
    ----------
    power_levels:
        Utilization fractions for the power sweep (paper: 0, 10%, 25%,
        50%, 75%).
    power_dwell:
        Seconds spent at each power level (paper: 15 minutes).
    power_idle_gap:
        Idle seconds between levels ("left idle for a short period").
    set_points:
        Cooling set points (K) for the thermal sweep.
    thermal_loads:
        Utilization fractions for the thermal sweep.
    samples_per_point:
        Sensor readings averaged into samples at each operating point.
    settle_time:
        Transient settling time per point when ``transient`` integration
        is requested (paper: ~200 s).
    transient:
        Integrate the full ODEs to reach each operating point instead of
        using the algebraic steady state.  Slower, used by tests/examples
        to validate that both paths agree.
    filter_alpha:
        Exponential low-pass smoothing factor applied to the power trace.
    t_ac_max:
        Upper end of the supply band the optimizer may command, K.
    sensor_noise_scale:
        Multiplier on every sensor's noise standard deviation (1.0 is
        the realistic default; 0.0 gives noise-free fits, used by the
        profiling-robustness ablation).  Quantization is unaffected.
    staggered_points:
        Number of extra operating points per set point in which machines
        run *different* loads (alternating high/low).  Uniform-only sweeps
        leave each machine's power perfectly correlated with the room
        total, which silently folds room-level effects into ``beta_i``;
        staggering decorrelates them and measurably improves the fit.
    thermal_guard_band:
        Derating (K) subtracted from ``T_max`` in the fitted system model.
        The linear model is accurate only "with a few percent error"
        (paper, Fig. 3), so an operator optimizing exactly to ``T_max``
        would overshoot by the residual; the guard band absorbs it.  The
        evaluation still checks the *true* constraint.
    """

    power_levels: tuple[float, ...] = (0.0, 0.10, 0.25, 0.50, 0.75)
    power_dwell: float = 900.0
    power_idle_gap: float = 120.0
    set_points: tuple[float, ...] = (295.15, 297.15, 299.15, 301.15)
    thermal_loads: tuple[float, ...] = (0.0, 0.25, 0.50, 0.75, 1.0)
    samples_per_point: int = 20
    settle_time: float = 600.0
    transient: bool = False
    filter_alpha: float = 0.05
    t_ac_max: float = 302.15
    staggered_points: int = 2
    thermal_guard_band: float = 1.0
    sensor_noise_scale: float = 1.0

    def __post_init__(self) -> None:
        if not self.power_levels or not self.thermal_loads:
            raise ConfigurationError("sweeps must have at least one level")
        if any(not 0.0 <= f <= 1.0 for f in self.power_levels):
            raise ConfigurationError("power levels must be fractions in [0,1]")
        if any(not 0.0 <= f <= 1.0 for f in self.thermal_loads):
            raise ConfigurationError("thermal loads must be fractions in [0,1]")
        if len(self.set_points) < 2:
            raise ConfigurationError(
                "thermal sweep needs >= 2 set points to identify alpha"
            )
        if self.samples_per_point < 1:
            raise ConfigurationError("samples_per_point must be >= 1")
        if self.staggered_points < 0:
            raise ConfigurationError("staggered_points must be >= 0")
        if self.thermal_guard_band < 0.0:
            raise ConfigurationError("thermal_guard_band must be >= 0")
        if self.sensor_noise_scale < 0.0:
            raise ConfigurationError("sensor_noise_scale must be >= 0")


@dataclass(frozen=True)
class PowerTrace:
    """The Fig. 2 data: the staircase power-profiling trace."""

    time: np.ndarray
    load: np.ndarray
    true_power: np.ndarray
    measured: np.ndarray
    filtered: np.ndarray
    predicted: np.ndarray


@dataclass(frozen=True)
class ThermalTrace:
    """The Fig. 3 data for one machine: measured vs predicted stable temps."""

    machine: int
    t_ac: np.ndarray
    power: np.ndarray
    measured_t_cpu: np.ndarray
    predicted_t_cpu: np.ndarray


@dataclass(frozen=True)
class ProfilingResult:
    """Everything a campaign produces."""

    system_model: SystemModel
    power_report: FitReport
    node_reports: tuple[FitReport, ...]
    cooler_report: FitReport
    power_trace: PowerTrace
    thermal_traces: tuple[ThermalTrace, ...]


class ProfilingCampaign:
    """Runs the paper's profiling procedure against a simulated room.

    Parameters
    ----------
    simulation:
        The simulated machine room (ground truth hidden behind sensors).
    power_models:
        Per-machine ground-truth power laws (used to *generate* the watt
        draw the meters observe — the campaign itself only ever sees
        sensor readings).
    t_max:
        The CPU temperature constraint the resulting
        :class:`~repro.core.model.SystemModel` will carry, K.
    rng:
        Random generator for all sensor noise.
    config:
        Sweep parameters; defaults follow the paper.
    """

    def __init__(
        self,
        simulation: RoomSimulation,
        power_models: Sequence[ServerPowerModel],
        t_max: float,
        rng: np.random.Generator,
        config: Optional[CampaignConfig] = None,
    ) -> None:
        if len(power_models) != simulation.room.node_count:
            raise ConfigurationError(
                f"{simulation.room.node_count} nodes but "
                f"{len(power_models)} power models"
            )
        self.simulation = simulation
        self.power_models = list(power_models)
        self.t_max = t_max
        self.rng = rng
        self.config = config or CampaignConfig()
        scale = self.config.sensor_noise_scale
        self.power_meter = PowerMeter(rng=rng, noise_std=0.5 * scale)
        self.temp_sensor = TemperatureSensor(rng=rng, noise_std=0.3 * scale)
        # CPU temperatures come from lm-sensors (1 K steps); the cooling
        # unit's own supply-air probe is a finer instrument (0.1 K), as on
        # real CRAC line cards.
        self.supply_sensor = TemperatureSensor(
            rng=rng, noise_std=0.2 * scale, resolution=0.1
        )

    # ------------------------------------------------------------------ #
    # Power profiling (Fig. 2)
    # ------------------------------------------------------------------ #

    def profile_power(self) -> tuple[PowerModel, FitReport, PowerTrace]:
        """Step machine 0 through the load staircase and fit Eq. 9."""
        cfg = self.config
        machine = self.power_models[0]
        times, loads, true_p, measured = [], [], [], []
        t = 0.0

        def dwell(load: float, duration: float) -> None:
            nonlocal t
            power = machine.power(load)
            for _ in range(int(duration)):
                times.append(t)
                loads.append(load)
                true_p.append(power)
                measured.append(self.power_meter.read(power))
                t += 1.0

        for i, level in enumerate(cfg.power_levels):
            if i > 0 and cfg.power_idle_gap > 0:
                dwell(0.0, cfg.power_idle_gap)
            dwell(level * machine.capacity, cfg.power_dwell)

        time_arr = np.asarray(times)
        load_arr = np.asarray(loads)
        true_arr = np.asarray(true_p)
        meas_arr = np.asarray(measured)
        filt_arr = low_pass_filter(meas_arr, cfg.filter_alpha)
        # Drop the filter's warm-up transient after each level change.
        warm = max(10, int(3.0 / cfg.filter_alpha))
        stable = np.ones(len(time_arr), dtype=bool)
        change_points = np.flatnonzero(np.diff(load_arr) != 0.0) + 1
        for cp in np.concatenate([[0], change_points]):
            stable[cp : cp + warm] = False
        model, report = fit_power_model(load_arr[stable], filt_arr[stable])
        predicted = model.w1 * load_arr + model.w2
        trace = PowerTrace(
            time=time_arr,
            load=load_arr,
            true_power=true_arr,
            measured=meas_arr,
            filtered=filt_arr,
            predicted=predicted,
        )
        return model, report, trace

    # ------------------------------------------------------------------ #
    # Thermal + cooler profiling (Fig. 3)
    # ------------------------------------------------------------------ #

    def _point_powers(self, fractions: Sequence[float]) -> np.ndarray:
        """Ground-truth per-machine powers for a utilization pattern."""
        return np.array(
            [
                pm.power(f * pm.capacity)
                for pm, f in zip(self.power_models, fractions)
            ]
        )

    def _measure_point(
        self,
        powers: np.ndarray,
        t_cpu: np.ndarray,
        t_ac: float,
        p_ac: float,
    ) -> tuple[np.ndarray, np.ndarray, float, float, float]:
        """Sample the sensors at a solved operating point.

        The sampling order defines the sensor RNG streams, so batched and
        per-point solving produce identical measurements as long as the
        points are measured in the same order.
        """
        obs.count("profiling.operating_points")
        reps = self.config.samples_per_point
        t_cpu_meas = np.mean(
            [self.temp_sensor.read_many(t_cpu) for _ in range(reps)], axis=0
        )
        p_meas = np.mean(
            [self.power_meter.read_many(powers) for _ in range(reps)], axis=0
        )
        t_ac_meas = float(
            np.mean([self.supply_sensor.read(t_ac) for _ in range(reps)])
        )
        p_ac_meas = float(
            np.mean([self.power_meter.read(p_ac) for _ in range(reps)])
        )
        return t_cpu_meas, p_meas, t_ac_meas, p_ac_meas, float(p_meas.sum())

    def _observe_point(
        self, set_point: float, fractions: Sequence[float]
    ) -> tuple[np.ndarray, np.ndarray, float, float, float]:
        """Drive the room to one operating point; return sensor data.

        ``fractions`` gives each machine's utilization.  Returns
        ``(t_cpu_meas, p_meas, t_ac_meas, p_ac_meas, sum_p_meas)`` with
        per-sample averaging already applied.
        """
        n = self.simulation.room.node_count
        powers = self._point_powers(fractions)
        if self.config.transient:
            self.simulation.set_node_powers(powers, on_mask=[True] * n)
            self.simulation.set_set_point(set_point)
            self.simulation.run(self.config.settle_time)
            t_cpu = self.simulation.t_cpu.copy()
            t_ac = self.simulation.t_ac
            p_ac = self.simulation.cooling_power
        else:
            state = self.simulation.steady_state(
                powers=powers, on_mask=[True] * n, set_point=set_point
            )
            t_cpu = state.t_cpu
            t_ac = state.t_ac
            p_ac = state.p_ac
        return self._measure_point(powers, t_cpu, t_ac, p_ac)

    def profile_thermal(
        self,
    ) -> tuple[
        list[NodeCoefficients],
        list[FitReport],
        CoolerModel,
        FitReport,
        list[ThermalTrace],
    ]:
        """Sweep set points x loads; fit Eq. 8 per machine and Eq. 10."""
        cfg = self.config
        n = self.simulation.room.node_count
        t_ac_rows: list[float] = []
        t_sp_rows: list[float] = []
        p_ac_rows: list[float] = []
        sum_p_rows: list[float] = []
        per_node_tcpu: list[list[float]] = [[] for _ in range(n)]
        per_node_p: list[list[float]] = [[] for _ in range(n)]
        patterns: list[np.ndarray] = [
            np.full(n, fraction) for fraction in cfg.thermal_loads
        ]
        for s in range(cfg.staggered_points):
            # Alternating high/low loads (and the mirrored pattern) so
            # each machine's power decorrelates from the room total.
            high, low = 0.85, 0.25
            pattern = np.where(np.arange(n) % 2 == s % 2, high, low)
            patterns.append(pattern)
        points = [
            (sp, pattern) for sp in cfg.set_points for pattern in patterns
        ]
        solver = getattr(self.simulation, "steady_state_many", None)
        solved = None
        if not cfg.transient and solver is not None:
            # One vectorized solve for the whole sweep; measurements
            # still run point by point in the original order, so the
            # sensor RNG streams (and the fitted model) are bit-identical
            # to the per-point path.
            powers_matrix = np.stack(
                [self._point_powers(pattern) for _, pattern in points]
            )
            batch = solver(
                powers_matrix,
                np.ones(powers_matrix.shape, dtype=bool),
                np.array([sp for sp, _ in points]),
            )
            solved = [
                (
                    powers_matrix[idx],
                    batch.t_cpu[idx],
                    float(batch.t_ac[idx]),
                    float(batch.p_ac[idx]),
                )
                for idx in range(len(points))
            ]
        for idx, (sp, pattern) in enumerate(points):
            if solved is not None:
                t_cpu_m, p_m, t_ac_m, p_ac_m, sum_p = self._measure_point(
                    *solved[idx]
                )
            else:
                t_cpu_m, p_m, t_ac_m, p_ac_m, sum_p = self._observe_point(
                    sp, pattern
                )
            t_ac_rows.append(t_ac_m)
            t_sp_rows.append(sp)
            p_ac_rows.append(p_ac_m)
            sum_p_rows.append(sum_p)
            for i in range(n):
                per_node_tcpu[i].append(float(t_cpu_m[i]))
                per_node_p[i].append(float(p_m[i]))

        t_ac_arr = np.asarray(t_ac_rows)
        nodes: list[NodeCoefficients] = []
        reports: list[FitReport] = []
        traces: list[ThermalTrace] = []
        for i in range(n):
            p_arr = np.asarray(per_node_p[i])
            t_arr = np.asarray(per_node_tcpu[i])
            coeffs, report = fit_node_coefficients(t_ac_arr, p_arr, t_arr)
            nodes.append(coeffs)
            reports.append(report)
            traces.append(
                ThermalTrace(
                    machine=i,
                    t_ac=t_ac_arr.copy(),
                    power=p_arr,
                    measured_t_cpu=t_arr,
                    predicted_t_cpu=coeffs.alpha * t_ac_arr
                    + coeffs.beta * p_arr
                    + coeffs.gamma,
                )
            )
        cooler, cooler_report = fit_cooler_model(
            np.asarray(t_sp_rows),
            t_ac_arr,
            np.asarray(p_ac_rows),
            np.asarray(sum_p_rows),
            t_ac_min=self.simulation.cooler.t_ac_min,
            t_ac_max=cfg.t_ac_max,
        )
        return nodes, reports, cooler, cooler_report, traces

    # ------------------------------------------------------------------ #
    # Full campaign
    # ------------------------------------------------------------------ #

    def run(self) -> ProfilingResult:
        """Run both sweeps and assemble the fitted system model."""
        with obs.record_run(
            "profiling.campaign",
            inputs={
                "machines": self.simulation.room.node_count,
                "transient": self.config.transient,
            },
        ) as rec:
            with obs.timed("power_sweep"):
                power_model, power_report, power_trace = self.profile_power()
            with obs.timed("thermal_sweep"):
                nodes, node_reports, cooler, cooler_report, traces = (
                    self.profile_thermal()
                )
            with obs.timed("assemble"):
                system = SystemModel(
                    power=power_model,
                    nodes=tuple(nodes),
                    cooler=cooler,
                    t_max=self.t_max - self.config.thermal_guard_band,
                    capacities=tuple(pm.capacity for pm in self.power_models),
                )
            if rec is not None:
                rec.outcome.update(
                    power_r_squared=power_report.r_squared,
                    cooler_r_squared=cooler_report.r_squared,
                )
        return ProfilingResult(
            system_model=system,
            power_report=power_report,
            node_reports=tuple(node_reports),
            cooler_report=cooler_report,
            power_trace=power_trace,
            thermal_traces=tuple(traces),
        )
