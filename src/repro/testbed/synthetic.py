"""Hand-built fitted models for experimentation and testing.

Sometimes you want a :class:`~repro.core.model.SystemModel` with *known*
coefficients — no simulator, no profiling noise — to study the optimizer
in isolation.  :func:`make_system_model` builds one with a controlled
thermal gradient: machine 0 is the coolest (as at the bottom of the
rack), and the spread is a single parameter.
"""

from __future__ import annotations

from repro.core.model import (
    CoolerModel,
    NodeCoefficients,
    PowerModel,
    SystemModel,
)


def make_system_model(
    n: int = 4,
    w1: float = 1.5,
    w2: float = 40.0,
    t_max: float = 343.15,
    capacity: float = 40.0,
    alpha_spread: float = 0.3,
) -> SystemModel:
    """A fitted model with controlled coefficients.

    Machine ``i`` gets ``alpha = 0.95 - alpha_spread * i / (n - 1)`` and
    a matching ``gamma`` so lower-index machines are cooler, mirroring
    the rack geometry; ``beta`` rises slightly toward the top.  The
    cooler constants match the default testbed's fitted values.
    """
    nodes = []
    for i in range(n):
        frac = i / (n - 1) if n > 1 else 0.0
        alpha = 0.95 - alpha_spread * frac
        nodes.append(
            NodeCoefficients(
                alpha=alpha,
                beta=0.45 + 0.05 * frac,
                gamma=(1.0 - alpha) * 298.0,
            )
        )
    cooler = CoolerModel(
        c_f_ac=6700.0,
        actuation_offset=18.0,
        actuation_t_ac=0.94,
        actuation_power=0.00055,
        t_ac_min=283.15,
        t_ac_max=302.15,
        idle_power=3000.0,
    )
    return SystemModel(
        power=PowerModel(w1=w1, w2=w2),
        nodes=tuple(nodes),
        cooler=cooler,
        t_max=t_max,
        capacities=tuple([capacity] * n),
    )
