"""Ground-truth construction of the simulated testbed.

The paper's testbed: one rack of 20 Dell PowerEdge R210 machines in a
departmental machine room, cooled from the ceiling by a Liebert
Challenger 3000 with a controllable set point.  This module builds the
simulated equivalent with physically motivated constants:

- **Servers.**  Idle draw ~38 W, full-load draw ~98 W (R210-class), with
  a slight super-linear bend so the fitted affine law has realistic
  residuals.  Capacity is 40 tasks/s of the text-processing workload.
- **Thermals.**  CPU+heatsink heat capacity ~600 J/K with a CPU-to-air
  conductance ~2.26 W/K gives the ~200 s settling time the paper
  observes, and a full-load CPU rise of ~46 K above inlet.
- **Air paths.**  Cool air falls from the ceiling vent, so machines low
  on the rack breathe mostly supply air (supply fraction 0.95 at the
  bottom) while machines high up ingest more recirculated room air
  (0.55 at the top).  Machines near the vent also see slightly stronger
  airflow (the paper notes position "may also affect the air flow rate
  through the machine", Eq. 6), so the bottom of the rack is cooler on
  both the ``alpha``/``gamma`` and the ``beta`` channel — the spatial
  diversity the optimization exploits, and the reason the bottom-up
  baseline fills low machines first.
- **Cooling unit.**  3000-CFM-class unit: 1.4 m^3/s constant flow,
  12 kW capacity, efficiency 0.25, 3 kW constant blower, minimum supply
  temperature 10 C, internal PI loop regulating return air at the set
  point.
- **Room.**  A modest envelope conductance to the warmer building
  (110 W/K toward 32 C) makes colder room operation genuinely more
  expensive — the physical trade-off behind the paper's AC-temperature
  knob.

Per-machine jitter (flows, conductances, vent fractions) is drawn from
the injected RNG so that no two racks are identical but every build is
reproducible from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units
from repro.errors import ConfigurationError
from repro.power.server import ServerPowerModel
from repro.thermal.cooling import CoolingUnit
from repro.thermal.node import ComputeNodeThermal
from repro.thermal.room import MachineRoom


@dataclass(frozen=True)
class TestbedConfig:
    """Every ground-truth constant of the simulated rack.

    Defaults reproduce the paper-scale setup (20 machines); tests shrink
    ``n_machines`` for speed and the larger-room experiments grow it.
    """

    __test__ = False  # not a pytest class, despite the Test* name

    n_machines: int = 20
    # --- servers (Dell R210 class) ---
    capacity: float = 40.0  # tasks/s
    w1: float = 1.425  # W per task/s
    w2: float = 38.0  # W idle
    curvature: float = 0.002  # W per (task/s)^2
    boot_time: float = 60.0  # s
    # --- per-node thermals ---
    nu_cpu: float = 600.0  # J/K
    nu_box: float = 150.0  # J/K
    theta: float = 2.26  # W/K
    node_flow: float = 0.03  # m^3/s
    supply_fraction_bottom: float = 0.95
    supply_fraction_top: float = 0.55
    jitter: float = 0.10  # relative spread of per-node parameters
    # --- room ---
    room_volume: float = 50.0  # m^3
    envelope_conductance: float = 65.0  # W/K
    t_env: float = units.celsius_to_kelvin(32.0)
    # --- cooling unit (Liebert Challenger class) ---
    cooler_flow: float = 1.0  # m^3/s (~2100 CFM)
    cooler_efficiency: float = 0.25
    cooler_q_max: float = 12000.0  # W
    cooler_t_ac_min: float = units.celsius_to_kelvin(10.0)
    cooler_fan_power: float = 3000.0  # W
    initial_set_point: float = units.celsius_to_kelvin(24.0)
    # --- constraint ---
    t_max: float = units.celsius_to_kelvin(70.0)

    def __post_init__(self) -> None:
        if self.n_machines < 1:
            raise ConfigurationError(
                f"need at least one machine, got {self.n_machines}"
            )
        if not 0.0 < self.supply_fraction_top <= self.supply_fraction_bottom <= 1.0:
            raise ConfigurationError(
                "supply fractions must satisfy 0 < top <= bottom <= 1, got "
                f"top={self.supply_fraction_top}, "
                f"bottom={self.supply_fraction_bottom}"
            )
        if not 0.0 <= self.jitter < 0.5:
            raise ConfigurationError(
                f"jitter must be in [0, 0.5), got {self.jitter}"
            )
        # Worst case: every machine at the bottom's flow factor (1.10,
        # plus 5% spread) drawing the bottom supply fraction.
        drawn = (
            self.n_machines
            * self.node_flow
            * 1.10
            * 1.05
            * self.supply_fraction_bottom
        )
        if drawn >= self.cooler_flow:
            raise ConfigurationError(
                "node supply draws could exceed the cooler flow; increase "
                "cooler_flow or reduce n_machines/node_flow"
            )


def build_power_models(config: TestbedConfig) -> list[ServerPowerModel]:
    """Identical ground-truth power laws, one per machine (same hardware)."""
    return [
        ServerPowerModel(
            w1=config.w1,
            w2=config.w2,
            curvature=config.curvature,
            capacity=config.capacity,
        )
        for _ in range(config.n_machines)
    ]


def build_nodes(
    config: TestbedConfig, rng: np.random.Generator
) -> list[ComputeNodeThermal]:
    """Per-machine thermal ground truth with positional vent fractions.

    Machine 0 sits at the bottom of the rack (coolest); the supply
    fraction decreases linearly toward the top, with jitter on every
    parameter so the fitted coefficients genuinely differ per machine.
    """
    n = config.n_machines
    nodes = []
    for i in range(n):
        position = i / (n - 1) if n > 1 else 0.0
        fraction = config.supply_fraction_bottom + position * (
            config.supply_fraction_top - config.supply_fraction_bottom
        )
        fraction *= 1.0 + rng.uniform(-0.02, 0.02)
        fraction = float(np.clip(fraction, 0.05, 1.0))
        # Static pressure falls off with distance from the vent: bottom
        # machines breathe ~10% above nominal flow, top machines ~15%
        # below, with a little random spread on top.
        flow_factor = (1.10 - 0.25 * position) * (
            1.0 + rng.uniform(-0.05, 0.05)
        )
        nodes.append(
            ComputeNodeThermal(
                nu_cpu=config.nu_cpu
                * (1.0 + rng.uniform(-config.jitter, config.jitter) / 2.0),
                nu_box=config.nu_box,
                theta=config.theta
                * (1.0 + rng.uniform(-config.jitter, config.jitter) / 2.0),
                flow=config.node_flow * flow_factor,
                supply_fraction=fraction,
            )
        )
    return nodes


def build_room(
    config: TestbedConfig, rng: np.random.Generator
) -> MachineRoom:
    """The machine room around the rack."""
    return MachineRoom(
        nodes=tuple(build_nodes(config, rng)),
        nu_room=config.room_volume * units.C_AIR,
        envelope_conductance=config.envelope_conductance,
        t_env=config.t_env,
        supply_flow=config.cooler_flow,
    )


def build_cooler(config: TestbedConfig) -> CoolingUnit:
    """The Liebert-class cooling unit."""
    return CoolingUnit(
        supply_flow=config.cooler_flow,
        efficiency=config.cooler_efficiency,
        q_max=config.cooler_q_max,
        t_ac_min=config.cooler_t_ac_min,
        set_point=config.initial_set_point,
        fan_power=config.cooler_fan_power,
    )


def build_testbed(
    config: TestbedConfig | None = None,
    seed: int = 2012,
    sim_engine: str = "numpy",
) -> "Testbed":
    """Assemble the full simulated testbed from a config and seed.

    The returned :class:`~repro.testbed.experiment.Testbed` owns the
    ground truth; callers interact with it through profiling and policy
    evaluation, never by peeking at the true coefficients (tests do peek,
    deliberately, to validate the fits).  ``sim_engine`` selects the
    transient-integrator implementation ("numpy" or "python").
    """
    from repro.testbed.experiment import Testbed

    cfg = config or TestbedConfig()
    rng = np.random.default_rng(seed)
    room = build_room(cfg, rng)
    cooler = build_cooler(cfg)
    power_models = build_power_models(cfg)
    return Testbed(
        config=cfg,
        room=room,
        cooler=cooler,
        power_models=power_models,
        rng=rng,
        sim_engine=sim_engine,
    )
