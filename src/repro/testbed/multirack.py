"""Multi-rack machine rooms (extension of the single-rack testbed).

The paper positions its contribution at *machine* granularity, "within
or across racks", against prior work that stops at rack granularity
(e.g. thermal-aware scheduling formulated per rack, which "would stop at
trivially assigning all load to the same rack").  This module builds a
room with several racks at different distances from the cool-air vent —
so thermal diversity exists both *across* racks (distance) and *within*
each rack (height) — and provides the rack-granular baseline to compare
against.

Machine indexing: rack ``r``'s machines occupy the contiguous id range
``[r * machines_per_rack, (r + 1) * machines_per_rack)``, bottom first.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units
from repro.errors import ConfigurationError
from repro.testbed.rack import TestbedConfig, build_cooler, build_power_models
from repro.thermal.node import ComputeNodeThermal
from repro.thermal.room import MachineRoom


@dataclass(frozen=True)
class MultiRackConfig:
    """Geometry of a multi-rack room.

    Parameters
    ----------
    n_racks, machines_per_rack:
        Room layout; total machine count is the product.
    near_rack_fraction:
        Supply fraction of the *bottom* machine of the rack nearest the
        vent.
    far_rack_fraction:
        Same for the farthest rack.
    height_falloff:
        How much of a rack's bottom supply fraction is lost from bottom
        to top (the within-rack gradient).
    base:
        Per-machine and cooling-plant constants, reused from the
        single-rack testbed.  The cooling plant is scaled to the total
        machine count automatically.
    """

    n_racks: int = 3
    machines_per_rack: int = 10
    near_rack_fraction: float = 0.95
    far_rack_fraction: float = 0.65
    height_falloff: float = 0.30
    base: TestbedConfig = TestbedConfig()

    def __post_init__(self) -> None:
        if self.n_racks < 1 or self.machines_per_rack < 1:
            raise ConfigurationError(
                "need at least one rack with at least one machine"
            )
        if not (
            0.0
            < self.far_rack_fraction
            <= self.near_rack_fraction
            <= 1.0
        ):
            raise ConfigurationError(
                "need 0 < far_rack_fraction <= near_rack_fraction <= 1"
            )
        if not 0.0 <= self.height_falloff < self.far_rack_fraction:
            raise ConfigurationError(
                "height_falloff must be in [0, far_rack_fraction)"
            )

    @property
    def n_machines(self) -> int:
        """Total machines in the room."""
        return self.n_racks * self.machines_per_rack

    def rack_of(self, machine_id: int) -> int:
        """Which rack a machine id belongs to."""
        if not 0 <= machine_id < self.n_machines:
            raise ConfigurationError(
                f"machine id {machine_id} out of range"
            )
        return machine_id // self.machines_per_rack

    def rack_members(self, rack: int) -> list[int]:
        """The machine ids of one rack, bottom first."""
        if not 0 <= rack < self.n_racks:
            raise ConfigurationError(f"rack {rack} out of range")
        start = rack * self.machines_per_rack
        return list(range(start, start + self.machines_per_rack))


def build_multirack_testbed(
    config: MultiRackConfig | None = None, seed: int = 2012
):
    """Assemble a multi-rack simulated testbed.

    Returns the same :class:`~repro.testbed.experiment.Testbed` facade as
    the single-rack builder, so profiling and evaluation work unchanged.
    The rack layout itself is pure id arithmetic
    (:meth:`MultiRackConfig.rack_of` / :meth:`MultiRackConfig.rack_members`),
    so callers keep the :class:`MultiRackConfig` alongside the testbed.
    """
    from repro.testbed.experiment import Testbed

    cfg = config or MultiRackConfig()
    rng = np.random.default_rng(seed)
    scale = cfg.n_machines / 20.0
    base = TestbedConfig(
        n_machines=cfg.n_machines,
        capacity=cfg.base.capacity,
        w1=cfg.base.w1,
        w2=cfg.base.w2,
        curvature=cfg.base.curvature,
        nu_cpu=cfg.base.nu_cpu,
        nu_box=cfg.base.nu_box,
        theta=cfg.base.theta,
        node_flow=cfg.base.node_flow,
        room_volume=cfg.base.room_volume * scale,
        envelope_conductance=cfg.base.envelope_conductance
        * float(np.sqrt(scale)),
        t_env=cfg.base.t_env,
        cooler_flow=cfg.base.cooler_flow * scale,
        cooler_efficiency=cfg.base.cooler_efficiency,
        cooler_q_max=cfg.base.cooler_q_max * scale,
        cooler_t_ac_min=cfg.base.cooler_t_ac_min,
        cooler_fan_power=cfg.base.cooler_fan_power * scale,
        initial_set_point=cfg.base.initial_set_point,
        t_max=cfg.base.t_max,
    )

    nodes = []
    for machine in range(cfg.n_machines):
        rack = cfg.rack_of(machine)
        height = (machine % cfg.machines_per_rack) / max(
            1, cfg.machines_per_rack - 1
        )
        rack_pos = rack / max(1, cfg.n_racks - 1) if cfg.n_racks > 1 else 0.0
        bottom_fraction = cfg.near_rack_fraction + rack_pos * (
            cfg.far_rack_fraction - cfg.near_rack_fraction
        )
        fraction = bottom_fraction - cfg.height_falloff * height
        fraction *= 1.0 + rng.uniform(-0.02, 0.02)
        flow_factor = (1.10 - 0.25 * height) * (
            1.0 + rng.uniform(-0.05, 0.05)
        )
        nodes.append(
            ComputeNodeThermal(
                nu_cpu=base.nu_cpu * (1.0 + rng.uniform(-0.05, 0.05)),
                nu_box=base.nu_box,
                theta=base.theta * (1.0 + rng.uniform(-0.05, 0.05)),
                flow=base.node_flow * flow_factor,
                supply_fraction=float(np.clip(fraction, 0.05, 1.0)),
            )
        )
    room = MachineRoom(
        nodes=tuple(nodes),
        nu_room=base.room_volume * units.C_AIR,
        envelope_conductance=base.envelope_conductance,
        t_env=base.t_env,
        supply_flow=base.cooler_flow,
    )
    return Testbed(
        config=base,
        room=room,
        cooler=build_cooler(base),
        power_models=build_power_models(base),
        rng=rng,
    )
