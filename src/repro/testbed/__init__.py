"""The simulated 20-machine testbed (stand-in for the paper's rack).

:mod:`repro.testbed.rack` assembles the ground-truth physical system — one
rack of identical servers in a machine room with a chilled-water cooling
unit — from realistic constants documented in DESIGN.md.
:mod:`repro.testbed.experiment` runs control policies against it and
accounts energy, temperatures, and throughput.
"""

from repro.testbed.experiment import (
    ExperimentRecord,
    Testbed,
    WorkloadRunResult,
)
from repro.testbed.rack import TestbedConfig, build_testbed

__all__ = [
    "TestbedConfig",
    "build_testbed",
    "Testbed",
    "ExperimentRecord",
    "WorkloadRunResult",
]
