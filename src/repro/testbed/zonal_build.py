"""Builder for the zonal (stratified) testbed variant.

Same machines and cooling plant as the default rack, but the air model
is the stratified :class:`~repro.thermal.zonal.ZonalRoom`: machines
breathe their zone's air, and the bottom-of-rack-is-cooler structure
emerges from cold supply air pooling at the floor instead of being
parameterized.  Used by the model-robustness experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import units
from repro.errors import ConfigurationError
from repro.testbed.experiment import Testbed
from repro.testbed.rack import TestbedConfig, build_cooler, build_power_models
from repro.thermal.node import ComputeNodeThermal
from repro.thermal.zonal import ZonalRoom, ZonalRoomSimulation


@dataclass(frozen=True)
class ZonalConfig:
    """Stratification parameters on top of the base testbed constants."""

    n_zones: int = 5
    mixing_flow: float = 0.35  # m^3/s between adjacent zones
    base: TestbedConfig = TestbedConfig()

    def __post_init__(self) -> None:
        if self.n_zones < 2:
            raise ConfigurationError(
                "a stratified room needs at least two zones"
            )
        if self.mixing_flow < 0.0:
            raise ConfigurationError("mixing_flow must be non-negative")


def build_zonal_testbed(
    config: ZonalConfig | None = None, seed: int = 2012
) -> Testbed:
    """Assemble the zonal testbed (drop-in for :func:`build_testbed`)."""
    cfg = config or ZonalConfig()
    base = cfg.base
    rng = np.random.default_rng(seed)
    n = base.n_machines
    nodes = []
    zone_of = []
    for i in range(n):
        position = i / (n - 1) if n > 1 else 0.0
        zone_of.append(
            min(cfg.n_zones - 1, int(position * cfg.n_zones))
        )
        flow_factor = (1.10 - 0.25 * position) * (
            1.0 + rng.uniform(-0.05, 0.05)
        )
        nodes.append(
            ComputeNodeThermal(
                nu_cpu=base.nu_cpu * (1.0 + rng.uniform(-0.05, 0.05)),
                nu_box=base.nu_box,
                theta=base.theta * (1.0 + rng.uniform(-0.05, 0.05)),
                flow=base.node_flow * flow_factor,
                # Not used by the zonal air model, but kept physical so
                # the node validates; the zone assignment carries the
                # positional information instead.
                supply_fraction=0.5,
            )
        )
    room = ZonalRoom(
        nodes=tuple(nodes),
        zone_of=tuple(zone_of),
        n_zones=cfg.n_zones,
        zone_heat_capacity=base.room_volume
        * units.C_AIR
        / cfg.n_zones,
        mixing_flow=cfg.mixing_flow,
        envelope_conductance=base.envelope_conductance,
        t_env=base.t_env,
        supply_flow=base.cooler_flow,
    )
    cooler = build_cooler(base)
    return Testbed(
        config=base,
        room=room,
        cooler=cooler,
        power_models=build_power_models(base),
        rng=rng,
        simulation=ZonalRoomSimulation(room, cooler),
    )
