"""Run control policies against the simulated testbed and account energy.

:class:`Testbed` is the façade the evaluation uses: it owns the ground
truth (room, cooling unit, server power laws) and offers

- :meth:`Testbed.profile` — run the paper's profiling campaign, producing
  the fitted :class:`~repro.core.model.SystemModel` the policies operate
  on;
- :meth:`Testbed.evaluate` — drive one policy decision to steady state and
  record the *true* powers and temperatures (the numbers the figures
  plot);
- :meth:`Testbed.run_workload` — the full-stack variant: actually generate
  batch tasks, dispatch them through the load balancer, let servers
  process them, and feed the measured utilizations into the thermal
  simulation.  Used to verify the throughput constraint the paper checks
  ("application throughput was not affected by the energy saving
  scheme").
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.core.policies import PolicyDecision
from repro.power.server import ServerPowerModel
from repro.profiling.campaign import (
    CampaignConfig,
    ProfilingCampaign,
    ProfilingResult,
)
from repro.testbed.rack import TestbedConfig
from repro.thermal.cooling import CoolingUnit
from repro.thermal.room import MachineRoom
from repro.thermal.simulation import RoomSimulation, SteadyState
from repro.workload.balancer import Allocation, LoadBalancer
from repro.workload.cluster import Cluster, Server
from repro.workload.tasks import TaskGenerator


@dataclass(frozen=True)
class ExperimentRecord:
    """Ground-truth outcome of running one decision at steady state."""

    scenario: str
    total_load: float
    load_fraction: float
    machines_on: int
    t_sp: float
    t_ac: float
    t_room: float
    max_t_cpu: float
    server_power: float
    cooling_power: float
    total_power: float
    temperature_violated: bool
    regulated: bool

    def summary(self) -> str:
        """One-line human-readable record."""
        flag = " VIOLATION" if self.temperature_violated else ""
        return (
            f"{self.scenario:32s} load={self.load_fraction * 100.0:5.1f}% "
            f"on={self.machines_on:2d} Tsp={self.t_sp:6.2f}K "
            f"P={self.total_power:8.1f}W{flag}"
        )


@dataclass(frozen=True)
class WorkloadRunResult:
    """Outcome of a full-stack (task-level) run."""

    offered_load: float
    achieved_throughput: float
    utilizations: np.ndarray
    total_energy_joules: float
    mean_total_power: float
    max_t_cpu: float
    duration: float

    @property
    def throughput_ratio(self) -> float:
        """Achieved / offered throughput (1.0 means no loss)."""
        if self.offered_load <= 0.0:
            return 1.0
        return self.achieved_throughput / self.offered_load


class Testbed:
    """The simulated machine room plus its servers, as one facility."""

    __test__ = False  # not a pytest class, despite the Test* name

    def __init__(
        self,
        config: TestbedConfig,
        room: MachineRoom,
        cooler: CoolingUnit,
        power_models: Sequence[ServerPowerModel],
        rng: np.random.Generator,
        simulation=None,
        sim_engine: str = "numpy",
    ) -> None:
        if len(power_models) != room.node_count:
            raise ConfigurationError(
                f"{room.node_count} nodes but {len(power_models)} power models"
            )
        self.config = config
        self.room = room
        self.cooler = cooler
        self.power_models = list(power_models)
        self.rng = rng
        # A custom simulation (e.g. the zonal substrate) may be supplied;
        # it must honour the RoomSimulation interface.  ``sim_engine``
        # selects the transient-integrator implementation of the default
        # RoomSimulation ("numpy" or "python"; both bit-identical).
        self.simulation = (
            simulation
            if simulation is not None
            else RoomSimulation(room, cooler, engine=sim_engine)
        )

    @property
    def n_machines(self) -> int:
        """Number of machines on the rack."""
        return self.room.node_count

    @property
    def total_capacity(self) -> float:
        """Total cluster capacity, tasks/s."""
        return sum(pm.capacity for pm in self.power_models)

    def fresh_cooler(self) -> CoolingUnit:
        """A copy of the cooling unit with cleared PI state.

        Harness runs (workload replays, transition measurements,
        campaign scenarios) must never step the shared ground-truth
        cooler: doing so leaks integral state and set-point changes
        into whatever runs next, breaking same-seed replay determinism.
        Scenario runners simulate against this copy instead — same
        set point, PI state zeroed.
        """
        cooler = replace(self.cooler)
        cooler.reset()
        return cooler

    # ------------------------------------------------------------------ #
    # Profiling
    # ------------------------------------------------------------------ #

    def profile(
        self, campaign_config: Optional[CampaignConfig] = None
    ) -> ProfilingResult:
        """Run the Section IV-A profiling campaign on this testbed."""
        campaign = ProfilingCampaign(
            simulation=self.simulation,
            power_models=self.power_models,
            t_max=self.config.t_max,
            rng=self.rng,
            config=campaign_config,
        )
        return campaign.run()

    # ------------------------------------------------------------------ #
    # Steady-state policy evaluation
    # ------------------------------------------------------------------ #

    def true_server_powers(
        self, loads: Sequence[float], on_ids: Sequence[int]
    ) -> np.ndarray:
        """Ground-truth per-machine electrical power for a decision, W."""
        powers = np.zeros(self.n_machines)
        for i in on_ids:
            powers[i] = self.power_models[i].power(float(loads[i]))
        return powers

    def steady_state_for(self, decision: PolicyDecision) -> SteadyState:
        """Ground-truth steady state the room settles into under a
        decision."""
        on_mask = np.zeros(self.n_machines, dtype=bool)
        on_mask[list(decision.on_ids)] = True
        powers = self.true_server_powers(decision.loads, decision.on_ids)
        return self.simulation.steady_state(
            powers=powers, on_mask=on_mask, set_point=decision.t_sp
        )

    def _record_for(
        self, decision: PolicyDecision, state: SteadyState
    ) -> ExperimentRecord:
        """Fold a solved steady state into an :class:`ExperimentRecord`."""
        on_cpu = state.t_cpu[list(decision.on_ids)]
        max_t = float(np.max(on_cpu)) if len(decision.on_ids) else state.t_room
        return ExperimentRecord(
            scenario=decision.scenario,
            total_load=decision.total_load,
            load_fraction=decision.total_load / self.total_capacity,
            machines_on=decision.machines_on,
            t_sp=decision.t_sp,
            t_ac=state.t_ac,
            t_room=state.t_room,
            max_t_cpu=max_t,
            server_power=state.total_server_power,
            cooling_power=state.p_ac,
            total_power=state.total_power,
            temperature_violated=bool(max_t > self.config.t_max + 1e-6),
            regulated=state.regulated,
        )

    def evaluate(self, decision: PolicyDecision) -> ExperimentRecord:
        """Run one decision to steady state and record the true outcome."""
        return self._record_for(decision, self.steady_state_for(decision))

    def evaluate_many(
        self, decisions: Sequence[PolicyDecision]
    ) -> list[ExperimentRecord]:
        """Evaluate a whole sweep of decisions in one batched solve.

        Uses :meth:`RoomSimulation.steady_state_many` when the underlying
        simulation offers it (solutions are bit-identical to per-decision
        :meth:`evaluate` calls); falls back to scalar evaluation for
        custom substrates, e.g. the zonal simulation.
        """
        decisions = list(decisions)
        if not decisions:
            return []
        solver = getattr(self.simulation, "steady_state_many", None)
        if solver is None:
            return [self.evaluate(d) for d in decisions]
        n = self.n_machines
        powers = np.zeros((len(decisions), n))
        masks = np.zeros((len(decisions), n), dtype=bool)
        set_points = np.empty(len(decisions))
        for r, decision in enumerate(decisions):
            masks[r, list(decision.on_ids)] = True
            powers[r] = self.true_server_powers(
                decision.loads, decision.on_ids
            )
            set_points[r] = decision.t_sp
        batch = solver(powers, masks, set_points)
        return [
            self._record_for(decision, batch.point(r))
            for r, decision in enumerate(decisions)
        ]

    # ------------------------------------------------------------------ #
    # Full-stack workload run
    # ------------------------------------------------------------------ #

    def build_cluster(self) -> Cluster:
        """A fresh task-processing cluster over this rack's machines."""
        return Cluster(
            [
                Server(
                    server_id=i,
                    power_model=self.power_models[i],
                    boot_time=self.config.boot_time,
                )
                for i in range(self.n_machines)
            ]
        )

    def run_workload(
        self,
        decision: PolicyDecision,
        duration: float = 600.0,
        dt: float = 1.0,
        warmup: float = 120.0,
        deterministic_arrivals: bool = False,
    ) -> WorkloadRunResult:
        """Drive the decision with real task traffic.

        The generator offers ``decision.total_load`` tasks/s, the balancer
        splits them according to the decision's rates, servers process
        them, and each tick the servers' *measured* utilizations are
        converted to watts and fed to the thermal integrator.  Statistics
        are collected after ``warmup`` seconds.
        """
        if duration <= warmup:
            raise ConfigurationError(
                f"duration {duration} must exceed warmup {warmup}"
            )
        cluster = self.build_cluster()
        balancer = LoadBalancer(cluster)
        balancer.set_allocation(
            Allocation.build(
                list(decision.loads), self.n_machines, decision.on_ids
            )
        )
        generator = TaskGenerator(
            rng=self.rng,
            rate=decision.total_load,
            deterministic=deterministic_arrivals,
        )
        cooler = self.fresh_cooler()
        if isinstance(self.simulation, RoomSimulation):
            sim = RoomSimulation(
                self.room, cooler, engine=self.simulation.engine
            )
        else:
            sim = type(self.simulation)(self.room, cooler)
        sim.set_set_point(decision.t_sp)
        energy = 0.0
        power_samples: list[float] = []
        max_t_cpu = 0.0
        completed_after_warmup = 0
        elapsed = 0.0
        on_mask = np.array(cluster.on_mask())
        while elapsed < duration:
            balancer.dispatch_all(generator.tick(dt))
            done = cluster.tick(dt)
            powers = np.asarray(cluster.powers())
            on_mask = np.array(cluster.on_mask())
            sim.set_node_powers(powers, on_mask=on_mask)
            sim.step(dt)
            elapsed += dt
            if elapsed > warmup:
                completed_after_warmup += done
                total_p = sim.total_power
                power_samples.append(total_p)
                energy += total_p * dt
                on_idx = np.flatnonzero(on_mask)
                if on_idx.size:
                    max_t_cpu = max(
                        max_t_cpu, float(np.max(sim.t_cpu[on_idx]))
                    )
        window = duration - warmup
        throughput = completed_after_warmup / window
        utilizations = np.array(
            [server.utilization for server in cluster.servers]
        )
        return WorkloadRunResult(
            offered_load=decision.total_load,
            achieved_throughput=throughput,
            utilizations=utilizations,
            total_energy_joules=energy,
            mean_total_power=float(np.mean(power_samples)),
            max_t_cpu=max_t_cpu,
            duration=window,
        )
