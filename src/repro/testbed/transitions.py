"""Transition experiments: what reconfiguration actually costs.

The paper's analysis is steady-state; it notes that dynamic workloads —
where configurations change — are future work.  The adaptive controller
(:mod:`repro.core.controller`) re-plans anyway, so this module measures
what the steady-state analysis leaves out:

- **transition energy** — extra energy consumed between leaving the old
  steady state and settling into the new one (booting machines draw idle
  power before they can work; the room overshoots while the PI loop
  catches up);
- **thermal overshoot** — how far any CPU exceeds its new steady
  temperature (and whether it crosses ``T_max``) during the transient.

These numbers justify the controller's ``min_dwell`` guard: as long as
reconfigurations are spaced beyond the settling time, transition costs
stay a small fraction of the steady-state energy.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.policies import PolicyDecision
from repro.errors import ConfigurationError
from repro.thermal.simulation import RoomSimulation


@dataclass(frozen=True)
class TransitionResult:
    """Measured cost of switching between two decisions."""

    settle_time: float
    transition_energy_joules: float
    steady_energy_joules: float
    excess_energy_joules: float
    peak_t_cpu: float
    t_max_crossed: bool

    @property
    def excess_fraction(self) -> float:
        """Extra energy relative to the destination steady state."""
        if self.steady_energy_joules <= 0.0:
            return 0.0
        return self.excess_energy_joules / self.steady_energy_joules


def measure_transition(
    testbed,
    before: PolicyDecision,
    after: PolicyDecision,
    boot_time: float | None = None,
    dt: float = 0.5,
    max_duration: float = 7200.0,
    tolerance: float = 2e-3,
) -> TransitionResult:
    """Integrate the switch from ``before`` to ``after`` on the testbed.

    Machines joining the ON set spend ``boot_time`` seconds drawing idle
    power before taking load; machines leaving it stop instantly.  The
    transition is over when all temperature derivatives fall below
    ``tolerance`` K/s.

    Returns the energy spent during the transient, the energy the
    destination steady state would have spent over the same window, and
    the thermal peak.
    """
    if dt <= 0.0:
        raise ConfigurationError(f"dt must be positive, got {dt}")
    boot = testbed.config.boot_time if boot_time is None else boot_time

    sim = RoomSimulation(testbed.room, testbed.fresh_cooler())
    n = testbed.n_machines
    before_mask = np.zeros(n, dtype=bool)
    before_mask[list(before.on_ids)] = True
    after_mask = np.zeros(n, dtype=bool)
    after_mask[list(after.on_ids)] = True

    # Start exactly at the old steady state.
    start = testbed.steady_state_for(before)
    sim.t_cpu = start.t_cpu.copy()
    sim.t_box = start.t_box.copy()
    sim.t_room = start.t_room
    sim.set_set_point(before.t_sp)
    sim.set_node_powers(start.server_power, on_mask=before_mask)
    sim.run(5.0, dt)  # let the PI loop line up with the state

    # The switch: new set point immediately; booting machines draw idle
    # power; the new loads engage once every joiner has booted.
    sim.set_set_point(after.t_sp)
    joiners = sorted(set(after.on_ids) - set(before.on_ids))
    idle = np.array(
        [testbed.power_models[i].power(0.0) for i in range(n)]
    )
    after_powers = testbed.true_server_powers(after.loads, after.on_ids)

    energy = 0.0
    peak_t = float(np.max(start.t_cpu[before_mask])) if before_mask.any() else sim.t_room
    elapsed = 0.0
    while elapsed < max_duration:
        if elapsed < boot and joiners:
            powers = np.where(after_mask, idle, 0.0)
            # Machines staying on keep carrying the old load meanwhile.
            for i in before.on_ids:
                if after_mask[i]:
                    powers[i] = start.server_power[i]
                else:
                    powers[i] = 0.0
            mask = after_mask | before_mask
            powers = np.where(mask, np.where(powers > 0, powers, idle), 0.0)
            sim.set_node_powers(powers, on_mask=mask)
        else:
            sim.set_node_powers(after_powers, on_mask=after_mask)
        sim.step(dt)
        energy += sim.total_power * dt
        elapsed += dt
        on_idx = np.flatnonzero(after_mask | before_mask)
        if on_idx.size:
            peak_t = max(peak_t, float(np.max(sim.t_cpu[on_idx])))
        if elapsed > max(boot + 5.0 * dt, 10.0 * dt):
            d_cpu, d_box, d_room = sim._derivatives(
                sim.t_cpu, sim.t_box, sim.t_room, sim.t_ac
            )
            if (
                max(
                    float(np.max(np.abs(d_cpu))),
                    float(np.max(np.abs(d_box))),
                    abs(d_room),
                )
                < tolerance
            ):
                break

    target = testbed.steady_state_for(after)
    steady_energy = target.total_power * elapsed
    return TransitionResult(
        settle_time=elapsed,
        transition_energy_joules=energy,
        steady_energy_joules=steady_energy,
        excess_energy_joules=energy - steady_energy,
        peak_t_cpu=peak_t,
        t_max_crossed=bool(peak_t > testbed.config.t_max + 1e-6),
    )
