"""``python -m repro`` — the CLI entry point (see :mod:`repro.cli`)."""

import sys

from repro.cli import main

sys.exit(main())
