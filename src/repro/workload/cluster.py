"""Server and cluster lifecycle for the simulated testbed.

Each server has a processing capacity (tasks/s, i.e. work units per
second), a FIFO work queue, and an on/off lifecycle with a boot delay —
the operational cost of consolidation decisions.  Power draw follows the
server's :class:`~repro.power.server.ServerPowerModel` evaluated at the
work actually performed, so the workload layer and the thermal layer agree
on every watt.
"""

from __future__ import annotations

import enum
from collections import deque
from typing import Deque, Optional, Sequence

from repro.errors import ConfigurationError
from repro.power.server import ServerPowerModel
from repro.workload.tasks import Task


class ServerState(enum.Enum):
    """Lifecycle state of a server."""

    OFF = "off"
    BOOTING = "booting"
    ON = "on"
    FAILED = "failed"


class Server:
    """One machine of the cluster: queue, capacity, lifecycle, power.

    Parameters
    ----------
    server_id:
        Index of the machine (0 is the bottom of the rack).
    power_model:
        Ground-truth load-to-power law; also defines the capacity.
    boot_time:
        Seconds between :meth:`power_on` and being able to process work.
    """

    def __init__(
        self,
        server_id: int,
        power_model: ServerPowerModel,
        boot_time: float = 60.0,
    ) -> None:
        if boot_time < 0.0:
            raise ConfigurationError(
                f"boot_time must be non-negative, got {boot_time}"
            )
        self.server_id = server_id
        self.power_model = power_model
        self.boot_time = boot_time
        self.state = ServerState.ON
        self._boot_remaining = 0.0
        self._queue: Deque[Task] = deque()
        self._queued_work = 0.0
        self._partial_done = 0.0
        self._completed = 0
        self._completed_work = 0.0
        self._last_utilization = 0.0

    @property
    def capacity(self) -> float:
        """Maximum sustainable processing rate, work units per second."""
        return self.power_model.capacity

    @property
    def queue_length(self) -> int:
        """Number of tasks waiting (including the one in progress)."""
        return len(self._queue)

    @property
    def queued_work(self) -> float:
        """Outstanding work units in the queue."""
        return self._queued_work - self._partial_done

    @property
    def completed_tasks(self) -> int:
        """Total tasks finished by this server."""
        return self._completed

    @property
    def completed_work(self) -> float:
        """Total work units finished by this server."""
        return self._completed_work

    @property
    def utilization(self) -> float:
        """Fraction of capacity used during the last tick, in [0, 1]."""
        return self._last_utilization

    def power_on(self) -> None:
        """Begin booting (no-op if already on or booting).

        A failed machine cannot be brought back this way; it needs
        :meth:`repair` first.
        """
        if self.state is ServerState.FAILED:
            raise ConfigurationError(
                f"server {self.server_id} has failed and needs repair"
            )
        if self.state is ServerState.OFF:
            self.state = ServerState.BOOTING
            self._boot_remaining = self.boot_time

    def power_off(self) -> None:
        """Shut down immediately; queued tasks are returned by the caller's
        balancer on the next dispatch (we drop them here and report)."""
        if self.state is ServerState.FAILED:
            return
        self.state = ServerState.OFF
        self._boot_remaining = 0.0

    def fail(self) -> list[Task]:
        """Hard failure: the machine stops instantly.

        Returns the tasks that were queued (including the one in
        progress, which restarts from scratch elsewhere) so the caller
        can re-dispatch them.
        """
        orphans = self.drain()
        self.state = ServerState.FAILED
        self._boot_remaining = 0.0
        self._last_utilization = 0.0
        return orphans

    def repair(self) -> None:
        """Bring a failed machine back to the OFF state (field service)."""
        if self.state is ServerState.FAILED:
            self.state = ServerState.OFF

    def drain(self) -> list[Task]:
        """Remove and return all queued tasks (used before power-off so the
        balancer can re-dispatch them)."""
        tasks = list(self._queue)
        self._queue.clear()
        self._queued_work = 0.0
        self._partial_done = 0.0
        return tasks

    def submit(self, task: Task) -> None:
        """Enqueue one task.  Only legal on a running or booting server."""
        if self.state in (ServerState.OFF, ServerState.FAILED):
            raise ConfigurationError(
                f"cannot submit to {self.state.value} server {self.server_id}"
            )
        self._queue.append(task)
        self._queued_work += task.work

    def tick(self, dt: float) -> int:
        """Advance ``dt`` seconds; return the number of tasks completed."""
        if dt <= 0.0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        if self.state in (ServerState.OFF, ServerState.FAILED):
            self._last_utilization = 0.0
            return 0
        if self.state is ServerState.BOOTING:
            self._boot_remaining -= dt
            self._last_utilization = 0.0
            if self._boot_remaining <= 0.0:
                self.state = ServerState.ON
            return 0
        budget = self.capacity * dt
        done = 0
        used = 0.0
        while self._queue and budget > 0.0:
            head = self._queue[0]
            remaining = head.work - self._partial_done
            if remaining <= budget:
                budget -= remaining
                used += remaining
                self._queue.popleft()
                self._queued_work -= head.work
                self._partial_done = 0.0
                self._completed += 1
                self._completed_work += head.work
                done += 1
            else:
                self._partial_done += budget
                used += budget
                budget = 0.0
        self._last_utilization = used / (self.capacity * dt)
        return done

    def power(self) -> float:
        """Electrical power draw right now, W.

        A booting machine draws idle power; an off or failed machine
        draws zero.  Work performed maps through the ground-truth power
        law.
        """
        if self.state in (ServerState.OFF, ServerState.FAILED):
            return 0.0
        if self.state is ServerState.BOOTING:
            return self.power_model.w2
        return self.power_model.power(self._last_utilization * self.capacity)


class Cluster:
    """The full set of machines, bottom-of-rack first."""

    def __init__(self, servers: Sequence[Server]) -> None:
        if not servers:
            raise ConfigurationError("a cluster needs at least one server")
        ids = [s.server_id for s in servers]
        if ids != list(range(len(servers))):
            raise ConfigurationError(
                f"server ids must be 0..n-1 in order, got {ids}"
            )
        self.servers = list(servers)

    def __len__(self) -> int:
        return len(self.servers)

    def __getitem__(self, index: int) -> Server:
        return self.servers[index]

    @property
    def total_capacity(self) -> float:
        """Sum of per-server capacities of machines that exist (on or off)."""
        return sum(s.capacity for s in self.servers)

    @property
    def online_capacity(self) -> float:
        """Capacity of machines currently able to accept work."""
        return sum(
            s.capacity
            for s in self.servers
            if s.state in (ServerState.ON, ServerState.BOOTING)
        )

    def on_mask(self) -> list[bool]:
        """Per-server flag: drawing power (on or booting)."""
        return [
            s.state in (ServerState.ON, ServerState.BOOTING)
            for s in self.servers
        ]

    def failed_ids(self) -> list[int]:
        """Machines currently in the failed state."""
        return [
            s.server_id
            for s in self.servers
            if s.state is ServerState.FAILED
        ]

    def apply_on_set(self, on_ids: Sequence[int]) -> list[Task]:
        """Power exactly the machines in ``on_ids`` and shut down the rest.

        Returns the tasks drained from machines being shut down so the
        balancer can re-dispatch them.
        """
        wanted = set(on_ids)
        unknown = wanted - set(range(len(self.servers)))
        if unknown:
            raise ConfigurationError(f"unknown server ids: {sorted(unknown)}")
        failed = wanted & set(self.failed_ids())
        if failed:
            raise ConfigurationError(
                f"cannot power failed machines: {sorted(failed)}"
            )
        orphans: list[Task] = []
        for server in self.servers:
            if server.server_id in wanted:
                server.power_on()
            elif server.state in (ServerState.ON, ServerState.BOOTING):
                orphans.extend(server.drain())
                server.power_off()
        return orphans

    def tick(self, dt: float) -> int:
        """Advance every server; return total tasks completed this tick."""
        return sum(s.tick(dt) for s in self.servers)

    def powers(self) -> list[float]:
        """Per-server electrical power, W."""
        return [s.power() for s in self.servers]

    def total_power(self) -> float:
        """Total cluster electrical power, W."""
        return sum(self.powers())

    def total_completed(self) -> int:
        """Total tasks completed across the cluster."""
        return sum(s.completed_tasks for s in self.servers)
