"""Central load balancer: turns an allocation into a dispatch schedule.

The paper assumes cloud batch workloads whose total rate is steady and
whose distribution across machines is decided by a central balancer.  An
:class:`Allocation` is the interface between the optimization layer (which
produces per-machine rates ``L_i``) and the cluster (which executes them).
Dispatch uses smooth weighted round-robin, which realizes fractional
weights exactly in the long run with minimal short-term burstiness.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.workload.cluster import Cluster, ServerState
from repro.workload.tasks import Task


@dataclass(frozen=True)
class Allocation:
    """Per-server load assignment (tasks/s), the ``L_i`` of the paper.

    Servers absent from ``rates`` receive no load; whether they remain
    powered (idle) or are shut down is a separate consolidation decision
    recorded in ``on_ids``.
    """

    rates: tuple[float, ...]
    on_ids: tuple[int, ...]

    def __post_init__(self) -> None:
        if any(r < -1e-12 for r in self.rates):
            raise ConfigurationError(f"negative rate in allocation: {self.rates}")
        on = set(self.on_ids)
        if len(on) != len(self.on_ids):
            raise ConfigurationError("duplicate ids in on_ids")
        for i, rate in enumerate(self.rates):
            if rate > 1e-12 and i not in on:
                raise ConfigurationError(
                    f"server {i} has load {rate} but is not in the on-set"
                )

    @classmethod
    def build(
        cls,
        rates: Mapping[int, float] | Sequence[float],
        n_servers: int,
        on_ids: Optional[Sequence[int]] = None,
    ) -> "Allocation":
        """Construct from a dict or dense sequence of rates.

        ``on_ids`` defaults to every server with positive rate (pure
        consolidation); pass an explicit list to keep idle machines on.
        """
        dense = [0.0] * n_servers
        if isinstance(rates, Mapping):
            for i, rate in rates.items():
                if not 0 <= i < n_servers:
                    raise ConfigurationError(f"server id {i} out of range")
                dense[i] = float(rate)
        else:
            if len(rates) != n_servers:
                raise ConfigurationError(
                    f"expected {n_servers} rates, got {len(rates)}"
                )
            dense = [float(r) for r in rates]
        if on_ids is None:
            on_ids = [i for i, r in enumerate(dense) if r > 1e-12]
        return cls(rates=tuple(dense), on_ids=tuple(sorted(on_ids)))

    @property
    def total_rate(self) -> float:
        """Total load of this allocation, tasks/s."""
        return float(sum(self.rates))

    def rate_of(self, server_id: int) -> float:
        """Load assigned to one server, tasks/s."""
        return self.rates[server_id]

    def utilizations(self, capacities: Sequence[float]) -> np.ndarray:
        """Per-server utilization fractions under this allocation."""
        caps = np.asarray(capacities, dtype=float)
        return np.asarray(self.rates) / caps


class LoadBalancer:
    """Smooth weighted round-robin dispatcher over a cluster.

    Each dispatchable server accumulates credit proportional to its
    allocated rate; the task goes to the server with the highest credit,
    which then pays the total weight.  This is the classic smooth-WRR
    scheme (as used by nginx) and achieves the exact long-run split.
    """

    def __init__(self, cluster: Cluster) -> None:
        self.cluster = cluster
        self._allocation: Optional[Allocation] = None
        self._credit = np.zeros(len(cluster), dtype=float)
        self.dispatched = np.zeros(len(cluster), dtype=int)
        self.rejected = 0

    @property
    def allocation(self) -> Optional[Allocation]:
        """The allocation currently being executed."""
        return self._allocation

    def set_allocation(self, allocation: Allocation) -> None:
        """Install a new allocation and reconcile cluster power states.

        Tasks drained from machines being shut down are immediately
        re-dispatched under the new allocation.
        """
        if len(allocation.rates) != len(self.cluster):
            raise ConfigurationError(
                "allocation size does not match cluster size"
            )
        self._allocation = allocation
        self._credit = np.zeros(len(self.cluster), dtype=float)
        orphans = self.cluster.apply_on_set(allocation.on_ids)
        for task in orphans:
            self.dispatch(task)

    def _pick(self) -> int:
        if self._allocation is None:
            raise ConfigurationError("no allocation installed")
        weights = np.asarray(self._allocation.rates)
        total = float(weights.sum())
        if total <= 0.0:
            raise ConfigurationError("allocation has zero total rate")
        self._credit += weights
        # Only servers that can accept work compete.
        eligible = [
            i
            for i in range(len(self.cluster))
            if weights[i] > 0.0
            and self.cluster[i].state
            in (ServerState.ON, ServerState.BOOTING)
        ]
        if not eligible:
            raise ConfigurationError("no eligible server for dispatch")
        best = max(eligible, key=lambda i: self._credit[i])
        self._credit[best] -= total
        return best

    def dispatch(self, task: Task) -> int:
        """Route one task; returns the chosen server id."""
        target = self._pick()
        self.cluster[target].submit(task)
        self.dispatched[target] += 1
        return target

    def dispatch_all(self, tasks: Sequence[Task]) -> None:
        """Route a batch of arrivals."""
        for task in tasks:
            self.dispatch(task)

    def dispatch_fractions(self) -> np.ndarray:
        """Observed dispatch split (fractions summing to 1, or zeros)."""
        total = int(self.dispatched.sum())
        if total == 0:
            return np.zeros(len(self.cluster))
        return self.dispatched / total
