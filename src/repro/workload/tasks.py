"""Batch task model: the html -> word-histogram workload analogue.

The paper's workload takes html files as input, extracts text and builds a
word histogram.  What matters for the energy study is only (a) that tasks
are long-lived CPU-bound units whose per-task cost varies somewhat with
input size, and (b) that a machine's *capacity* — the average number of
tasks it can process per second — is measurable.  The task model captures
exactly that: each task carries a work size in normalized "work units",
where one unit is the work of an average-sized document.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class Task:
    """One unit of batch work (an html document to be histogrammed).

    Attributes
    ----------
    task_id:
        Monotonically increasing identifier assigned by the generator.
    work:
        Processing cost in work units; 1.0 is an average document.
    created_at:
        Generator time (s) at which the task entered the system.
    """

    task_id: int
    work: float
    created_at: float


class TaskGenerator:
    """Generates a steady stream of batch tasks at a configurable rate.

    Document sizes follow a log-normal distribution (heavy-ish tail, like
    real web pages) normalized to unit mean, so the long-run work rate in
    work units equals the task rate in tasks/s.

    Parameters
    ----------
    rng:
        Random generator (injected for reproducibility).
    rate:
        Mean task arrival rate, tasks/s.
    size_sigma:
        Shape parameter of the log-normal size distribution; 0 makes every
        task exactly one work unit.
    deterministic:
        If true, emit exactly ``round(rate * dt)`` tasks per tick instead
        of a Poisson draw — useful for tests that need exact counts.
    """

    def __init__(
        self,
        rng: np.random.Generator,
        rate: float,
        size_sigma: float = 0.25,
        deterministic: bool = False,
    ) -> None:
        if rate < 0.0:
            raise ConfigurationError(f"rate must be non-negative, got {rate}")
        if size_sigma < 0.0:
            raise ConfigurationError(
                f"size_sigma must be non-negative, got {size_sigma}"
            )
        self.rng = rng
        self.rate = rate
        self.size_sigma = size_sigma
        self.deterministic = deterministic
        self._next_id = 0
        self._time = 0.0
        self._carry = 0.0

    def _draw_size(self) -> float:
        if self.size_sigma == 0.0:
            return 1.0
        # Log-normal with unit mean: mu = -sigma^2 / 2.
        mu = -0.5 * self.size_sigma**2
        return float(self.rng.lognormal(mu, self.size_sigma))

    def tick(self, dt: float) -> list[Task]:
        """Advance time by ``dt`` seconds and return the tasks that arrived."""
        if dt <= 0.0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        if self.deterministic:
            self._carry += self.rate * dt
            count = int(self._carry)
            self._carry -= count
        else:
            count = int(self.rng.poisson(self.rate * dt))
        tasks = []
        for _ in range(count):
            tasks.append(
                Task(
                    task_id=self._next_id,
                    work=self._draw_size(),
                    created_at=self._time,
                )
            )
            self._next_id += 1
        self._time += dt
        return tasks

    def stream(self, dt: float, ticks: int) -> Iterator[list[Task]]:
        """Yield ``ticks`` successive batches of arrivals."""
        for _ in range(ticks):
            yield self.tick(dt)

    @property
    def generated_count(self) -> int:
        """Total number of tasks generated so far."""
        return self._next_id
