"""Load traces: time-varying total-load profiles.

The paper optimizes for steady batch load and explicitly defers dynamic
workloads to future work.  This module provides the load profiles the
extension layer (:mod:`repro.core.controller`) uses to study that
regime: a diurnal cloud-batch pattern, step changes, and ramps.  A trace
maps wall-clock seconds to offered load in tasks/s.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class LoadTrace:
    """A total-load profile over time.

    Attributes
    ----------
    profile:
        Function mapping time (s) to offered load (tasks/s).
    duration:
        Length of the trace, s.
    """

    profile: Callable[[float], float]
    duration: float

    def __post_init__(self) -> None:
        if self.duration <= 0.0:
            raise ConfigurationError(
                f"duration must be positive, got {self.duration}"
            )

    def load_at(self, t: float) -> float:
        """Offered load at time ``t`` (clamped to the trace duration)."""
        clamped = min(max(t, 0.0), self.duration)
        value = float(self.profile(clamped))
        return max(0.0, value)

    def sample(self, dt: float) -> np.ndarray:
        """The trace sampled every ``dt`` seconds (inclusive of t=0)."""
        if dt <= 0.0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        times = np.arange(0.0, self.duration + 1e-9, dt)
        return np.array([self.load_at(t) for t in times])

    def peak(self, dt: float = 60.0) -> float:
        """Largest sampled load, tasks/s."""
        return float(np.max(self.sample(dt)))


def constant_trace(load: float, duration: float) -> LoadTrace:
    """A steady load — the paper's own operating regime."""
    if load < 0.0:
        raise ConfigurationError(f"load must be non-negative, got {load}")
    return LoadTrace(profile=lambda t: load, duration=duration)


def step_trace(
    levels: Sequence[float], dwell: float
) -> LoadTrace:
    """Piecewise-constant load: ``levels[i]`` for the i-th ``dwell``
    window (the shape of the paper's profiling campaigns)."""
    if not levels:
        raise ConfigurationError("need at least one level")
    if any(l < 0.0 for l in levels):
        raise ConfigurationError("levels must be non-negative")
    if dwell <= 0.0:
        raise ConfigurationError(f"dwell must be positive, got {dwell}")
    steps = list(levels)

    def profile(t: float) -> float:
        index = min(int(t // dwell), len(steps) - 1)
        return steps[index]

    return LoadTrace(profile=profile, duration=dwell * len(steps))


def diurnal_trace(
    base: float,
    peak: float,
    duration: float = 86400.0,
    peak_time: float = 14.0 * 3600.0,
    noise_std: float = 0.0,
    rng: np.random.Generator | None = None,
) -> LoadTrace:
    """A day-shaped load: a sinusoid between ``base`` (night) and
    ``peak`` (afternoon), optionally with Gaussian jitter.

    Mirrors the diurnal pattern of batch back-ends that follow user
    activity (e.g. click-stream processing feeding from live traffic).
    """
    if not 0.0 <= base <= peak:
        raise ConfigurationError(
            f"need 0 <= base <= peak, got base={base}, peak={peak}"
        )
    if noise_std < 0.0:
        raise ConfigurationError(
            f"noise_std must be non-negative, got {noise_std}"
        )
    if noise_std > 0.0 and rng is None:
        raise ConfigurationError("noisy traces need an rng")
    mid = 0.5 * (base + peak)
    amplitude = 0.5 * (peak - base)

    def profile(t: float) -> float:
        phase = 2.0 * math.pi * (t - peak_time) / 86400.0
        value = mid + amplitude * math.cos(phase)
        if noise_std > 0.0:
            value += rng.normal(0.0, noise_std)
        return value

    return LoadTrace(profile=profile, duration=duration)


def ramp_trace(
    start: float, end: float, duration: float
) -> LoadTrace:
    """A linear ramp from ``start`` to ``end`` tasks/s."""
    if start < 0.0 or end < 0.0:
        raise ConfigurationError("loads must be non-negative")
    return LoadTrace(
        profile=lambda t: start + (end - start) * (t / duration),
        duration=duration,
    )
