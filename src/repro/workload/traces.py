"""Load traces: time-varying total-load profiles.

The paper optimizes for steady batch load and explicitly defers dynamic
workloads to future work.  This module provides the load profiles the
extension layers (:mod:`repro.core.controller`, :mod:`repro.control`)
use to study that regime: a diurnal cloud-batch pattern, step changes,
ramps, flash crowds, and composable noisy overlays.  A trace maps
wall-clock seconds to offered load in tasks/s.

Determinism
-----------

Every stochastic trace is a *pure function of time*: noise is derived
from a seed and the time bucket, never from mutable generator state, so
``load_at(t)`` returns the same value on every call.  That property is
what lets :meth:`repro.core.controller.RuntimeController.run_trace`
prefetch selection answers for a replay and actually hit them, and what
makes campaign scores reproducible byte-for-byte.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError

_U64 = np.uint64
_DOUBLE_SCALE = 1.0 / float(1 << 53)


def _mix64(x: np.ndarray) -> np.ndarray:
    """SplitMix64 finalizer: a bijective avalanche mix on uint64."""
    x = x + _U64(0x9E3779B97F4A7C15)
    x = (x ^ (x >> _U64(30))) * _U64(0xBF58476D1CE4E5B9)
    x = (x ^ (x >> _U64(27))) * _U64(0x94D049BB133111EB)
    return x ^ (x >> _U64(31))


def _bucket_noise(seed: int, buckets: np.ndarray) -> np.ndarray:
    """Standard-normal noise as a pure function of ``(seed, bucket)``.

    Counter-based (SplitMix64 mix + Box-Muller) so it vectorizes over
    arbitrary bucket arrays and never touches generator state: the same
    bucket always yields the same draw.
    """
    b = np.asarray(buckets, dtype=np.uint64)
    key = _mix64(np.array([seed & 0xFFFFFFFFFFFFFFFF], dtype=np.uint64))[0]
    h1 = _mix64(b ^ key)
    h2 = _mix64(h1)
    u1 = (h1 >> _U64(11)).astype(np.float64) * _DOUBLE_SCALE
    u2 = (h2 >> _U64(11)).astype(np.float64) * _DOUBLE_SCALE
    u1 = np.maximum(u1, 1e-300)  # Box-Muller needs u1 > 0
    return np.sqrt(-2.0 * np.log(u1)) * np.cos(2.0 * np.pi * u2)


def _derive_seed(rng: np.random.Generator) -> int:
    """One stable integer drawn from ``rng`` to key per-bucket noise."""
    return int(rng.integers(0, 2**63))


@dataclass(frozen=True)
class LoadTrace:
    """A total-load profile over time.

    Attributes
    ----------
    profile:
        Function mapping time (s) to offered load (tasks/s).
    duration:
        Length of the trace, s.
    vector_profile:
        Optional vectorized twin of ``profile`` mapping an array of
        times to an array of loads; :meth:`sample` uses it for a single
        vectorized pass instead of a Python loop.
    """

    profile: Callable[[float], float]
    duration: float
    vector_profile: Optional[Callable[[np.ndarray], np.ndarray]] = None

    def __post_init__(self) -> None:
        if self.duration <= 0.0:
            raise ConfigurationError(
                f"duration must be positive, got {self.duration}"
            )

    def load_at(self, t: float) -> float:
        """Offered load at time ``t`` (clamped to the trace duration)."""
        clamped = min(max(t, 0.0), self.duration)
        value = float(self.profile(clamped))
        return max(0.0, value)

    def values_at(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`load_at` over an array of times."""
        times = np.asarray(times, dtype=float)
        clamped = np.clip(times, 0.0, self.duration)
        if self.vector_profile is not None:
            values = np.asarray(
                self.vector_profile(clamped), dtype=float
            )
        else:
            values = np.array(
                [float(self.profile(t)) for t in clamped], dtype=float
            )
        return np.maximum(values, 0.0)

    def sample(self, dt: float) -> np.ndarray:
        """The trace sampled every ``dt`` seconds (inclusive of t=0).

        One vectorized pass when the trace carries a
        :attr:`vector_profile` (every constructor in this module does);
        otherwise falls back to a per-sample Python loop.
        """
        if dt <= 0.0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        times = np.arange(0.0, self.duration + 1e-9, dt)
        return self.values_at(times)

    def peak(self, dt: float = 60.0, refine: bool = True) -> float:
        """Largest sampled load, tasks/s.

        The coarse pass samples every ``dt`` seconds, so a flash-crowd
        spike narrower than ``dt`` can be under-resolved (the grid
        lands on its flank, not its summit).  With ``refine=True`` the
        grid around the coarse argmax is re-sampled at successively
        finer steps (down to 1 s) to recover the true summit.  A spike
        so narrow that *no* coarse sample touches it at all can still
        be missed — pass a smaller ``dt`` when the trace may contain
        features narrower than the grid.
        """
        times = np.arange(0.0, self.duration + 1e-9, dt)
        values = self.values_at(times)
        best_index = int(np.argmax(values))
        best_t = float(times[best_index])
        best = float(values[best_index])
        if not refine:
            return best
        step = dt
        while step > 1.0:
            step /= 10.0
            lo = max(0.0, best_t - 10.0 * step)
            hi = min(self.duration, best_t + 10.0 * step)
            window = np.arange(lo, hi + 1e-9, step)
            window_values = self.values_at(window)
            index = int(np.argmax(window_values))
            if window_values[index] > best:
                best = float(window_values[index])
                best_t = float(window[index])
        return best


def constant_trace(load: float, duration: float) -> LoadTrace:
    """A steady load — the paper's own operating regime."""
    if load < 0.0:
        raise ConfigurationError(f"load must be non-negative, got {load}")
    return LoadTrace(
        profile=lambda t: load,
        duration=duration,
        vector_profile=lambda ts: np.full(ts.shape, float(load)),
    )


def step_trace(
    levels: Sequence[float], dwell: float
) -> LoadTrace:
    """Piecewise-constant load: ``levels[i]`` for the i-th ``dwell``
    window (the shape of the paper's profiling campaigns)."""
    if not levels:
        raise ConfigurationError("need at least one level")
    if any(l < 0.0 for l in levels):
        raise ConfigurationError("levels must be non-negative")
    if dwell <= 0.0:
        raise ConfigurationError(f"dwell must be positive, got {dwell}")
    steps = np.asarray(levels, dtype=float)
    last = len(steps) - 1

    def profile(t: float) -> float:
        return float(steps[min(int(t // dwell), last)])

    def vector_profile(ts: np.ndarray) -> np.ndarray:
        index = np.minimum((ts // dwell).astype(int), last)
        return steps[index]

    return LoadTrace(
        profile=profile,
        duration=dwell * len(steps),
        vector_profile=vector_profile,
    )


def diurnal_trace(
    base: float,
    peak: float,
    duration: float = 86400.0,
    peak_time: float = 14.0 * 3600.0,
    noise_std: float = 0.0,
    rng: np.random.Generator | None = None,
    period: float = 86400.0,
    noise_dt: float = 60.0,
) -> LoadTrace:
    """A day-shaped load: a sinusoid between ``base`` (night) and
    ``peak`` (afternoon), optionally with Gaussian jitter.

    Mirrors the diurnal pattern of batch back-ends that follow user
    activity (e.g. click-stream processing feeding from live traffic).
    ``period`` compresses the day for short campaign replays.

    Noise is deterministic per time bucket: one seed is drawn from
    ``rng`` at construction and the jitter at time ``t`` is a pure
    function of ``(seed, t // noise_dt)``, so repeated ``load_at(t)``
    calls agree and replays are reproducible.
    """
    if not 0.0 <= base <= peak:
        raise ConfigurationError(
            f"need 0 <= base <= peak, got base={base}, peak={peak}"
        )
    if noise_std < 0.0:
        raise ConfigurationError(
            f"noise_std must be non-negative, got {noise_std}"
        )
    if noise_std > 0.0 and rng is None:
        raise ConfigurationError("noisy traces need an rng")
    if period <= 0.0:
        raise ConfigurationError(f"period must be positive, got {period}")
    if noise_dt <= 0.0:
        raise ConfigurationError(
            f"noise_dt must be positive, got {noise_dt}"
        )
    mid = 0.5 * (base + peak)
    amplitude = 0.5 * (peak - base)
    seed = _derive_seed(rng) if noise_std > 0.0 else 0

    def profile(t: float) -> float:
        phase = 2.0 * math.pi * (t - peak_time) / period
        value = mid + amplitude * math.cos(phase)
        if noise_std > 0.0:
            bucket = int(t // noise_dt)
            value += noise_std * float(_bucket_noise(seed, [bucket])[0])
        return value

    def vector_profile(ts: np.ndarray) -> np.ndarray:
        phase = 2.0 * np.pi * (ts - peak_time) / period
        values = mid + amplitude * np.cos(phase)
        if noise_std > 0.0:
            buckets = (ts // noise_dt).astype(np.int64)
            values = values + noise_std * _bucket_noise(seed, buckets)
        return values

    return LoadTrace(
        profile=profile, duration=duration, vector_profile=vector_profile
    )


def ramp_trace(
    start: float, end: float, duration: float
) -> LoadTrace:
    """A linear ramp from ``start`` to ``end`` tasks/s."""
    if start < 0.0 or end < 0.0:
        raise ConfigurationError("loads must be non-negative")
    return LoadTrace(
        profile=lambda t: start + (end - start) * (t / duration),
        duration=duration,
        vector_profile=lambda ts: start + (end - start) * (ts / duration),
    )


def flash_crowd_trace(
    base: float,
    spike: float,
    onset: float,
    duration: float,
    decay: float = 900.0,
    rise: float = 30.0,
) -> LoadTrace:
    """A flash crowd: steady ``base`` until ``onset``, then a sudden
    surge of ``spike`` tasks/s (linear rise over ``rise`` seconds) that
    decays exponentially back toward ``base`` with time constant
    ``decay`` — the canonical news-event / viral-link shape.
    """
    if base < 0.0:
        raise ConfigurationError(f"base must be non-negative, got {base}")
    if spike <= 0.0:
        raise ConfigurationError(f"spike must be positive, got {spike}")
    if not 0.0 <= onset < duration:
        raise ConfigurationError(
            f"onset must lie within [0, duration), got onset={onset}, "
            f"duration={duration}"
        )
    if decay <= 0.0:
        raise ConfigurationError(f"decay must be positive, got {decay}")
    if rise < 0.0:
        raise ConfigurationError(f"rise must be non-negative, got {rise}")

    crest = onset + rise

    def profile(t: float) -> float:
        if t < onset:
            return base
        if t < crest:
            return base + spike * (t - onset) / rise
        return base + spike * math.exp(-(t - crest) / decay)

    def vector_profile(ts: np.ndarray) -> np.ndarray:
        values = np.full(ts.shape, float(base))
        if rise > 0.0:
            rising = (ts >= onset) & (ts < crest)
            values[rising] += spike * (ts[rising] - onset) / rise
        decaying = ts >= crest
        values[decaying] += spike * np.exp(-(ts[decaying] - crest) / decay)
        return values

    return LoadTrace(
        profile=profile, duration=duration, vector_profile=vector_profile
    )


def overlay_traces(*traces: LoadTrace) -> LoadTrace:
    """The pointwise sum of component traces.

    Each component is evaluated through its own :meth:`LoadTrace.load_at`
    (so per-component clamping applies) and the results are added; the
    overlay spans the longest component.  This is the composition
    primitive: diurnal + flash crowd + noise = overlay of three traces.
    """
    if not traces:
        raise ConfigurationError("need at least one trace to overlay")
    duration = max(trace.duration for trace in traces)
    parts = tuple(traces)

    def profile(t: float) -> float:
        return sum(part.load_at(t) for part in parts)

    def vector_profile(ts: np.ndarray) -> np.ndarray:
        total = np.zeros(ts.shape)
        for part in parts:
            total += part.values_at(ts)
        return total

    return LoadTrace(
        profile=profile, duration=duration, vector_profile=vector_profile
    )


def noisy_trace(
    trace: LoadTrace,
    noise_std: float,
    seed: int,
    noise_dt: float = 60.0,
) -> LoadTrace:
    """``trace`` plus deterministic per-bucket Gaussian jitter.

    The jitter at time ``t`` is a pure function of
    ``(seed, t // noise_dt)`` — see the module docstring — so the noisy
    trace stays replayable: the same ``t`` always sees the same draw.
    """
    if noise_std < 0.0:
        raise ConfigurationError(
            f"noise_std must be non-negative, got {noise_std}"
        )
    if noise_dt <= 0.0:
        raise ConfigurationError(
            f"noise_dt must be positive, got {noise_dt}"
        )

    def profile(t: float) -> float:
        bucket = int(t // noise_dt)
        jitter = noise_std * float(_bucket_noise(seed, [bucket])[0])
        return trace.load_at(t) + jitter

    def vector_profile(ts: np.ndarray) -> np.ndarray:
        buckets = (ts // noise_dt).astype(np.int64)
        return trace.values_at(ts) + noise_std * _bucket_noise(
            seed, buckets
        )

    return LoadTrace(
        profile=profile,
        duration=trace.duration,
        vector_profile=vector_profile,
    )


def clamped_trace(
    trace: LoadTrace,
    ceiling: float,
    floor: float = 0.0,
) -> LoadTrace:
    """``trace`` clipped into ``[floor, ceiling]`` — e.g. offered load
    capped at cluster capacity before it reaches a controller."""
    if not 0.0 <= floor <= ceiling:
        raise ConfigurationError(
            f"need 0 <= floor <= ceiling, got floor={floor}, "
            f"ceiling={ceiling}"
        )

    return LoadTrace(
        profile=lambda t: min(max(trace.load_at(t), floor), ceiling),
        duration=trace.duration,
        vector_profile=lambda ts: np.clip(
            trace.values_at(ts), floor, ceiling
        ),
    )
