"""Seeded outdoor wet-bulb weather traces (ROADMAP 4).

The chiller plant's COP and its economizer switchover are driven by the
outdoor *wet-bulb* temperature — the thermodynamic floor an evaporative
cooling tower can reject against.  This module generates reproducible
wet-bulb series with the same counter-based pure-function noise the
demand traces use (:mod:`repro.workload.traces`): the jitter at time
``t`` is a pure function of ``(seed, t // noise_dt)``, so
``wetbulb_at(t)`` is replayable — no generator state, identical draws
on every call and across orderings.

Three generators cover the campaign scenarios:

- :func:`diurnal_wetbulb` — one day: a sinusoid warmest mid-afternoon;
- :func:`seasonal_wetbulb` — a year: a seasonal sinusoid (winter trough
  to summer crest) carrying the diurnal cycle on top;
- :func:`heat_wave` — a trapezoidal excursion added onto any trace
  (ramp up, hold, ramp down), the stress scenario for
  ``run_mpc_campaign``.

:data:`SITES` holds three contrasting site presets (a temperate coast,
a hot-humid tropic, a cold continental plain) for the ``repro weather``
seasonal sweep and site-comparison table.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Optional

import numpy as np

from repro import units
from repro.errors import ConfigurationError
from repro.workload.traces import _bucket_noise

#: Physical clamp band for generated wet-bulb temperatures, K.
MIN_WETBULB = units.celsius_to_kelvin(-45.0)
MAX_WETBULB = units.celsius_to_kelvin(45.0)

#: Seconds in the default synthetic day and year.
DAY = 86400.0
YEAR = 365.0 * DAY


@dataclass(frozen=True)
class WeatherTrace:
    """An outdoor wet-bulb temperature profile over time.

    Mirrors :class:`~repro.workload.traces.LoadTrace` (scalar
    ``profile``, vectorized ``vector_profile`` twin, duration clamp)
    but in Kelvin, clamped into the physically sane wet-bulb band
    instead of at zero.
    """

    profile: Callable[[float], float]
    duration: float
    vector_profile: Optional[Callable[[np.ndarray], np.ndarray]] = None

    def __post_init__(self) -> None:
        if self.duration <= 0.0:
            raise ConfigurationError(
                f"duration must be positive, got {self.duration}"
            )

    def wetbulb_at(self, t: float) -> float:
        """Wet-bulb temperature (K) at time ``t`` (clamped to duration)."""
        clamped = min(max(t, 0.0), self.duration)
        value = float(self.profile(clamped))
        return min(max(value, MIN_WETBULB), MAX_WETBULB)

    def values_at(self, times: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`wetbulb_at` over an array of times."""
        times = np.asarray(times, dtype=float)
        clamped = np.clip(times, 0.0, self.duration)
        if self.vector_profile is not None:
            values = np.asarray(self.vector_profile(clamped), dtype=float)
        else:
            values = np.array(
                [float(self.profile(t)) for t in clamped], dtype=float
            )
        return np.clip(values, MIN_WETBULB, MAX_WETBULB)

    def sample(self, dt: float) -> np.ndarray:
        """The trace sampled every ``dt`` seconds (inclusive of t=0)."""
        if dt <= 0.0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        times = np.arange(0.0, self.duration + 1e-9, dt)
        return self.values_at(times)

    def mean(self, dt: float = 3600.0) -> float:
        """Time-averaged wet-bulb over the trace, K."""
        return float(np.mean(self.sample(dt)))


def _check_noise(noise_std: float, noise_dt: float) -> None:
    if noise_std < 0.0:
        raise ConfigurationError(
            f"noise_std must be non-negative, got {noise_std}"
        )
    if noise_dt <= 0.0:
        raise ConfigurationError(
            f"noise_dt must be positive, got {noise_dt}"
        )


def diurnal_wetbulb(
    mean: float,
    swing: float,
    duration: float = DAY,
    period: float = DAY,
    warmest_time: float = 15.0 * 3600.0,
    noise_std: float = 0.4,
    seed: int = 0,
    noise_dt: float = 900.0,
) -> WeatherTrace:
    """One synthetic day of wet-bulb: warmest mid-afternoon, coolest
    before dawn, ``swing`` kelvin crest to trough, seeded jitter."""
    if swing < 0.0:
        raise ConfigurationError(f"swing must be non-negative, got {swing}")
    if period <= 0.0:
        raise ConfigurationError(f"period must be positive, got {period}")
    _check_noise(noise_std, noise_dt)
    amplitude = 0.5 * swing

    def profile(t: float) -> float:
        phase = 2.0 * math.pi * (t - warmest_time) / period
        value = mean + amplitude * math.cos(phase)
        if noise_std > 0.0:
            bucket = int(t // noise_dt)
            value += noise_std * float(_bucket_noise(seed, [bucket])[0])
        return value

    def vector_profile(ts: np.ndarray) -> np.ndarray:
        phase = 2.0 * np.pi * (ts - warmest_time) / period
        values = mean + amplitude * np.cos(phase)
        if noise_std > 0.0:
            buckets = (ts // noise_dt).astype(np.int64)
            values = values + noise_std * _bucket_noise(seed, buckets)
        return values

    return WeatherTrace(
        profile=profile, duration=duration, vector_profile=vector_profile
    )


def seasonal_wetbulb(
    winter_mean: float,
    summer_mean: float,
    diurnal_swing: float,
    duration: float = YEAR,
    year: float = YEAR,
    day: float = DAY,
    warmest_day: float = 0.55,
    noise_std: float = 0.8,
    seed: int = 0,
    noise_dt: float = 3600.0,
) -> WeatherTrace:
    """A synthetic year of wet-bulb: a seasonal sinusoid from
    ``winter_mean`` (t=0: midwinter) to ``summer_mean`` (crest at
    ``warmest_day`` of the year), the diurnal cycle riding on top, and
    per-bucket seeded jitter."""
    if summer_mean < winter_mean:
        raise ConfigurationError(
            f"need winter_mean <= summer_mean, got "
            f"{winter_mean} > {summer_mean}"
        )
    if diurnal_swing < 0.0:
        raise ConfigurationError(
            f"diurnal_swing must be non-negative, got {diurnal_swing}"
        )
    if year <= 0.0 or day <= 0.0:
        raise ConfigurationError(
            f"year and day must be positive, got {year}, {day}"
        )
    _check_noise(noise_std, noise_dt)
    mid = 0.5 * (winter_mean + summer_mean)
    seasonal_amp = 0.5 * (summer_mean - winter_mean)
    diurnal_amp = 0.5 * diurnal_swing
    warmest_hour = 15.0 / 24.0  # mid-afternoon crest within each day

    def profile(t: float) -> float:
        season = mid - seasonal_amp * math.cos(
            2.0 * math.pi * (t / year - (warmest_day - 0.5))
        )
        daily = diurnal_amp * math.cos(
            2.0 * math.pi * (t / day - warmest_hour)
        )
        value = season + daily
        if noise_std > 0.0:
            bucket = int(t // noise_dt)
            value += noise_std * float(_bucket_noise(seed, [bucket])[0])
        return value

    def vector_profile(ts: np.ndarray) -> np.ndarray:
        season = mid - seasonal_amp * np.cos(
            2.0 * np.pi * (ts / year - (warmest_day - 0.5))
        )
        daily = diurnal_amp * np.cos(
            2.0 * np.pi * (ts / day - warmest_hour)
        )
        values = season + daily
        if noise_std > 0.0:
            buckets = (ts // noise_dt).astype(np.int64)
            values = values + noise_std * _bucket_noise(seed, buckets)
        return values

    return WeatherTrace(
        profile=profile, duration=duration, vector_profile=vector_profile
    )


def heat_wave(
    trace: WeatherTrace,
    onset: float,
    length: float,
    amplitude: float,
    ramp: Optional[float] = None,
) -> WeatherTrace:
    """``trace`` plus a trapezoidal heat-wave excursion.

    The wet-bulb climbs by ``amplitude`` kelvin over ``ramp`` seconds
    starting at ``onset``, holds, and ramps back down so the excursion
    spans ``length`` seconds total.  The stress scenario for the
    weather-aware MPC campaign: COP collapses exactly when demand peaks.
    """
    if length <= 0.0:
        raise ConfigurationError(f"length must be positive, got {length}")
    if amplitude < 0.0:
        raise ConfigurationError(
            f"amplitude must be non-negative, got {amplitude}"
        )
    if ramp is None:
        ramp = 0.2 * length
    if ramp < 0.0 or 2.0 * ramp > length:
        raise ConfigurationError(
            f"need 0 <= ramp <= length/2, got ramp={ramp}, length={length}"
        )

    def bump(t: float) -> float:
        s = t - onset
        if s <= 0.0 or s >= length:
            return 0.0
        if ramp > 0.0 and s < ramp:
            return s / ramp
        if ramp > 0.0 and s > length - ramp:
            return (length - s) / ramp
        return 1.0

    def vector_bump(ts: np.ndarray) -> np.ndarray:
        s = ts - onset
        inside = (s > 0.0) & (s < length)
        if ramp > 0.0:
            shape = np.minimum(
                1.0, np.minimum(s / ramp, (length - s) / ramp)
            )
        else:
            shape = np.ones_like(s)
        return np.where(inside, np.maximum(shape, 0.0), 0.0)

    return WeatherTrace(
        profile=lambda t: trace.wetbulb_at(t) + amplitude * bump(t),
        duration=trace.duration,
        vector_profile=lambda ts: trace.values_at(ts)
        + amplitude * vector_bump(np.asarray(ts, dtype=float)),
    )


@dataclass(frozen=True)
class SitePreset:
    """Climate parameters for one synthetic site."""

    name: str
    description: str
    winter_mean: float  # K
    summer_mean: float  # K
    diurnal_swing: float  # K


#: The built-in site-comparison presets for the seasonal sweep.
SITES: dict[str, SitePreset] = {
    preset.name: preset
    for preset in (
        SitePreset(
            name="coastal-temperate",
            description="marine climate: mild summers, free-cooling "
            "shoulder seasons",
            winter_mean=units.celsius_to_kelvin(3.0),
            summer_mean=units.celsius_to_kelvin(16.0),
            diurnal_swing=4.0,
        ),
        SitePreset(
            name="hot-humid",
            description="tropical: high wet-bulb year round, the "
            "economizer almost never engages",
            winter_mean=units.celsius_to_kelvin(19.0),
            summer_mean=units.celsius_to_kelvin(26.0),
            diurnal_swing=3.0,
        ),
        SitePreset(
            name="cold-continental",
            description="continental plain: deep free-cooling winters, "
            "warm summers",
            winter_mean=units.celsius_to_kelvin(-12.0),
            summer_mean=units.celsius_to_kelvin(18.0),
            diurnal_swing=7.0,
        ),
    )
}


def site_weather(
    site: str, seed: int = 2012, duration: float = YEAR
) -> WeatherTrace:
    """A seeded yearly wet-bulb trace for one of the built-in sites."""
    if site not in SITES:
        raise ConfigurationError(
            f"unknown site {site!r}; choose from {sorted(SITES)}"
        )
    preset = SITES[site]
    return seasonal_wetbulb(
        winter_mean=preset.winter_mean,
        summer_mean=preset.summer_mean,
        diurnal_swing=preset.diurnal_swing,
        duration=duration,
        seed=seed,
    )
