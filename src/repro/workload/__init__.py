"""Workload substrate: the batch text-processing cluster.

The paper drives its testbed with a text-processing application (html files
in, word histograms out) — long-lived, computationally intensive batch work
whose total rate is steady and centrally distributed.  This subpackage
reproduces that substrate:

- :mod:`repro.workload.tasks` — the task model and generator;
- :mod:`repro.workload.cluster` — servers with on/off lifecycle, queues
  and processing capacity;
- :mod:`repro.workload.balancer` — the central load balancer that turns an
  allocation (tasks/s per machine) into a dispatch schedule.
"""

from repro.workload.balancer import Allocation, LoadBalancer
from repro.workload.cluster import Cluster, Server, ServerState
from repro.workload.tasks import Task, TaskGenerator
from repro.workload.weather import (
    SITES,
    SitePreset,
    WeatherTrace,
    diurnal_wetbulb,
    heat_wave,
    seasonal_wetbulb,
    site_weather,
)
from repro.workload.traces import (
    LoadTrace,
    clamped_trace,
    constant_trace,
    diurnal_trace,
    flash_crowd_trace,
    noisy_trace,
    overlay_traces,
    ramp_trace,
    step_trace,
)

__all__ = [
    "Task",
    "TaskGenerator",
    "Server",
    "ServerState",
    "Cluster",
    "Allocation",
    "LoadBalancer",
    "LoadTrace",
    "constant_trace",
    "step_trace",
    "diurnal_trace",
    "ramp_trace",
    "flash_crowd_trace",
    "overlay_traces",
    "noisy_trace",
    "clamped_trace",
    "WeatherTrace",
    "SitePreset",
    "SITES",
    "diurnal_wetbulb",
    "seasonal_wetbulb",
    "heat_wave",
    "site_weather",
]
