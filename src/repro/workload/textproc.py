"""The text-processing application itself (html -> word histogram).

The paper's workload: "Our application took html files as input,
extracted meaningful text, then produced a word histogram for that
text."  The rest of the package only needs the *cost model* of that
application (work units per document), but building the application
keeps the workload substrate honest: the synthetic documents processed
here define what one "work unit" means, and
:func:`document_work_units` is the bridge into the task model.

Pure Python, no external parser: the html subset generated here is the
html subset parsed here, with hostile-input guards (unclosed tags,
script blocks) because real crawled pages have them.
"""

from __future__ import annotations

import re
from collections import Counter
from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

#: Words per average document; one work unit is one average document.
WORDS_PER_WORK_UNIT = 400

#: A small vocabulary for synthetic documents (Zipf-distributed usage).
_VOCABULARY = [
    "data", "center", "energy", "cooling", "computing", "load", "server",
    "temperature", "optimal", "allocation", "model", "power", "machine",
    "room", "thermal", "air", "flow", "heat", "batch", "cloud", "rack",
    "consolidation", "constraint", "throughput", "holistic", "analysis",
    "the", "a", "of", "and", "to", "in", "is", "for", "with", "on",
]

#: Tags whose content is not "meaningful text".
_SKIP_TAGS = ("script", "style")


@dataclass(frozen=True)
class HtmlDocument:
    """One synthetic crawled page."""

    doc_id: int
    html: str
    word_count: int


def generate_html_document(
    rng: np.random.Generator, doc_id: int = 0, mean_words: int = 400
) -> HtmlDocument:
    """Produce a synthetic html page with a log-normal word count.

    The page mixes paragraphs, headings, a script block (which must be
    ignored by extraction) and attributes, so the extractor is exercised
    on realistic structure.
    """
    if mean_words < 1:
        raise ConfigurationError(
            f"mean_words must be positive, got {mean_words}"
        )
    count = max(1, int(rng.lognormal(np.log(mean_words), 0.4)))
    # Zipf-ish vocabulary usage.
    ranks = rng.zipf(1.5, size=count)
    words = [
        _VOCABULARY[(r - 1) % len(_VOCABULARY)] for r in ranks
    ]
    paragraphs = []
    step = 60
    for start in range(0, count, step):
        chunk = " ".join(words[start : start + step])
        paragraphs.append(f"<p class=\"body\">{chunk}</p>")
    body = "\n".join(paragraphs)
    html = (
        "<html><head><title>doc</title>"
        "<script>var x = 'not meaningful text';</script>"
        "<style>p { color: black; }</style></head>"
        f"<body><h1>document {doc_id}</h1>{body}</body></html>"
    )
    return HtmlDocument(doc_id=doc_id, html=html, word_count=count)


def extract_text(html: str) -> str:
    """Strip tags and non-content blocks from an html string.

    Tolerates unclosed tags and nested garbage: anything inside
    ``<script>``/``<style>`` is dropped, all other tags are removed, and
    entities common in crawled text are decoded.
    """
    text = html
    for tag in _SKIP_TAGS:
        text = re.sub(
            rf"<{tag}\b.*?(?:</{tag}>|$)",
            " ",
            text,
            flags=re.DOTALL | re.IGNORECASE,
        )
    text = re.sub(r"<[^>]*>?", " ", text)
    for entity, char in (
        ("&amp;", "&"),
        ("&lt;", "<"),
        ("&gt;", ">"),
        ("&nbsp;", " "),
        ("&quot;", '"'),
    ):
        text = text.replace(entity, char)
    return re.sub(r"\s+", " ", text).strip()


def word_histogram(text: str) -> Counter:
    """The application's output: a lowercase word histogram."""
    words = re.findall(r"[a-z0-9']+", text.lower())
    return Counter(words)


def process_document(doc: HtmlDocument) -> Counter:
    """The full application pipeline for one document."""
    return word_histogram(extract_text(doc.html))


def document_work_units(doc: HtmlDocument) -> float:
    """Processing cost of a document in the task model's work units.

    Cost scales with the amount of text — the assumption under which a
    machine's measured capacity (documents/s at average size) transfers
    to any mix of documents.
    """
    return doc.word_count / WORDS_PER_WORK_UNIT
