"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this package derives from :class:`ReproError`, so a
caller can catch the whole family with one ``except`` clause while still
being able to distinguish model-fitting problems from optimization problems.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class ConfigurationError(ReproError):
    """A component was constructed with physically meaningless parameters.

    Examples: a negative heat capacity, a cooling efficiency outside
    ``(0, 1]``, or a rack with zero machines.
    """


class InfeasibleError(ReproError):
    """The requested optimization problem has no feasible solution.

    Raised, for instance, when the total load exceeds the cluster capacity,
    or when no cooling set point can keep every CPU below ``T_max`` for the
    requested allocation.
    """


class ConvergenceError(ReproError):
    """An iterative procedure (simulation or solver) failed to converge."""


class ConstraintViolationError(ReproError):
    """A runtime watchdog caught a violated paper constraint.

    Raised only when a :class:`repro.obs.watchdog.WatchdogSet` runs with
    the ``"raise"`` policy; the default ``"warn"`` policy records the
    violation (counter, headroom gauge, ``constraint.violation`` trace
    event) and issues a :class:`UserWarning` instead.
    """


class ProfilingError(ReproError):
    """A profiling campaign produced data unusable for regression.

    Typical causes: fewer samples than model parameters, or degenerate
    (constant) regressors that make the least-squares system singular.
    """


class SimulationError(ReproError):
    """The thermal simulation entered an invalid state (NaN, blow-up)."""


class ServingUnavailableError(ReproError):
    """The serving daemon cannot accept the request right now.

    Raised (locally, or re-raised client-side from a structured error
    response) when a request reaches a :class:`repro.serving.AllocationServer`
    that is draining for shutdown or has not finished starting.  Clients
    should treat it as retryable against a healthy replica.
    """
