"""Zonal (stratified) machine-room model — higher-fidelity substrate.

The default room model gives every machine a *parameterized* blend of
supply and bulk air (Eq. 7 is baked into the ground truth).  This module
provides a stratified alternative in which the paper's affine inlet
relation must *emerge*: the room is a vertical stack of well-mixed air
zones, cold supply air drops to the floor zone, warm air advects upward
to the return grille at the ceiling, adjacent zones mix turbulently, and
every machine simply breathes the air of the zone its rack position puts
it in.

Physics per zone ``z`` (floor is ``z = 0``; all flows in m^3/s, energy
in W):

- the full supply flow ``f_ac`` enters zone 0 at ``T_ac`` and the same
  flow advects upward through every zone boundary until the return
  extracts it from the top zone (mass is conserved exactly: machine
  intake and exhaust cancel within a zone);
- adjacent zones exchange a symmetric turbulent mixing flow ``g``;
- machines in the zone inject their electrical power as heat (their
  exhaust is their intake plus ``P_i / (F_i c_air)``);
- each zone exchanges ``U_z (T_env - T_z)`` with the building envelope.

Steady state is a small linear system; the transient integrator mirrors
:class:`~repro.thermal.simulation.RoomSimulation` so the zonal room is a
drop-in testbed substrate (same profiling campaign, same evaluation).

Why it matters: the paper asks "whether a simplified model is sufficient
to arrive at a solution that achieves a non-trivial improvement".  On
the zonal ground truth the fitted Eq. 8 coefficients are a *worse*
approximation (zone temperatures respond to the whole load vector, not
just the machine's own power), so the robustness experiment in
``bench_zonal.py`` is a genuine test of that claim.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro import units
from repro.errors import ConfigurationError, ConvergenceError, SimulationError
from repro.thermal.cooling import CoolingUnit
from repro.thermal.node import ComputeNodeThermal
from repro.thermal.simulation import OFF_NODE_CONDUCTANCE, SteadyState


@dataclass(frozen=True)
class ZonalRoom:
    """A vertically stratified machine room.

    Parameters
    ----------
    nodes:
        The computing units (``supply_fraction`` is ignored here — inlet
        air comes entirely from the machine's zone).
    zone_of:
        Zone index of each node (0 = floor, coolest).
    n_zones:
        Number of vertical zones.
    zone_heat_capacity:
        Heat capacity of one zone's air volume, J/K.
    mixing_flow:
        Turbulent exchange flow between adjacent zones, m^3/s.
    envelope_conductance:
        Total room-to-building conductance, W/K (split evenly per zone).
    t_env:
        Building temperature, K.
    supply_flow:
        Cooling-unit air flow, m^3/s.
    """

    nodes: tuple[ComputeNodeThermal, ...]
    zone_of: tuple[int, ...]
    n_zones: int
    zone_heat_capacity: float
    mixing_flow: float
    envelope_conductance: float
    t_env: float
    supply_flow: float

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ConfigurationError("zonal room needs at least one node")
        if self.n_zones < 1:
            raise ConfigurationError(
                f"need at least one zone, got {self.n_zones}"
            )
        if len(self.zone_of) != len(self.nodes):
            raise ConfigurationError(
                f"{len(self.nodes)} nodes but {len(self.zone_of)} zone ids"
            )
        if any(not 0 <= z < self.n_zones for z in self.zone_of):
            raise ConfigurationError("zone id out of range")
        if self.zone_heat_capacity <= 0.0:
            raise ConfigurationError("zone_heat_capacity must be positive")
        if self.mixing_flow < 0.0:
            raise ConfigurationError("mixing_flow must be non-negative")
        if self.supply_flow <= 0.0:
            raise ConfigurationError("supply_flow must be positive")

    @property
    def node_count(self) -> int:
        """Number of computing units in the room."""
        return len(self.nodes)

    def zone_members(self, zone: int) -> list[int]:
        """Node ids assigned to one zone."""
        return [i for i, z in enumerate(self.zone_of) if z == zone]

    def zone_powers(
        self, powers: Sequence[float], on_mask: Sequence[bool]
    ) -> np.ndarray:
        """Per-zone heat injection from running machines, W."""
        out = np.zeros(self.n_zones)
        for i, (p, on) in enumerate(zip(powers, on_mask)):
            if on:
                out[self.zone_of[i]] += p
        return out


class ZonalRoomSimulation:
    """Coupled zonal room + cooling unit (drop-in for RoomSimulation)."""

    def __init__(
        self,
        room: ZonalRoom,
        cooler: CoolingUnit,
        initial_temperature: float = units.celsius_to_kelvin(22.0),
    ) -> None:
        if abs(cooler.supply_flow - room.supply_flow) > 1e-9:
            raise ConfigurationError(
                "cooler and room disagree on the supply flow"
            )
        self.room = room
        self.cooler = cooler
        n = room.node_count
        self.t_cpu = np.full(n, initial_temperature, dtype=float)
        self.t_box = np.full(n, initial_temperature, dtype=float)
        self.t_zone = np.full(room.n_zones, initial_temperature, dtype=float)
        self.t_ac = float(initial_temperature)
        self.powers = np.zeros(n, dtype=float)
        self.on_mask = np.ones(n, dtype=bool)
        self.time = 0.0
        self._last_p_ac = 0.0

    # The return air is drawn from the ceiling zone.
    @property
    def t_room(self) -> float:
        """Return-air (top zone) temperature, K."""
        return float(self.t_zone[-1])

    # ------------------------------------------------------------------ #
    # Inputs (same contract as RoomSimulation)
    # ------------------------------------------------------------------ #

    def set_node_powers(
        self, powers: Sequence[float], on_mask: Optional[Sequence[bool]] = None
    ) -> None:
        """Set per-node electrical power (W) and optionally the on mask."""
        arr = np.asarray(powers, dtype=float)
        if arr.shape != (self.room.node_count,):
            raise ConfigurationError(
                f"expected {self.room.node_count} powers, got {arr.shape}"
            )
        if np.any(arr < 0.0):
            raise ConfigurationError("node powers must be non-negative")
        if on_mask is not None:
            mask = np.asarray(on_mask, dtype=bool)
            if np.any(arr[~mask] > 0.0):
                raise ConfigurationError(
                    "a powered-off machine cannot draw positive power"
                )
            self.on_mask = mask
        self.powers = arr

    def set_set_point(self, set_point: float) -> None:
        """Command a new cooler set point (K)."""
        if not units.is_valid_temperature(set_point):
            raise ConfigurationError(f"set point out of range: {set_point}")
        self.cooler.set_point = set_point

    # ------------------------------------------------------------------ #
    # Steady state (linear solve)
    # ------------------------------------------------------------------ #

    def _zone_system(
        self, q_powers: np.ndarray, t_ac: float
    ) -> np.ndarray:
        """Solve zone temperatures for a *given* supply temperature.

        The zone balances are linear in the zone temperatures once
        ``T_ac`` is fixed.
        """
        z = self.room.n_zones
        fc = self.room.supply_flow * units.C_AIR
        gc = self.room.mixing_flow * units.C_AIR
        u = self.room.envelope_conductance / z
        a = np.zeros((z, z))
        b = np.zeros(z)
        for k in range(z):
            # Advection: f_ac enters from below (zone k-1, or the supply
            # for the floor zone) and leaves upward (or to the return).
            a[k, k] -= fc
            if k == 0:
                b[0] -= fc * t_ac
            else:
                a[k, k - 1] += fc
            # Turbulent mixing with neighbours.
            if k > 0:
                a[k, k - 1] += gc
                a[k, k] -= gc
            if k < z - 1:
                a[k, k + 1] += gc
                a[k, k] -= gc
            # Envelope and heat injection.
            a[k, k] -= u
            b[k] -= u * self.room.t_env + q_powers[k]
        return np.linalg.solve(a, b)

    def steady_state(
        self,
        powers: Optional[Sequence[float]] = None,
        on_mask: Optional[Sequence[bool]] = None,
        set_point: Optional[float] = None,
    ) -> SteadyState:
        """Long-run operating point (regulated or honestly saturated)."""
        p = (
            np.asarray(powers, dtype=float)
            if powers is not None
            else self.powers.copy()
        )
        mask = (
            np.asarray(on_mask, dtype=bool)
            if on_mask is not None
            else self.on_mask.copy()
        )
        if np.any(p[~mask] > 0.0):
            raise ConfigurationError(
                "a powered-off machine cannot draw positive power"
            )
        sp = self.cooler.set_point if set_point is None else float(set_point)
        q_zone = self.room.zone_powers(p, mask)
        total_power = float(q_zone.sum())
        fc = self.room.supply_flow * units.C_AIR
        u = self.room.envelope_conductance

        # Regulated mode: top zone at the set point.  The whole-room
        # balance still gives q = sum(P) + U·(T_env - T_mean); since the
        # envelope couples to every zone, iterate the (fast-converging)
        # fixed point on q.
        def solve_for(t_ac: float) -> np.ndarray:
            return self._zone_system(q_zone, t_ac)

        regulated = True
        t_ac = sp - (total_power + u * (self.room.t_env - sp)) / fc
        for _ in range(200):
            zones = solve_for(t_ac)
            error = zones[-1] - sp
            if abs(error) < 1e-10:
                break
            # d(T_top)/d(T_ac) is ~1 for this topology.
            t_ac -= error
        else:
            raise ConvergenceError("zonal regulation failed to converge")
        q = fc * (zones[-1] - t_ac)
        limit = self.cooler.max_capacity_for_return(zones[-1])
        if q < 0.0:
            # Cooler off; the room floats.  Solve with q = 0.
            regulated = False
            t_ac, zones = self._saturated(q_zone, 0.0)
            q = 0.0
        elif q > limit:
            regulated = False
            t_ac, zones = self._saturated(q_zone, limit)
            q = limit

        t_cpu = np.empty(self.room.node_count)
        t_box = np.empty(self.room.node_count)
        t_in = np.empty(self.room.node_count)
        for i, node in enumerate(self.room.nodes):
            zone_t = zones[self.room.zone_of[i]]
            if mask[i]:
                state = node.steady_state(p[i], zone_t)
                t_cpu[i] = state.t_cpu
                t_box[i] = state.t_box
                t_in[i] = zone_t
            else:
                t_cpu[i] = zone_t
                t_box[i] = zone_t
                t_in[i] = zone_t
        return SteadyState(
            t_room=float(zones[-1]),
            t_ac=t_ac,
            q_cool=q,
            p_ac=self.cooler.steady_state_power(q),
            t_cpu=t_cpu,
            t_box=t_box,
            t_in=t_in,
            server_power=np.where(mask, p, 0.0),
            regulated=regulated,
        )

    def _saturated(
        self, q_zone: np.ndarray, q: float
    ) -> tuple[float, np.ndarray]:
        """Solve the saturated mode where the removed heat is pinned.

        ``T_top`` is affine in ``T_ac`` (the zone system is linear), so
        two evaluations determine the line and ``T_ac = T_top - q/fc``
        solves in closed form.
        """
        fc = self.room.supply_flow * units.C_AIR
        t0, t1 = 285.0, 295.0
        top0 = self._zone_system(q_zone, t0)[-1]
        top1 = self._zone_system(q_zone, t1)[-1]
        slope = (top1 - top0) / (t1 - t0)
        intercept = top0 - slope * t0
        if abs(1.0 - slope) < 1e-12:
            raise ConvergenceError(
                "zonal saturation is degenerate (unit gain to T_ac)"
            )
        t_ac = (intercept - q / fc) / (1.0 - slope)
        t_ac = max(t_ac, self.cooler.t_ac_min)
        return t_ac, self._zone_system(q_zone, t_ac)

    # ------------------------------------------------------------------ #
    # Transient integration
    # ------------------------------------------------------------------ #

    def _derivatives(
        self,
        t_cpu: np.ndarray,
        t_box: np.ndarray,
        t_zone: np.ndarray,
        t_ac: float,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        d_cpu = np.zeros_like(t_cpu)
        d_box = np.zeros_like(t_box)
        zone_heat = np.zeros(self.room.n_zones)
        for i, node in enumerate(self.room.nodes):
            zone = self.room.zone_of[i]
            exchange = (t_cpu[i] - t_box[i]) * node.theta
            if self.on_mask[i]:
                d_cpu[i] = (self.powers[i] - exchange) / node.nu_cpu
                d_box[i] = (
                    exchange
                    + node.flow * units.C_AIR * (t_zone[zone] - t_box[i])
                ) / node.nu_box
                zone_heat[zone] += (
                    node.flow * units.C_AIR * (t_box[i] - t_zone[zone])
                )
            else:
                leak = OFF_NODE_CONDUCTANCE * (t_zone[zone] - t_box[i])
                d_cpu[i] = -exchange / node.nu_cpu
                d_box[i] = (exchange + leak) / node.nu_box
                zone_heat[zone] -= leak
        fc = self.room.supply_flow * units.C_AIR
        gc = self.room.mixing_flow * units.C_AIR
        u = self.room.envelope_conductance / self.room.n_zones
        for k in range(self.room.n_zones):
            below = t_ac if k == 0 else t_zone[k - 1]
            zone_heat[k] += fc * (below - t_zone[k])
            if k > 0:
                zone_heat[k] += gc * (t_zone[k - 1] - t_zone[k])
            if k < self.room.n_zones - 1:
                zone_heat[k] += gc * (t_zone[k + 1] - t_zone[k])
            zone_heat[k] += u * (self.room.t_env - t_zone[k])
        return d_cpu, d_box, zone_heat / self.room.zone_heat_capacity

    def step(self, dt: float = 0.5) -> None:
        """Advance by ``dt`` seconds (RK4; cooler PI once per step)."""
        if dt <= 0.0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        t_ac, p_ac = self.cooler.step(self.t_room, dt)
        self.t_ac = t_ac
        self._last_p_ac = p_ac

        def deriv(state):
            return self._derivatives(state[0], state[1], state[2], t_ac)

        s0 = (self.t_cpu, self.t_box, self.t_zone)
        k1 = deriv(s0)
        k2 = deriv(
            tuple(s + 0.5 * dt * k for s, k in zip(s0, k1))
        )
        k3 = deriv(
            tuple(s + 0.5 * dt * k for s, k in zip(s0, k2))
        )
        k4 = deriv(tuple(s + dt * k for s, k in zip(s0, k3)))
        self.t_cpu = self.t_cpu + dt / 6.0 * (
            k1[0] + 2 * k2[0] + 2 * k3[0] + k4[0]
        )
        self.t_box = self.t_box + dt / 6.0 * (
            k1[1] + 2 * k2[1] + 2 * k3[1] + k4[1]
        )
        self.t_zone = self.t_zone + dt / 6.0 * (
            k1[2] + 2 * k2[2] + 2 * k3[2] + k4[2]
        )
        self.time += dt
        if not (
            np.all(np.isfinite(self.t_cpu))
            and np.all(np.isfinite(self.t_box))
            and np.all(np.isfinite(self.t_zone))
        ):
            raise SimulationError(
                f"zonal state diverged at t={self.time:.1f}s"
            )

    def run(self, duration: float, dt: float = 0.5) -> None:
        """Advance the simulation by exactly ``duration`` seconds.

        Whole steps of ``dt`` plus one remainder sub-step when the
        duration is not an integer multiple of ``dt`` (same contract as
        :meth:`RoomSimulation.run`).
        """
        if duration < 0.0:
            raise ConfigurationError(
                f"duration must be non-negative, got {duration}"
            )
        ratio = duration / dt
        steps = int(ratio)
        if ratio - steps > 1.0 - 1e-9:
            steps += 1
        remainder = duration - steps * dt
        for _ in range(steps):
            self.step(dt)
        if remainder > 1e-9 * dt:
            self.step(remainder)

    @property
    def cooling_power(self) -> float:
        """Electrical power the cooler drew during the last step, W."""
        return self._last_p_ac

    @property
    def total_power(self) -> float:
        """Total electrical power, servers plus cooling, W."""
        return float(np.sum(self.powers)) + self._last_p_ac
