"""Per-computing-unit thermal model (paper Section II-A).

A computing unit is a heat source (the CPU) inside an air volume (the box),
with an air flow through the box.  The paper's dynamic model is::

    dT_cpu/dt = (P - (T_cpu - T_box) * theta) / nu_cpu           (Eq. 1)
    dT_box/dt = ((T_cpu - T_box) * theta
                 + F * c_air * (T_in - T_box)) / nu_box          (Eq. 2)

with perfect, immediate mixing inside the box so the outlet temperature
equals the box temperature (``T_out == T_box``).  At steady state these
reduce to (Eqs. 3-5)::

    T_cpu = (1/(F * c_air) + 1/theta) * P + T_in
          =  beta * P + T_in                                     (Eq. 5-6)

``beta`` is the per-node coefficient the paper later fits by regression.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro import units
from repro.errors import ConfigurationError


@dataclass
class NodeThermalState:
    """Mutable thermal state of one computing unit (temperatures in K)."""

    t_cpu: float
    t_box: float

    def copy(self) -> "NodeThermalState":
        """Return an independent copy of this state."""
        return NodeThermalState(t_cpu=self.t_cpu, t_box=self.t_box)


@dataclass(frozen=True)
class ComputeNodeThermal:
    """Ground-truth thermal parameters of one computing unit.

    Parameters
    ----------
    nu_cpu:
        Heat capacity of the CPU package and heatsink, J/K.  Sets the
        dominant thermal time constant (the paper observes ~200 s to reach
        a stable CPU temperature).
    nu_box:
        Heat capacity of the box air volume plus chassis mass, J/K.
    theta:
        Heat-exchange rate between CPU and box air, W/K (paper's
        ``theta^{cpu,box}``).
    flow:
        Volumetric air flow through the box, m^3/s (``F_in == F_out``; the
        box neither stores nor creates air).
    supply_fraction:
        Fraction of the intake air drawn directly from the cool-air supply
        stream; the remainder is recirculated room air.  This is the
        ground truth behind the paper's ``alpha_i`` (Eq. 7) and encodes the
        unit's position on the rack: machines near the floor see more cool
        supply air.
    """

    nu_cpu: float
    nu_box: float
    theta: float
    flow: float
    supply_fraction: float

    def __post_init__(self) -> None:
        if self.nu_cpu <= 0.0 or self.nu_box <= 0.0:
            raise ConfigurationError(
                "heat capacities must be positive, got "
                f"nu_cpu={self.nu_cpu}, nu_box={self.nu_box}"
            )
        if self.theta <= 0.0:
            raise ConfigurationError(f"theta must be positive, got {self.theta}")
        if self.flow <= 0.0:
            raise ConfigurationError(f"flow must be positive, got {self.flow}")
        if not 0.0 < self.supply_fraction <= 1.0:
            raise ConfigurationError(
                f"supply_fraction must be in (0, 1], got {self.supply_fraction}"
            )

    @property
    def beta(self) -> float:
        """Ground-truth ``beta`` coefficient of Eq. 6 (K/W).

        ``beta = 1 / (F * c_air) + 1 / theta``: the steady-state CPU
        temperature rise above the inlet per watt of dissipated power.
        """
        return 1.0 / (self.flow * units.C_AIR) + 1.0 / self.theta

    def derivatives(
        self, state: NodeThermalState, power: float, t_in: float
    ) -> tuple[float, float]:
        """Time derivatives ``(dT_cpu/dt, dT_box/dt)`` per Eqs. 1-2.

        Parameters
        ----------
        state:
            Current node temperatures.
        power:
            Heat dissipated by the CPU, W.  Zero for a powered-off machine.
        t_in:
            Intake air temperature, K.
        """
        exchange = (state.t_cpu - state.t_box) * self.theta
        d_cpu = (power - exchange) / self.nu_cpu
        d_box = (
            exchange + self.flow * units.C_AIR * (t_in - state.t_box)
        ) / self.nu_box
        return d_cpu, d_box

    def steady_state(self, power: float, t_in: float) -> NodeThermalState:
        """Steady-state temperatures for constant ``power`` and ``t_in``.

        From Eqs. 3-5: ``T_box = T_in + P / (F * c_air)`` and
        ``T_cpu = T_box + P / theta``.
        """
        t_box = t_in + power / (self.flow * units.C_AIR)
        t_cpu = t_box + power / self.theta
        return NodeThermalState(t_cpu=t_cpu, t_box=t_box)

    def time_constant(self) -> float:
        """Approximate dominant thermal time constant, seconds.

        The CPU pole ``nu_cpu / theta`` dominates (the box air pole is much
        faster); used by tests and by steady-state detection heuristics.
        """
        return self.nu_cpu / self.theta
