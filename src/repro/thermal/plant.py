"""Weather-aware chiller plant wrapped around the CRAC coil (ROADMAP 4).

The paper's Eq. 10 prices cooling at a *constant* efficiency: the CRAC
coil removes ``q`` watts of heat for ``q / eta`` watts of electricity.
A real chilled-water plant is not constant: the compressor's coefficient
of performance (COP) falls as the outdoor wet-bulb temperature rises
(the condenser rejects against it), it degrades at part load, and for
part of the year many sites bypass the compressor entirely and
free-cool through the tower (a water-side economizer).  This module
layers that plant *behind* the existing :class:`~repro.thermal.cooling.
CoolingUnit` without touching the air-side physics:

- the CRAC coil still removes ``q_cool`` from the air stream through
  the same PI loop, enthalpy balance, ``q_max`` and ``t_ac_min``
  limits — nothing in the room simulation changes;
- the *electrical price* of ``q_cool`` becomes mode- and
  weather-dependent: ``q / COP(T_wetbulb, plr)`` in mechanical mode,
  ``q / free_cooling_cop`` when the economizer is engaged, plus the
  unchanged constant CRAC blower draw;
- an optional cooling tower converts the rejected heat into evaporated
  (plus blowdown) water, so campaigns can report WUE next to PUE.

**The linearization contract.**  Eq. 10 survives per operating point:
around a cooling load ``q0`` at wet-bulb ``t_wb`` the plant's electrical
power is the tangent line

    ``P(q) ~= P(q0) + s * (q - q0)``   with   ``s = dP/dq``,

so the paper's lumped constant re-derives as ``c = c_air / eta_eff``
with ``eta_eff = 1/s = effective_efficiency(t_wb, q0)``, and the
tangent's offset folds into the fitted :class:`~repro.core.model.
CoolerModel`'s ``idle_power``.  :meth:`ChillerPlant.linearize` performs
exactly that substitution on a fitted cooler model; the
:class:`~repro.core.optimizer.JointOptimizer`, the MPC's supply-air LP,
and the sharded index's ``subset_power`` scorer consume the replaced
model completely unchanged in form.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro import units
from repro.errors import ConfigurationError
from repro.thermal.cooling import CoolingUnit

#: Modes the hysteretic switchover moves between.
PLANT_MODES: tuple[str, ...] = ("mechanical", "economizer")


@dataclass(frozen=True)
class COPCurve:
    """ASHRAE-style chiller performance map ``COP(T_wetbulb, plr)``.

    The full-load COP falls linearly with the condenser-side wet-bulb
    lift above the design point (``cop_nominal`` at ``t_wb_design``),
    clamped into ``[cop_min, cop_max]``; part load is priced through the
    standard DOE-2 ``EIRFPLR`` quadratic
    ``eir(plr) = a + b*plr + c*plr**2`` (normalized so ``eir(1) = 1``):

        ``COP(t_wb, plr) = cop_full(t_wb) * plr / eir(plr)``.

    Compressor cycling makes low part loads disproportionately
    expensive (``eir(0) = a > 0``), which is why consolidating cooling
    load — like consolidating compute — pays.
    """

    cop_nominal: float = 4.8
    t_wb_design: float = units.celsius_to_kelvin(24.0)
    wb_gain: float = 0.12  # COP lost per K of wet-bulb above design
    cop_min: float = 1.2
    cop_max: float = 9.0
    plr_a: float = 0.17
    plr_b: float = 0.58
    plr_c: float = 0.25

    def __post_init__(self) -> None:
        if self.cop_nominal <= 0.0:
            raise ConfigurationError(
                f"cop_nominal must be positive, got {self.cop_nominal}"
            )
        if not 0.0 < self.cop_min <= self.cop_max:
            raise ConfigurationError(
                f"need 0 < cop_min <= cop_max, got "
                f"[{self.cop_min}, {self.cop_max}]"
            )
        if self.wb_gain < 0.0:
            raise ConfigurationError(
                f"wb_gain must be non-negative, got {self.wb_gain}"
            )
        if not units.is_valid_temperature(self.t_wb_design):
            raise ConfigurationError(
                f"t_wb_design out of range: {self.t_wb_design}"
            )
        if self.plr_a <= 0.0 or self.plr_b < 0.0 or self.plr_c < 0.0:
            raise ConfigurationError(
                "EIRFPLR coefficients need a > 0, b >= 0, c >= 0; got "
                f"({self.plr_a}, {self.plr_b}, {self.plr_c})"
            )

    def cop_full_load(self, t_wetbulb: float) -> float:
        """Full-load COP at a given outdoor wet-bulb temperature, K."""
        cop = self.cop_nominal - self.wb_gain * (
            t_wetbulb - self.t_wb_design
        )
        return min(max(cop, self.cop_min), self.cop_max)

    def eir_fraction(self, plr: float) -> float:
        """EIRFPLR: energy-input ratio relative to full load."""
        return self.plr_a + self.plr_b * plr + self.plr_c * plr * plr

    def cop(self, t_wetbulb: float, plr: float) -> float:
        """Operating COP at wet-bulb ``t_wetbulb`` and part-load ``plr``."""
        plr = min(max(plr, 0.0), 1.0)
        if plr <= 0.0:
            return 0.0
        return self.cop_full_load(t_wetbulb) * plr / self.eir_fraction(plr)


@dataclass(frozen=True)
class EconomizerConfig:
    """Water-side economizer (free cooling) with a hysteretic switchover.

    Free cooling engages when the outdoor wet-bulb drops below
    ``wetbulb_on`` and only disengages once it climbs back above
    ``wetbulb_on + hysteresis`` — the dead band that prevents mode
    chatter when the weather hovers at the threshold.  While engaged,
    the compressor is off and cooling costs only tower fans and pumps:
    an effective ``free_cooling_cop`` far above any mechanical COP.
    """

    wetbulb_on: float = units.celsius_to_kelvin(8.0)
    hysteresis: float = 1.5
    free_cooling_cop: float = 14.0

    def __post_init__(self) -> None:
        if not units.is_valid_temperature(self.wetbulb_on):
            raise ConfigurationError(
                f"wetbulb_on out of range: {self.wetbulb_on}"
            )
        if self.hysteresis < 0.0:
            raise ConfigurationError(
                f"hysteresis must be non-negative, got {self.hysteresis}"
            )
        if self.free_cooling_cop <= 0.0:
            raise ConfigurationError(
                f"free_cooling_cop must be positive, "
                f"got {self.free_cooling_cop}"
            )


@dataclass(frozen=True)
class CoolingTowerConfig:
    """Evaporative cooling-tower water accounting.

    Every joule rejected at the tower evaporates
    ``1 / latent_heat`` kilograms of water; blowdown to control
    dissolved solids multiplies consumption by
    ``cycles / (cycles - 1)``.  One kilogram is one liter.
    """

    latent_heat: float = 2.45e6  # J/kg evaporated
    cycles_of_concentration: float = 4.0

    def __post_init__(self) -> None:
        if self.latent_heat <= 0.0:
            raise ConfigurationError(
                f"latent_heat must be positive, got {self.latent_heat}"
            )
        if self.cycles_of_concentration <= 1.0:
            raise ConfigurationError(
                "cycles_of_concentration must exceed 1, got "
                f"{self.cycles_of_concentration}"
            )

    @property
    def bleed_factor(self) -> float:
        """Total water drawn per kilogram evaporated."""
        c = self.cycles_of_concentration
        return c / (c - 1.0)


@dataclass
class ChillerPlant:
    """The CRAC coil's electrical back end: chiller, economizer, tower.

    Wraps a :class:`~repro.thermal.cooling.CoolingUnit` (whose air-side
    behaviour it never alters) and re-prices its heat removal through a
    weather-dependent COP curve, with an optional free-cooling mode and
    optional water accounting.  The only state is the hysteretic
    economizer mode; everything else is a pure function of
    ``(q_cool, t_wetbulb)``.
    """

    cooling_unit: CoolingUnit
    cop_curve: COPCurve = field(default_factory=COPCurve)
    economizer: Optional[EconomizerConfig] = field(
        default_factory=EconomizerConfig
    )
    tower: Optional[CoolingTowerConfig] = field(
        default_factory=CoolingTowerConfig
    )
    _mode: str = field(default="mechanical", repr=False)

    def __post_init__(self) -> None:
        if self._mode not in PLANT_MODES:
            raise ConfigurationError(f"unknown plant mode {self._mode!r}")

    # ------------------------------------------------------------------ #
    # Mode machine
    # ------------------------------------------------------------------ #

    @property
    def mode(self) -> str:
        """Current plant mode: ``"mechanical"`` or ``"economizer"``."""
        return self._mode

    def reset(self) -> None:
        """Return to mechanical mode (and clear the wrapped coil's PI)."""
        self._mode = "mechanical"
        self.cooling_unit.reset()

    def advance_mode(self, t_wetbulb: float) -> str:
        """Hysteretic switchover: engage free cooling below
        ``wetbulb_on``, fall back to mechanical only above
        ``wetbulb_on + hysteresis``.  Returns the mode now in force."""
        if self.economizer is None:
            return self._mode
        if self._mode == "mechanical":
            if t_wetbulb < self.economizer.wetbulb_on:
                self._mode = "economizer"
        else:
            if t_wetbulb > (
                self.economizer.wetbulb_on + self.economizer.hysteresis
            ):
                self._mode = "mechanical"
        return self._mode

    # ------------------------------------------------------------------ #
    # Electrical and water physics
    # ------------------------------------------------------------------ #

    def part_load_ratio(self, q_cool: float) -> float:
        """Cooling load as a fraction of the coil's ``q_max``."""
        return min(max(q_cool, 0.0) / self.cooling_unit.q_max, 1.0)

    def chiller_power(
        self, q_cool: float, t_wetbulb: float, mode: Optional[str] = None
    ) -> float:
        """Plant electrical power (W) to remove ``q_cool``, excluding
        the CRAC blower.

        Mechanical mode uses the closed form
        ``P = q_max * eir(plr) / cop_full(t_wb)`` (the EIRFPLR identity
        ``q / COP = q_max * eir(plr) / cop_full`` — quadratic in the
        load, convex, and smooth, which is what makes the per-operating-
        point tangent linearization exact).  In economizer mode the
        compressor is off and only tower fans and pumps run.
        """
        if q_cool <= 0.0:
            return 0.0
        mode = self._mode if mode is None else mode
        if mode not in PLANT_MODES:
            raise ConfigurationError(f"unknown plant mode {mode!r}")
        if mode == "economizer" and self.economizer is not None:
            return q_cool / self.economizer.free_cooling_cop
        plr = self.part_load_ratio(q_cool)
        return (
            self.cooling_unit.q_max
            * self.cop_curve.eir_fraction(plr)
            / self.cop_curve.cop_full_load(t_wetbulb)
        )

    def electrical_power(
        self, q_cool: float, t_wetbulb: float, mode: Optional[str] = None
    ) -> float:
        """Total plant draw (W): chiller/economizer plus the CRAC blower."""
        return (
            self.chiller_power(q_cool, t_wetbulb, mode=mode)
            + self.cooling_unit.fan_power
        )

    def operating_cop(
        self, q_cool: float, t_wetbulb: float, mode: Optional[str] = None
    ) -> float:
        """Achieved COP ``q / P`` at this operating point (0 at q=0)."""
        power = self.chiller_power(q_cool, t_wetbulb, mode=mode)
        if power <= 0.0:
            return 0.0
        return q_cool / power

    def water_rate(
        self, q_cool: float, t_wetbulb: float, mode: Optional[str] = None
    ) -> Optional[float]:
        """Tower water consumption (liters/s), ``None`` without a tower.

        The tower rejects the removed heat plus — in mechanical mode —
        the compressor work.
        """
        if self.tower is None:
            return None
        if q_cool <= 0.0:
            return 0.0
        rejected = q_cool + self.chiller_power(q_cool, t_wetbulb, mode=mode)
        kg_per_s = rejected / self.tower.latent_heat
        return kg_per_s * self.tower.bleed_factor

    # ------------------------------------------------------------------ #
    # The Eq. 10 linearization seam
    # ------------------------------------------------------------------ #

    def effective_efficiency(
        self, t_wetbulb: float, load: float, mode: Optional[str] = None
    ) -> float:
        """Marginal efficiency ``1 / (dP/dq)`` at cooling load ``load``.

        This is the ``eta`` that re-derives the paper's Eq. 10 locally:
        the next watt of heat costs ``1 / eta_eff`` watts of
        electricity.  Unlike the CRAC's fixed ``eta`` in ``(0, 1]``,
        the marginal value is a COP and routinely exceeds 1.  In
        mechanical mode
        ``dP/dq = (b + 2*c*plr) / cop_full(t_wb)`` (the EIRFPLR
        quadratic differentiated); in economizer mode the marginal cost
        is the constant free-cooling COP.
        """
        mode = self._mode if mode is None else mode
        if mode == "economizer" and self.economizer is not None:
            return self.economizer.free_cooling_cop
        plr = self.part_load_ratio(load)
        slope = (
            self.cop_curve.plr_b + 2.0 * self.cop_curve.plr_c * plr
        ) / self.cop_curve.cop_full_load(t_wetbulb)
        if slope <= 0.0:
            # Degenerate curve (b = c = 0): price at the average COP.
            return max(self.operating_cop(load, t_wetbulb, mode=mode), 1e-9)
        return 1.0 / slope

    def linearized_c(
        self, t_wetbulb: float, load: float, mode: Optional[str] = None
    ) -> float:
        """The re-derived lumped constant ``c = c_air / eta_eff`` (Eq. 10)."""
        return units.C_AIR / self.effective_efficiency(
            t_wetbulb, load, mode=mode
        )

    def linearize(
        self,
        cooler,
        t_wetbulb: float,
        load: float,
        mode: Optional[str] = None,
    ):
        """A fitted cooler model re-linearized at ``(t_wetbulb, load)``.

        Returns a :class:`~repro.core.model.CoolerModel` whose Eq. 10
        slope is the tangent of the plant's power curve at cooling load
        ``load`` — ``c_f_ac' = f_ac * c_air / eta_eff`` — and whose
        ``idle_power`` absorbs the tangent's offset
        ``P(q0) - s*q0`` on top of the fitted blower floor.  At the
        operating point the replaced model reproduces the plant's power
        exactly; the optimizer, MPC LP, and subset scorer consume it
        with no structural change.
        """
        mode = self._mode if mode is None else mode
        q0 = max(load, 0.0)
        slope = 1.0 / self.effective_efficiency(t_wetbulb, q0, mode=mode)
        offset = self.chiller_power(q0, t_wetbulb, mode=mode) - slope * q0
        c_f_ac = self.cooling_unit.supply_flow * units.C_AIR * slope
        return replace(
            cooler,
            c_f_ac=c_f_ac,
            idle_power=cooler.idle_power + offset,
        )

    def linearized_model(
        self,
        model,
        t_wetbulb: float,
        load: float,
        mode: Optional[str] = None,
    ):
        """A :class:`~repro.core.model.SystemModel` with its cooler
        re-linearized at the operating point (everything else shared)."""
        return replace(
            model,
            cooler=self.linearize(
                model.cooler, t_wetbulb, load, mode=mode
            ),
        )


def default_plant(cooling_unit: CoolingUnit, **overrides) -> ChillerPlant:
    """A :class:`ChillerPlant` with the default curve/economizer/tower."""
    return ChillerPlant(cooling_unit=cooling_unit, **overrides)
