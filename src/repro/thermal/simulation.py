"""Coupled room/cooler simulation and algebraic steady-state solver.

Two ways to evaluate the simulated testbed:

- :class:`RoomSimulation` integrates the full transient system (per-node
  Eqs. 1-2, the bulk room air volume, and the cooling unit's PI loop) with
  a fixed-step RK4 scheme.  Used by the profiling campaign, which — like
  the paper's experiments — waits for temperatures to settle and samples
  noisy sensors along the way.
- :meth:`RoomSimulation.steady_state` solves the same physics algebraically
  (the steady-state equations are linear once the active saturation mode of
  the cooler is known).  Used by the evaluation benches, which need many
  thousands of operating points.  :meth:`RoomSimulation.steady_state_many`
  solves a whole batch of operating points in one vectorized pass and
  returns a :class:`SteadyStateBatch`.

The transient integrator has two engines selected at construction time:

- ``engine="numpy"`` (default) evaluates the derivatives as pure array
  arithmetic and folds the four RK4 stages into stacked-state updates —
  no Python-level per-node iteration;
- ``engine="python"`` keeps the original per-node loop as the readable
  reference implementation.

Both engines produce **bit-identical** trajectories: the vectorized
kernel preserves the exact expression structure (and accumulation order)
of the loop, so every elementwise IEEE operation rounds the same way.
``tests/test_simulation_engine.py`` pins this equivalence on randomized
scenarios, including off nodes, saturated coolers, set-point steps, and
active fault injectors.

Tests verify that the integrator converges to the algebraic solution.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro import obs, units
from repro.obs import trace as _trace
from repro.obs import watchdog as _watchdog
from repro.errors import ConfigurationError, ConvergenceError, SimulationError
from repro.thermal.cooling import CoolingUnit
from repro.thermal.room import MachineRoom

#: Passive box-to-room conductance of a powered-off machine, W/K.  With the
#: fans stopped there is no forced air flow; a small natural-convection term
#: lets an off machine relax to room temperature instead of staying hot.
OFF_NODE_CONDUCTANCE = 1.0

#: Transient-integration engines (see the module docstring).
ENGINES = ("numpy", "python")


@dataclass(frozen=True)
class SteadyState:
    """Steady-state operating point of the whole room.

    Attributes
    ----------
    t_room:
        Bulk (return) air temperature, K.  Equals the cooler set point when
        ``regulated`` is true.
    t_ac:
        Supply air temperature, K.
    q_cool:
        Heat removed from the air stream by the cooler, W.
    p_ac:
        Electrical power drawn by the cooling unit, W.
    t_cpu, t_box, t_in:
        Per-node temperatures, K (off nodes sit at ``t_room``).
    server_power:
        Per-node electrical power, W.
    regulated:
        Whether the cooler held the room at its set point (false when
        saturated at ``q_max`` or at the minimum supply temperature).
    """

    t_room: float
    t_ac: float
    q_cool: float
    p_ac: float
    t_cpu: np.ndarray
    t_box: np.ndarray
    t_in: np.ndarray
    server_power: np.ndarray
    regulated: bool

    @property
    def total_server_power(self) -> float:
        """Sum of per-node electrical power, W."""
        return float(np.sum(self.server_power))

    @property
    def total_power(self) -> float:
        """Total room power: servers plus cooling, W."""
        return self.total_server_power + self.p_ac

    @property
    def max_cpu_temperature(self) -> float:
        """Hottest CPU in the room, K."""
        return float(np.max(self.t_cpu))


@dataclass(frozen=True)
class SteadyStateBatch:
    """Steady states of ``B`` operating points, stored as arrays.

    Row ``i`` holds the solution of operating point ``i``; scalar fields
    of :class:`SteadyState` become ``(B,)`` arrays and per-node fields
    become ``(B, n)`` arrays.  :meth:`point` extracts one row as a plain
    :class:`SteadyState`.
    """

    t_room: np.ndarray
    t_ac: np.ndarray
    q_cool: np.ndarray
    p_ac: np.ndarray
    t_cpu: np.ndarray
    t_box: np.ndarray
    t_in: np.ndarray
    server_power: np.ndarray
    regulated: np.ndarray

    def __len__(self) -> int:
        return int(self.t_room.shape[0])

    @property
    def total_server_power(self) -> np.ndarray:
        """Per-point sum of server power, W, shape ``(B,)``."""
        return self.server_power.sum(axis=1)

    @property
    def total_power(self) -> np.ndarray:
        """Per-point total power (servers plus cooling), W, shape ``(B,)``."""
        return self.total_server_power + self.p_ac

    @property
    def max_cpu_temperature(self) -> np.ndarray:
        """Per-point hottest CPU, K, shape ``(B,)``."""
        return self.t_cpu.max(axis=1)

    def point(self, index: int) -> SteadyState:
        """The steady state of one operating point."""
        i = int(index)
        return SteadyState(
            t_room=float(self.t_room[i]),
            t_ac=float(self.t_ac[i]),
            q_cool=float(self.q_cool[i]),
            p_ac=float(self.p_ac[i]),
            t_cpu=self.t_cpu[i].copy(),
            t_box=self.t_box[i].copy(),
            t_in=self.t_in[i].copy(),
            server_power=self.server_power[i].copy(),
            regulated=bool(self.regulated[i]),
        )


class RoomSimulation:
    """Transient simulation of a machine room plus its cooling unit.

    The caller sets per-node electrical power (via
    :meth:`set_node_powers`) and the cooler set point, then advances time
    with :meth:`step` / :meth:`run` or asks for the long-run operating
    point directly with :meth:`steady_state` /
    :meth:`steady_state_many`.

    ``engine`` selects the derivative/RK4 implementation: ``"numpy"``
    (vectorized, default) or ``"python"`` (per-node loop reference).
    Both are bit-identical; see the module docstring.
    """

    def __init__(
        self,
        room: MachineRoom,
        cooler: CoolingUnit,
        initial_temperature: float = units.celsius_to_kelvin(22.0),
        engine: str = "numpy",
    ) -> None:
        if abs(cooler.supply_flow - room.supply_flow) > 1e-9:
            raise ConfigurationError(
                "cooler and room disagree on the supply flow: "
                f"{cooler.supply_flow} vs {room.supply_flow} m^3/s"
            )
        if engine not in ENGINES:
            raise ConfigurationError(
                f"unknown simulation engine {engine!r} "
                f"(choose one of {ENGINES})"
            )
        self.room = room
        self.cooler = cooler
        self.engine = engine
        n = room.node_count
        self.t_cpu = np.full(n, initial_temperature, dtype=float)
        self.t_box = np.full(n, initial_temperature, dtype=float)
        self.t_room = float(initial_temperature)
        self.t_ac = float(initial_temperature)
        self.powers = np.zeros(n, dtype=float)
        self.on_mask = np.ones(n, dtype=bool)
        self.time = 0.0
        self._last_p_ac = 0.0
        # Optional repro.faults.FaultInjector (set by attach_simulation);
        # when None the stepper and set-point path behave exactly as
        # before the fault subsystem existed.
        self.fault_injector = None
        # Per-node constants of the vectorized kernels.  The room is
        # frozen, so these never change after construction.  _flow_c
        # carries flow * C_AIR pre-multiplied: the loop engine computes
        # the same left-associated product inline.
        self._theta = np.array([nd.theta for nd in room.nodes])
        self._nu_cpu = np.array([nd.nu_cpu for nd in room.nodes])
        self._nu_box = np.array([nd.nu_box for nd in room.nodes])
        self._flow_c = np.array(
            [nd.flow * units.C_AIR for nd in room.nodes]
        )
        self._supply_fraction = np.array(
            [nd.supply_fraction for nd in room.nodes]
        )
        self._recirc_fraction = 1.0 - self._supply_fraction
        # Mask-dependent constants, cached per on-mask (the fault
        # injector may flip machines off mid-run, so the cache is keyed
        # on the mask bytes and refreshed lazily).  An off node couples
        # to the room through OFF_NODE_CONDUCTANCE instead of its fan
        # stream, which makes both branches of the loop the same
        # expression shape: coupling * (target_temp - t_box).
        self._mask_key: Optional[bytes] = None
        self._coupling = np.empty(n)
        self._sf_eff = np.empty(n)
        self._rf_eff = np.empty(n)
        self._mask_f = np.empty(n)
        # bypass_flow(on_mask) * C_AIR; the cached value comes from
        # MachineRoom's own generator sum so it matches the loop engine
        # bit for bit.
        self._bypass_c = 0.0
        # Preallocated stacked-state and scratch buffers of the RK4 hot
        # path (all stage arithmetic runs through out= with no
        # per-step allocation).
        m = 2 * n + 1
        self._y0 = np.empty(m)
        self._yt = np.empty(m)
        self._k1 = np.empty(m)
        self._k2 = np.empty(m)
        self._k3 = np.empty(m)
        self._k4 = np.empty(m)
        self._scratch_a = np.empty(n)
        self._contrib = np.empty(n)
        self._acc = np.empty(n)
        self._powers_eff = np.empty(n)
        self._sf_ac = np.empty(n)
        # nu_cpu and nu_box stacked so both node halves of a stage
        # divide in one ufunc call (per-element rounding is unchanged).
        self._nu_all = np.concatenate([self._nu_cpu, self._nu_box])
        # Precomputed (buffer, cpu, box, nodes) views into the fixed
        # buffers (slicing in the hot loop costs a surprising amount of
        # the per-step budget).
        def _views(buf: np.ndarray):
            return buf, buf[:n], buf[n : 2 * n], buf[: 2 * n]
        self._y0_v = _views(self._y0)
        self._yt_v = _views(self._yt)
        self._k1_v = _views(self._k1)
        self._k2_v = _views(self._k2)
        self._k3_v = _views(self._k3)
        self._k4_v = _views(self._k4)
        # Room scalars hoisted out of the per-stage kernel (attribute
        # chains on every stage cost real per-step time at small n).
        self._n = n
        self._env_c = room.envelope_conductance
        self._t_env = room.t_env
        self._nu_room = room.nu_room
        # Final-stage (k4) derivatives of the most recent step; the
        # settle-rate signal run_until_steady reads instead of paying a
        # fifth derivative evaluation per step.
        self._last_stage: Optional[
            tuple[np.ndarray, np.ndarray, float]
        ] = None

    # ------------------------------------------------------------------ #
    # Inputs
    # ------------------------------------------------------------------ #

    def set_node_powers(
        self, powers: Sequence[float], on_mask: Optional[Sequence[bool]] = None
    ) -> None:
        """Set per-node electrical power (W) and optionally the on/off mask.

        A powered-off machine must draw zero power; passing a positive
        power for an off machine is a caller bug and raises.
        """
        arr = np.asarray(powers, dtype=float)
        if arr.shape != (self.room.node_count,):
            raise ConfigurationError(
                f"expected {self.room.node_count} powers, got shape {arr.shape}"
            )
        if np.any(arr < 0.0):
            raise ConfigurationError("node powers must be non-negative")
        if on_mask is not None:
            mask = np.asarray(on_mask, dtype=bool)
            if mask.shape != arr.shape:
                raise ConfigurationError("on_mask shape must match powers")
            if np.any(arr[~mask] > 0.0):
                raise ConfigurationError(
                    "a powered-off machine cannot draw positive power"
                )
            self.on_mask = mask
        self.powers = arr

    def set_set_point(self, set_point: float) -> None:
        """Command a new cooler set point (K)."""
        if not units.is_valid_temperature(set_point):
            raise ConfigurationError(f"set point out of range: {set_point}")
        if self.fault_injector is not None:
            # Active set-point drift lands between the command and the
            # actuator; the injector records the commanded value.
            self.fault_injector.command_set_point(set_point)
            return
        self.cooler.set_point = set_point

    # ------------------------------------------------------------------ #
    # Transient integration
    # ------------------------------------------------------------------ #

    def _derivatives(
        self, t_cpu: np.ndarray, t_box: np.ndarray, t_room: float, t_ac: float
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Thermal-state time derivatives under the configured engine."""
        if self.engine == "numpy":
            return self._derivatives_numpy(t_cpu, t_box, t_room, t_ac)
        return self._derivatives_python(t_cpu, t_box, t_room, t_ac)

    def _derivatives_python(
        self, t_cpu: np.ndarray, t_box: np.ndarray, t_room: float, t_ac: float
    ) -> tuple[np.ndarray, np.ndarray, float]:
        d_cpu = np.zeros_like(t_cpu)
        d_box = np.zeros_like(t_box)
        room_heat = 0.0
        for i, node in enumerate(self.room.nodes):
            exchange = (t_cpu[i] - t_box[i]) * node.theta
            if self.on_mask[i]:
                t_in = (
                    node.supply_fraction * t_ac
                    + (1.0 - node.supply_fraction) * t_room
                )
                d_cpu[i] = (self.powers[i] - exchange) / node.nu_cpu
                d_box[i] = (
                    exchange
                    + node.flow * units.C_AIR * (t_in - t_box[i])
                ) / node.nu_box
                room_heat += node.flow * units.C_AIR * (t_box[i] - t_room)
            else:
                # Fans off: only a weak passive coupling to the room.
                leak = OFF_NODE_CONDUCTANCE * (t_room - t_box[i])
                d_cpu[i] = -exchange / node.nu_cpu
                d_box[i] = (exchange + leak) / node.nu_box
                room_heat -= leak
        room_heat += (
            self.room.bypass_flow(self.on_mask)
            * units.C_AIR
            * (t_ac - t_room)
        )
        room_heat += self.room.envelope_conductance * (
            self.room.t_env - t_room
        )
        return d_cpu, d_box, room_heat / self.room.nu_room

    def _refresh_mask_constants(self) -> None:
        """Rebuild the mask-dependent constant arrays if the on-mask
        changed since the last derivative evaluation."""
        key = self.on_mask.tobytes()
        if key == self._mask_key:
            return
        self._mask_key = key
        on = self.on_mask
        np.copyto(self._coupling, OFF_NODE_CONDUCTANCE)
        np.copyto(self._coupling, self._flow_c, where=on)
        # Off nodes see the room: intake = 0 * t_ac + 1 * t_room.
        np.copyto(self._sf_eff, 0.0)
        np.copyto(self._sf_eff, self._supply_fraction, where=on)
        np.copyto(self._rf_eff, 1.0)
        np.copyto(self._rf_eff, self._recirc_fraction, where=on)
        np.copyto(self._mask_f, on)
        self._bypass_c = self.room.bypass_flow(on) * units.C_AIR

    def _derivatives_numpy(
        self, t_cpu: np.ndarray, t_box: np.ndarray, t_room: float, t_ac: float
    ) -> tuple[np.ndarray, np.ndarray, float]:
        # Same physics as _derivatives_python, as whole-array
        # expressions.  Each rewrite is rounding-exact: multiplication
        # is commutative bit for bit, `0.0 - x` == `-x`, and
        # `c * (a - b)` == `-(c * (b - a))` (all modulo the sign of
        # zero, which no downstream sum can observe).
        self._refresh_mask_constants()
        on = self.on_mask
        exchange = (t_cpu - t_box) * self._theta
        t_target = self._sf_eff * t_ac + self._rf_eff * t_room
        d_cpu = (np.where(on, self.powers, 0.0) - exchange) / self._nu_cpu
        d_box = (
            exchange + self._coupling * (t_target - t_box)
        ) / self._nu_box
        contrib = self._coupling * (t_box - t_room)
        # Strict left fold: np.sum's pairwise reduction would differ
        # from the loop engine's sequential accumulation in the last ulp.
        room_heat = float(np.add.accumulate(contrib)[-1])
        room_heat += self._bypass_c * (t_ac - t_room)
        room_heat += self.room.envelope_conductance * (
            self.room.t_env - t_room
        )
        return d_cpu, d_box, room_heat / self.room.nu_room

    def _advance_python(self, dt: float, t_ac: float) -> None:
        def deriv(state: tuple[np.ndarray, np.ndarray, float]):
            return self._derivatives_python(state[0], state[1], state[2], t_ac)

        s0 = (self.t_cpu, self.t_box, self.t_room)
        k1 = deriv(s0)
        s1 = (
            self.t_cpu + 0.5 * dt * k1[0],
            self.t_box + 0.5 * dt * k1[1],
            self.t_room + 0.5 * dt * k1[2],
        )
        k2 = deriv(s1)
        s2 = (
            self.t_cpu + 0.5 * dt * k2[0],
            self.t_box + 0.5 * dt * k2[1],
            self.t_room + 0.5 * dt * k2[2],
        )
        k3 = deriv(s2)
        s3 = (
            self.t_cpu + dt * k3[0],
            self.t_box + dt * k3[1],
            self.t_room + dt * k3[2],
        )
        k4 = deriv(s3)
        self.t_cpu = self.t_cpu + dt / 6.0 * (
            k1[0] + 2 * k2[0] + 2 * k3[0] + k4[0]
        )
        self.t_box = self.t_box + dt / 6.0 * (
            k1[1] + 2 * k2[1] + 2 * k3[1] + k4[1]
        )
        self.t_room = self.t_room + dt / 6.0 * (
            k1[2] + 2 * k2[2] + 2 * k3[2] + k4[2]
        )
        self._last_stage = (k4[0], k4[1], k4[2])

    def _advance_numpy(self, dt: float, t_ac: float) -> None:
        # One stacked state vector y = [t_cpu, t_box, t_room]; the four
        # RK4 stages become whole-array arithmetic on preallocated
        # buffers.  The stage updates keep the expression shapes of the
        # loop engine (scalar 0.5 * dt first, then array multiply, then
        # add), so every element rounds identically; `out=` changes
        # where results land, never how they round.
        n = self._n
        self._refresh_mask_constants()
        # Step-level invariants: powers/mask and t_ac are fixed while
        # the four stages evaluate.
        np.multiply(self._mask_f, self.powers, out=self._powers_eff)
        np.multiply(self._sf_eff, t_ac, out=self._sf_ac)
        y0, yt = self._y0, self._yt
        k1, k2, k3, k4 = self._k1, self._k2, self._k3, self._k4
        mul, add = np.multiply, np.add
        np.copyto(self._y0_v[1], self.t_cpu)
        np.copyto(self._y0_v[2], self.t_box)
        y0[2 * n] = self.t_room
        half_dt = 0.5 * dt
        self._stage_kernel(self._y0_v, t_ac, self._k1_v)
        mul(k1, half_dt, out=yt)
        add(y0, yt, out=yt)
        self._stage_kernel(self._yt_v, t_ac, self._k2_v)
        mul(k2, half_dt, out=yt)
        add(y0, yt, out=yt)
        self._stage_kernel(self._yt_v, t_ac, self._k3_v)
        mul(k3, dt, out=yt)
        add(y0, yt, out=yt)
        self._stage_kernel(self._yt_v, t_ac, self._k4_v)
        # y0 + dt / 6.0 * (k1 + 2 * k2 + 2 * k3 + k4), left-associated
        # exactly like the loop engine's update.
        mul(k2, 2.0, out=yt)
        add(k1, yt, out=yt)
        mul(k3, 2.0, out=k1)
        add(yt, k1, out=yt)
        add(yt, k4, out=yt)
        mul(yt, dt / 6.0, out=yt)
        add(y0, yt, out=yt)
        self.t_cpu = self._yt_v[1].copy()
        self.t_box = self._yt_v[2].copy()
        self.t_room = float(yt[2 * n])
        # k4 is a stable buffer, untouched until the next step's stage
        # four — safe for settle_rates() to read without a copy.
        self._last_stage = (
            self._k4_v[1],
            self._k4_v[2],
            float(k4[2 * n]),
        )

    def _stage_kernel(
        self,
        y_v: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
        t_ac: float,
        out_v: tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray],
    ) -> None:
        """One derivative evaluation of a stacked state into an output
        buffer — `_derivatives_numpy` with step-level invariants hoisted
        and all intermediates in scratch buffers.

        ``y_v`` and ``out_v`` are the precomputed
        ``(buffer, cpu, box, nodes)`` view tuples of the stacked buffers.
        """
        y, t_cpu, t_box, _ = y_v
        t_room = y[-1]
        out, d_cpu, box_term, d_nodes = out_v
        sub, mul, add = np.subtract, np.multiply, np.add
        exchange = self._scratch_a
        sub(t_cpu, t_box, out=exchange)
        mul(exchange, self._theta, out=exchange)
        sub(self._powers_eff, exchange, out=d_cpu)
        # target_temp = sf_eff * t_ac + rf_eff * t_room
        mul(self._rf_eff, t_room, out=box_term)
        add(self._sf_ac, box_term, out=box_term)
        sub(box_term, t_box, out=box_term)
        mul(box_term, self._coupling, out=box_term)
        add(exchange, box_term, out=box_term)
        # Both node halves divide by their stacked time constants in
        # one call; each element rounds exactly as the split divides.
        np.divide(d_nodes, self._nu_all, out=d_nodes)
        contrib = self._contrib
        sub(t_box, t_room, out=contrib)
        mul(contrib, self._coupling, out=contrib)
        np.add.accumulate(contrib, out=self._acc)
        room_heat = float(self._acc[-1])
        t_room_f = float(t_room)
        room_heat += self._bypass_c * (t_ac - t_room_f)
        room_heat += self._env_c * (self._t_env - t_room_f)
        out[-1] = room_heat / self._nu_room

    def step(self, dt: float = 0.5) -> None:
        """Advance the simulation by ``dt`` seconds (RK4 on the thermal
        states; the cooler's PI loop updates once per step)."""
        if dt <= 0.0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        if self.fault_injector is not None:
            self.fault_injector.on_simulation_step(self)
        t_ac, p_ac = self.cooler.step(self.t_room, dt)
        self.t_ac = t_ac
        self._last_p_ac = p_ac
        if self.engine == "numpy":
            self._advance_numpy(dt, t_ac)
        else:
            self._advance_python(dt, t_ac)
        self.time += dt
        obs.count("simulation.steps")
        if _trace._tracing:
            _trace.add_event(
                "simulation.step",
                sim_time=self.time,
                t_room=self.t_room,
                t_ac=self.t_ac,
                hottest_cpu=float(np.max(self.t_cpu)),
                p_ac=self._last_p_ac,
            )
        wd = _watchdog._active
        if wd is not None:
            wd.check_simulation(self)
        if self.engine == "numpy":
            # One fused probe instead of two isfinite scans: any NaN or
            # Inf in the stacked state (t_cpu, t_box, and t_room alike)
            # poisons the dot product, and squared Kelvin temperatures
            # cannot overflow on their own.
            yt = self._yt
            finite = bool(np.isfinite(np.dot(yt, yt)))
        else:
            finite = bool(
                np.all(np.isfinite(self.t_cpu))
                and np.all(np.isfinite(self.t_box))
                and np.isfinite(self.t_room)
            )
        if not (
            finite
            and units.MIN_PHYSICAL_TEMPERATURE
            < self.t_room
            < units.MAX_PHYSICAL_TEMPERATURE
        ):
            raise SimulationError(
                f"thermal state diverged at t={self.time:.1f}s "
                f"(t_room={self.t_room})"
            )

    def run(self, duration: float, dt: float = 0.5) -> None:
        """Advance the simulation by exactly ``duration`` seconds.

        Whole steps of ``dt``, plus one final remainder sub-step when
        ``duration`` is not an integer multiple of ``dt`` — so
        ``self.time`` always advances by the full duration (e.g.
        ``run(1.0, dt=0.3)`` integrates three 0.3 s steps and one 0.1 s
        step, not 0.9 s).
        """
        if duration < 0.0:
            raise ConfigurationError(
                f"duration must be non-negative, got {duration}"
            )
        ratio = duration / dt
        steps = int(ratio)
        if ratio - steps > 1.0 - 1e-9:
            # The quotient sits a rounding error below a whole number of
            # steps; treat it as exact rather than taking a ~0-length
            # remainder sub-step.
            steps += 1
        remainder = duration - steps * dt
        with obs.timed("simulation/run"):
            for _ in range(steps):
                self.step(dt)
            if remainder > 1e-9 * dt:
                self.step(remainder)

    def settle_rates(self) -> tuple[float, float, float]:
        """Settle rates (``max |dT_cpu|``, ``max |dT_box|``,
        ``|dT_room|``), K/s, from the last step's final RK4 stage.

        This is the stepper's own convergence signal — no extra
        derivative evaluation is paid to read it.
        """
        if self._last_stage is None:
            raise SimulationError(
                "no step has been taken yet; settle rates are undefined"
            )
        d_cpu, d_box, d_room = self._last_stage
        return (
            float(np.max(np.abs(d_cpu))),
            float(np.max(np.abs(d_box))),
            abs(float(d_room)),
        )

    def run_until_steady(
        self,
        dt: float = 0.5,
        tolerance: float = 1e-4,
        max_duration: float = 36000.0,
    ) -> None:
        """Integrate until all temperature derivatives fall below
        ``tolerance`` K/s, or raise :class:`ConvergenceError`.

        Convergence is judged on :meth:`settle_rates` (the stepper's
        final-stage derivatives), so settling costs four derivative
        evaluations per step, not five.
        """
        elapsed = 0.0
        with obs.timed("simulation/settle"):
            while elapsed < max_duration:
                self.step(dt)
                elapsed += dt
                if (
                    max(self.settle_rates()) < tolerance
                    and elapsed > 10.0 * dt
                ):
                    return
        raise ConvergenceError(
            f"room did not reach steady state within {max_duration} s"
        )

    @property
    def cooling_power(self) -> float:
        """Electrical power the cooler drew during the last step, W."""
        return self._last_p_ac

    @property
    def total_power(self) -> float:
        """Total electrical power, servers plus cooling, W."""
        return float(np.sum(self.powers)) + self._last_p_ac

    def inlet_temperatures(self) -> np.ndarray:
        """Current per-node intake temperatures, K."""
        return self.room.inlet_temperatures(self.t_ac, self.t_room)

    # ------------------------------------------------------------------ #
    # Algebraic steady state
    # ------------------------------------------------------------------ #

    def steady_state(
        self,
        powers: Optional[Sequence[float]] = None,
        on_mask: Optional[Sequence[bool]] = None,
        set_point: Optional[float] = None,
    ) -> SteadyState:
        """Solve the long-run operating point without integrating.

        Arguments default to the simulation's current inputs.  The solver
        first assumes the cooler regulates (room temperature equals the set
        point); if the required capacity violates an actuator limit it
        re-solves the consistent saturated mode.
        """
        obs.count("simulation.steady_state_solves")
        p = (
            np.asarray(powers, dtype=float)
            if powers is not None
            else self.powers.copy()
        )
        mask = (
            np.asarray(on_mask, dtype=bool)
            if on_mask is not None
            else self.on_mask.copy()
        )
        if p.shape != (self.room.node_count,) or mask.shape != p.shape:
            raise ConfigurationError("powers/on_mask shape mismatch")
        if np.any(p[~mask] > 0.0):
            raise ConfigurationError(
                "a powered-off machine cannot draw positive power"
            )
        sp = self.cooler.set_point if set_point is None else float(set_point)

        total_power = float(np.sum(p[mask]))
        f_c = self.cooler.supply_flow * units.C_AIR
        u = self.room.envelope_conductance
        t_env = self.room.t_env

        # Regulated mode: T_room == T_SP.
        q_needed = self.room.steady_heat_load(total_power, sp)
        coil_limit = (sp - self.cooler.t_ac_min) * f_c
        if 0.0 <= q_needed <= min(self.cooler.q_max, coil_limit):
            t_room = sp
            q = q_needed
            regulated = True
        elif q_needed < 0.0:
            # Room would float below the set point even with the cooler
            # off (can only happen if the building is colder than the set
            # point); equilibrium with q == 0.
            if u <= 0.0:
                raise ConvergenceError(
                    "no steady state: zero heat load and no envelope path"
                )
            t_room = t_env + total_power / u
            q = 0.0
            regulated = False
        else:
            # Saturated: try the q_max mode, then the coil-limited mode.
            t_room, q = self._saturated_mode(total_power, f_c, u, t_env, sp)
            regulated = False

        t_ac = t_room - q / f_c
        t_in = self.room.inlet_temperatures(t_ac, t_room)
        n = self.room.node_count
        t_cpu = np.empty(n)
        t_box = np.empty(n)
        for i, node in enumerate(self.room.nodes):
            if mask[i]:
                state = node.steady_state(p[i], t_in[i])
                t_cpu[i] = state.t_cpu
                t_box[i] = state.t_box
            else:
                t_cpu[i] = t_room
                t_box[i] = t_room
                t_in[i] = t_room
        return SteadyState(
            t_room=t_room,
            t_ac=t_ac,
            q_cool=q,
            p_ac=self.cooler.steady_state_power(q),
            t_cpu=t_cpu,
            t_box=t_box,
            t_in=t_in,
            server_power=np.where(mask, p, 0.0),
            regulated=regulated,
        )

    def _saturated_mode(
        self, total_power: float, f_c: float, u: float, t_env: float, sp: float
    ) -> tuple[float, float]:
        """Solve the steady state when the cooler cannot hold the set point."""
        candidates: list[tuple[float, float]] = []
        if u > 0.0:
            # Mode A: capacity-limited at q_max.
            t_room_a = t_env - (self.cooler.q_max - total_power) / u
            t_ac_a = t_room_a - self.cooler.q_max / f_c
            if t_room_a >= sp and t_ac_a >= self.cooler.t_ac_min - 1e-9:
                candidates.append((t_room_a, self.cooler.q_max))
        # Mode B: coil-limited at t_ac_min.
        t_room_b = (total_power + u * t_env + f_c * self.cooler.t_ac_min) / (
            f_c + u
        )
        q_b = (t_room_b - self.cooler.t_ac_min) * f_c
        if t_room_b >= sp and 0.0 <= q_b <= self.cooler.q_max + 1e-9:
            candidates.append((t_room_b, min(q_b, self.cooler.q_max)))
        if not candidates:
            raise ConvergenceError(
                "cooler saturated with no consistent steady state "
                f"(load {total_power:.0f} W exceeds what the unit can reject)"
            )
        # If both modes are consistent the physically binding one is the
        # one yielding the lower capacity.
        return min(candidates, key=lambda c: c[1])

    # ------------------------------------------------------------------ #
    # Batched algebraic steady state
    # ------------------------------------------------------------------ #

    def steady_state_many(
        self,
        powers: Sequence[Sequence[float]],
        on_masks: Optional[Sequence[Sequence[bool]]] = None,
        set_points: Optional[Sequence[float]] = None,
    ) -> SteadyStateBatch:
        """Solve many operating points in one vectorized pass.

        Parameters
        ----------
        powers:
            ``(B, n)`` per-node electrical powers, W — one row per
            operating point.
        on_masks:
            Optional ``(B, n)`` on/off masks (default: all machines on).
        set_points:
            Optional ``(B,)`` cooler set points, K (a scalar broadcasts;
            default: the cooler's current set point).

        Every row solves exactly as :meth:`steady_state` would — same
        mode selection, same per-row total-power accumulation — so
        ``steady_state_many(P, M, S).point(i)`` equals
        ``steady_state(P[i], M[i], S[i])`` field for field.
        """
        p = np.asarray(powers, dtype=float)
        if p.ndim != 2 or p.shape[1] != self.room.node_count:
            raise ConfigurationError(
                f"expected a (B, {self.room.node_count}) powers matrix, "
                f"got shape {p.shape}"
            )
        batch = p.shape[0]
        if batch == 0:
            raise ConfigurationError("powers matrix must have at least 1 row")
        mask = (
            np.asarray(on_masks, dtype=bool)
            if on_masks is not None
            else np.ones(p.shape, dtype=bool)
        )
        if mask.shape != p.shape:
            raise ConfigurationError("on_masks shape must match powers")
        if np.any(p[~mask] > 0.0):
            raise ConfigurationError(
                "a powered-off machine cannot draw positive power"
            )
        if set_points is None:
            sp = np.full(batch, self.cooler.set_point)
        else:
            sp = np.broadcast_to(
                np.asarray(set_points, dtype=float), (batch,)
            ).copy()
        obs.count("simulation.steady_state_solves", batch)
        obs.count("simulation.steady_state_batches")

        # Per-row totals via the same masked sum as the scalar solver
        # (a row-wise np.sum over zero-filled entries groups partial
        # sums differently and can drift in the last ulp).
        total_power = np.empty(batch)
        for r in range(batch):
            total_power[r] = float(np.sum(p[r][mask[r]]))

        f_c = self.cooler.supply_flow * units.C_AIR
        u = self.room.envelope_conductance
        t_env = self.room.t_env

        q_needed = total_power + u * (t_env - sp)
        coil_limit = (sp - self.cooler.t_ac_min) * f_c
        cap = np.minimum(self.cooler.q_max, coil_limit)
        regulated = (q_needed >= 0.0) & (q_needed <= cap)
        floating = q_needed < 0.0
        saturated = ~regulated & ~floating

        t_room = np.where(regulated, sp, np.nan)
        q = np.where(regulated, q_needed, 0.0)
        if floating.any():
            if u <= 0.0:
                raise ConvergenceError(
                    "no steady state: zero heat load and no envelope path"
                )
            t_room[floating] = t_env + total_power[floating] / u
        if saturated.any():
            t_room_sat, q_sat = self._saturated_mode_many(
                total_power[saturated], f_c, u, t_env, sp[saturated]
            )
            t_room[saturated] = t_room_sat
            q[saturated] = q_sat

        t_ac = t_room - q / f_c
        m = self._supply_fraction
        t_in = m * t_ac[:, None] + (1.0 - m) * t_room[:, None]
        t_box = t_in + p / self._flow_c
        t_cpu = t_box + p / self._theta
        room_col = np.broadcast_to(t_room[:, None], p.shape)
        t_cpu = np.where(mask, t_cpu, room_col)
        t_box = np.where(mask, t_box, room_col)
        t_in = np.where(mask, t_in, room_col)
        p_ac = np.where(
            q < 0.0,
            self.cooler.fan_power,
            np.minimum(q, self.cooler.q_max) / self.cooler.efficiency
            + self.cooler.fan_power,
        )
        return SteadyStateBatch(
            t_room=t_room,
            t_ac=t_ac,
            q_cool=q,
            p_ac=p_ac,
            t_cpu=t_cpu,
            t_box=t_box,
            t_in=t_in,
            server_power=np.where(mask, p, 0.0),
            regulated=regulated,
        )

    def _saturated_mode_many(
        self,
        total_power: np.ndarray,
        f_c: float,
        u: float,
        t_env: float,
        sp: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorized :meth:`_saturated_mode` over saturated rows."""
        k = total_power.shape[0]
        q_max = self.cooler.q_max
        t_ac_min = self.cooler.t_ac_min
        ok_a = np.zeros(k, dtype=bool)
        t_room_a = np.zeros(k)
        if u > 0.0:
            # Mode A: capacity-limited at q_max.
            t_room_a = t_env - (q_max - total_power) / u
            t_ac_a = t_room_a - q_max / f_c
            ok_a = (t_room_a >= sp) & (t_ac_a >= t_ac_min - 1e-9)
        # Mode B: coil-limited at t_ac_min.
        t_room_b = (total_power + u * t_env + f_c * t_ac_min) / (f_c + u)
        q_b = (t_room_b - t_ac_min) * f_c
        ok_b = (t_room_b >= sp) & (q_b >= 0.0) & (q_b <= q_max + 1e-9)
        q_b_clamped = np.minimum(q_b, q_max)
        infeasible = ~ok_a & ~ok_b
        if infeasible.any():
            worst = float(total_power[np.flatnonzero(infeasible)[0]])
            raise ConvergenceError(
                "cooler saturated with no consistent steady state "
                f"(load {worst:.0f} W exceeds what the unit can reject)"
            )
        # Where both modes are consistent, pick the lower capacity; on a
        # tie mode A wins, matching the scalar solver's candidate order.
        use_a = ok_a & (~ok_b | (q_max <= q_b_clamped))
        t_room = np.where(use_a, t_room_a, t_room_b)
        q = np.where(use_a, q_max, q_b_clamped)
        return t_room, q
