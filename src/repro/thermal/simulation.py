"""Coupled room/cooler simulation and algebraic steady-state solver.

Two ways to evaluate the simulated testbed:

- :class:`RoomSimulation` integrates the full transient system (per-node
  Eqs. 1-2, the bulk room air volume, and the cooling unit's PI loop) with
  a fixed-step RK4 scheme.  Used by the profiling campaign, which — like
  the paper's experiments — waits for temperatures to settle and samples
  noisy sensors along the way.
- :meth:`RoomSimulation.steady_state` solves the same physics algebraically
  (the steady-state equations are linear once the active saturation mode of
  the cooler is known).  Used by the evaluation benches, which need many
  thousands of operating points.

Tests verify that the integrator converges to the algebraic solution.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np

from repro import obs, units
from repro.obs import trace as _trace
from repro.obs import watchdog as _watchdog
from repro.errors import ConfigurationError, ConvergenceError, SimulationError
from repro.thermal.cooling import CoolingUnit
from repro.thermal.room import MachineRoom

#: Passive box-to-room conductance of a powered-off machine, W/K.  With the
#: fans stopped there is no forced air flow; a small natural-convection term
#: lets an off machine relax to room temperature instead of staying hot.
OFF_NODE_CONDUCTANCE = 1.0


@dataclass(frozen=True)
class SteadyState:
    """Steady-state operating point of the whole room.

    Attributes
    ----------
    t_room:
        Bulk (return) air temperature, K.  Equals the cooler set point when
        ``regulated`` is true.
    t_ac:
        Supply air temperature, K.
    q_cool:
        Heat removed from the air stream by the cooler, W.
    p_ac:
        Electrical power drawn by the cooling unit, W.
    t_cpu, t_box, t_in:
        Per-node temperatures, K (off nodes sit at ``t_room``).
    server_power:
        Per-node electrical power, W.
    regulated:
        Whether the cooler held the room at its set point (false when
        saturated at ``q_max`` or at the minimum supply temperature).
    """

    t_room: float
    t_ac: float
    q_cool: float
    p_ac: float
    t_cpu: np.ndarray
    t_box: np.ndarray
    t_in: np.ndarray
    server_power: np.ndarray
    regulated: bool

    @property
    def total_server_power(self) -> float:
        """Sum of per-node electrical power, W."""
        return float(np.sum(self.server_power))

    @property
    def total_power(self) -> float:
        """Total room power: servers plus cooling, W."""
        return self.total_server_power + self.p_ac

    @property
    def max_cpu_temperature(self) -> float:
        """Hottest CPU in the room, K."""
        return float(np.max(self.t_cpu))


class RoomSimulation:
    """Transient simulation of a machine room plus its cooling unit.

    The caller sets per-node electrical power (via
    :meth:`set_node_powers`) and the cooler set point, then advances time
    with :meth:`step` / :meth:`run` or asks for the long-run operating
    point directly with :meth:`steady_state`.
    """

    def __init__(
        self,
        room: MachineRoom,
        cooler: CoolingUnit,
        initial_temperature: float = units.celsius_to_kelvin(22.0),
    ) -> None:
        if abs(cooler.supply_flow - room.supply_flow) > 1e-9:
            raise ConfigurationError(
                "cooler and room disagree on the supply flow: "
                f"{cooler.supply_flow} vs {room.supply_flow} m^3/s"
            )
        self.room = room
        self.cooler = cooler
        n = room.node_count
        self.t_cpu = np.full(n, initial_temperature, dtype=float)
        self.t_box = np.full(n, initial_temperature, dtype=float)
        self.t_room = float(initial_temperature)
        self.t_ac = float(initial_temperature)
        self.powers = np.zeros(n, dtype=float)
        self.on_mask = np.ones(n, dtype=bool)
        self.time = 0.0
        self._last_p_ac = 0.0
        # Optional repro.faults.FaultInjector (set by attach_simulation);
        # when None the stepper and set-point path behave exactly as
        # before the fault subsystem existed.
        self.fault_injector = None

    # ------------------------------------------------------------------ #
    # Inputs
    # ------------------------------------------------------------------ #

    def set_node_powers(
        self, powers: Sequence[float], on_mask: Optional[Sequence[bool]] = None
    ) -> None:
        """Set per-node electrical power (W) and optionally the on/off mask.

        A powered-off machine must draw zero power; passing a positive
        power for an off machine is a caller bug and raises.
        """
        arr = np.asarray(powers, dtype=float)
        if arr.shape != (self.room.node_count,):
            raise ConfigurationError(
                f"expected {self.room.node_count} powers, got shape {arr.shape}"
            )
        if np.any(arr < 0.0):
            raise ConfigurationError("node powers must be non-negative")
        if on_mask is not None:
            mask = np.asarray(on_mask, dtype=bool)
            if mask.shape != arr.shape:
                raise ConfigurationError("on_mask shape must match powers")
            if np.any(arr[~mask] > 0.0):
                raise ConfigurationError(
                    "a powered-off machine cannot draw positive power"
                )
            self.on_mask = mask
        self.powers = arr

    def set_set_point(self, set_point: float) -> None:
        """Command a new cooler set point (K)."""
        if not units.is_valid_temperature(set_point):
            raise ConfigurationError(f"set point out of range: {set_point}")
        if self.fault_injector is not None:
            # Active set-point drift lands between the command and the
            # actuator; the injector records the commanded value.
            self.fault_injector.command_set_point(set_point)
            return
        self.cooler.set_point = set_point

    # ------------------------------------------------------------------ #
    # Transient integration
    # ------------------------------------------------------------------ #

    def _derivatives(
        self, t_cpu: np.ndarray, t_box: np.ndarray, t_room: float, t_ac: float
    ) -> tuple[np.ndarray, np.ndarray, float]:
        d_cpu = np.zeros_like(t_cpu)
        d_box = np.zeros_like(t_box)
        room_heat = 0.0
        for i, node in enumerate(self.room.nodes):
            exchange = (t_cpu[i] - t_box[i]) * node.theta
            if self.on_mask[i]:
                t_in = (
                    node.supply_fraction * t_ac
                    + (1.0 - node.supply_fraction) * t_room
                )
                d_cpu[i] = (self.powers[i] - exchange) / node.nu_cpu
                d_box[i] = (
                    exchange
                    + node.flow * units.C_AIR * (t_in - t_box[i])
                ) / node.nu_box
                room_heat += node.flow * units.C_AIR * (t_box[i] - t_room)
            else:
                # Fans off: only a weak passive coupling to the room.
                leak = OFF_NODE_CONDUCTANCE * (t_room - t_box[i])
                d_cpu[i] = -exchange / node.nu_cpu
                d_box[i] = (exchange + leak) / node.nu_box
                room_heat -= leak
        room_heat += (
            self.room.bypass_flow(self.on_mask)
            * units.C_AIR
            * (t_ac - t_room)
        )
        room_heat += self.room.envelope_conductance * (
            self.room.t_env - t_room
        )
        return d_cpu, d_box, room_heat / self.room.nu_room

    def step(self, dt: float = 0.5) -> None:
        """Advance the simulation by ``dt`` seconds (RK4 on the thermal
        states; the cooler's PI loop updates once per step)."""
        if dt <= 0.0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        if self.fault_injector is not None:
            self.fault_injector.on_simulation_step(self)
        t_ac, p_ac = self.cooler.step(self.t_room, dt)
        self.t_ac = t_ac
        self._last_p_ac = p_ac

        def deriv(state: tuple[np.ndarray, np.ndarray, float]):
            return self._derivatives(state[0], state[1], state[2], t_ac)

        s0 = (self.t_cpu, self.t_box, self.t_room)
        k1 = deriv(s0)
        s1 = (
            self.t_cpu + 0.5 * dt * k1[0],
            self.t_box + 0.5 * dt * k1[1],
            self.t_room + 0.5 * dt * k1[2],
        )
        k2 = deriv(s1)
        s2 = (
            self.t_cpu + 0.5 * dt * k2[0],
            self.t_box + 0.5 * dt * k2[1],
            self.t_room + 0.5 * dt * k2[2],
        )
        k3 = deriv(s2)
        s3 = (
            self.t_cpu + dt * k3[0],
            self.t_box + dt * k3[1],
            self.t_room + dt * k3[2],
        )
        k4 = deriv(s3)
        self.t_cpu = self.t_cpu + dt / 6.0 * (
            k1[0] + 2 * k2[0] + 2 * k3[0] + k4[0]
        )
        self.t_box = self.t_box + dt / 6.0 * (
            k1[1] + 2 * k2[1] + 2 * k3[1] + k4[1]
        )
        self.t_room = self.t_room + dt / 6.0 * (
            k1[2] + 2 * k2[2] + 2 * k3[2] + k4[2]
        )
        self.time += dt
        obs.count("simulation.steps")
        if _trace._tracing:
            _trace.add_event(
                "simulation.step",
                sim_time=self.time,
                t_room=self.t_room,
                t_ac=self.t_ac,
                hottest_cpu=float(np.max(self.t_cpu)),
                p_ac=self._last_p_ac,
            )
        wd = _watchdog._active
        if wd is not None:
            wd.check_simulation(self)
        if not (
            np.all(np.isfinite(self.t_cpu))
            and np.isfinite(self.t_room)
            and units.MIN_PHYSICAL_TEMPERATURE
            < self.t_room
            < units.MAX_PHYSICAL_TEMPERATURE
        ):
            raise SimulationError(
                f"thermal state diverged at t={self.time:.1f}s "
                f"(t_room={self.t_room})"
            )

    def run(self, duration: float, dt: float = 0.5) -> None:
        """Advance the simulation by ``duration`` seconds."""
        steps = int(round(duration / dt))
        with obs.timed("simulation/run"):
            for _ in range(steps):
                self.step(dt)

    def run_until_steady(
        self,
        dt: float = 0.5,
        tolerance: float = 1e-4,
        max_duration: float = 36000.0,
    ) -> None:
        """Integrate until all temperature derivatives fall below
        ``tolerance`` K/s, or raise :class:`ConvergenceError`."""
        elapsed = 0.0
        with obs.timed("simulation/settle"):
            while elapsed < max_duration:
                self.step(dt)
                elapsed += dt
                d_cpu, d_box, d_room = self._derivatives(
                    self.t_cpu, self.t_box, self.t_room, self.t_ac
                )
                rates = [
                    float(np.max(np.abs(d_cpu))),
                    float(np.max(np.abs(d_box))),
                    abs(d_room),
                ]
                if max(rates) < tolerance and elapsed > 10.0 * dt:
                    return
        raise ConvergenceError(
            f"room did not reach steady state within {max_duration} s"
        )

    @property
    def cooling_power(self) -> float:
        """Electrical power the cooler drew during the last step, W."""
        return self._last_p_ac

    @property
    def total_power(self) -> float:
        """Total electrical power, servers plus cooling, W."""
        return float(np.sum(self.powers)) + self._last_p_ac

    def inlet_temperatures(self) -> np.ndarray:
        """Current per-node intake temperatures, K."""
        return self.room.inlet_temperatures(self.t_ac, self.t_room)

    # ------------------------------------------------------------------ #
    # Algebraic steady state
    # ------------------------------------------------------------------ #

    def steady_state(
        self,
        powers: Optional[Sequence[float]] = None,
        on_mask: Optional[Sequence[bool]] = None,
        set_point: Optional[float] = None,
    ) -> SteadyState:
        """Solve the long-run operating point without integrating.

        Arguments default to the simulation's current inputs.  The solver
        first assumes the cooler regulates (room temperature equals the set
        point); if the required capacity violates an actuator limit it
        re-solves the consistent saturated mode.
        """
        obs.count("simulation.steady_state_solves")
        p = (
            np.asarray(powers, dtype=float)
            if powers is not None
            else self.powers.copy()
        )
        mask = (
            np.asarray(on_mask, dtype=bool)
            if on_mask is not None
            else self.on_mask.copy()
        )
        if p.shape != (self.room.node_count,) or mask.shape != p.shape:
            raise ConfigurationError("powers/on_mask shape mismatch")
        if np.any(p[~mask] > 0.0):
            raise ConfigurationError(
                "a powered-off machine cannot draw positive power"
            )
        sp = self.cooler.set_point if set_point is None else float(set_point)

        total_power = float(np.sum(p[mask]))
        f_c = self.cooler.supply_flow * units.C_AIR
        u = self.room.envelope_conductance
        t_env = self.room.t_env

        # Regulated mode: T_room == T_SP.
        q_needed = self.room.steady_heat_load(total_power, sp)
        coil_limit = (sp - self.cooler.t_ac_min) * f_c
        if 0.0 <= q_needed <= min(self.cooler.q_max, coil_limit):
            t_room = sp
            q = q_needed
            regulated = True
        elif q_needed < 0.0:
            # Room would float below the set point even with the cooler
            # off (can only happen if the building is colder than the set
            # point); equilibrium with q == 0.
            if u <= 0.0:
                raise ConvergenceError(
                    "no steady state: zero heat load and no envelope path"
                )
            t_room = t_env + total_power / u
            q = 0.0
            regulated = False
        else:
            # Saturated: try the q_max mode, then the coil-limited mode.
            t_room, q = self._saturated_mode(total_power, f_c, u, t_env, sp)
            regulated = False

        t_ac = t_room - q / f_c
        t_in = self.room.inlet_temperatures(t_ac, t_room)
        n = self.room.node_count
        t_cpu = np.empty(n)
        t_box = np.empty(n)
        for i, node in enumerate(self.room.nodes):
            if mask[i]:
                state = node.steady_state(p[i], t_in[i])
                t_cpu[i] = state.t_cpu
                t_box[i] = state.t_box
            else:
                t_cpu[i] = t_room
                t_box[i] = t_room
                t_in[i] = t_room
        return SteadyState(
            t_room=t_room,
            t_ac=t_ac,
            q_cool=q,
            p_ac=self.cooler.steady_state_power(q),
            t_cpu=t_cpu,
            t_box=t_box,
            t_in=t_in,
            server_power=np.where(mask, p, 0.0),
            regulated=regulated,
        )

    def _saturated_mode(
        self, total_power: float, f_c: float, u: float, t_env: float, sp: float
    ) -> tuple[float, float]:
        """Solve the steady state when the cooler cannot hold the set point."""
        candidates: list[tuple[float, float]] = []
        if u > 0.0:
            # Mode A: capacity-limited at q_max.
            t_room_a = t_env - (self.cooler.q_max - total_power) / u
            t_ac_a = t_room_a - self.cooler.q_max / f_c
            if t_room_a >= sp and t_ac_a >= self.cooler.t_ac_min - 1e-9:
                candidates.append((t_room_a, self.cooler.q_max))
        # Mode B: coil-limited at t_ac_min.
        t_room_b = (total_power + u * t_env + f_c * self.cooler.t_ac_min) / (
            f_c + u
        )
        q_b = (t_room_b - self.cooler.t_ac_min) * f_c
        if t_room_b >= sp and 0.0 <= q_b <= self.cooler.q_max + 1e-9:
            candidates.append((t_room_b, min(q_b, self.cooler.q_max)))
        if not candidates:
            raise ConvergenceError(
                "cooler saturated with no consistent steady state "
                f"(load {total_power:.0f} W exceeds what the unit can reject)"
            )
        # If both modes are consistent the physically binding one is the
        # one yielding the lower capacity.
        return min(candidates, key=lambda c: c[1])
