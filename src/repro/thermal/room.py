"""Machine-room air model (the substrate behind paper Eq. 7).

The paper abstracts the whole room into one affine relation per machine::

    T_in_i = alpha_i * T_ac + gamma_i                            (Eq. 7)

Here we build the physical substrate that *produces* that relation.  The
room is modelled as:

- a cool-air supply stream at temperature ``T_ac`` with total flow
  ``f_ac`` (from the cooling unit, supplied at the ceiling);
- one well-mixed bulk air volume at temperature ``T_room`` (the warm
  region the exhausts feed);
- per-node intake mixing: node *i* draws its flow ``F_i`` as a blend of
  ``supply_fraction_i`` parts supply air and the rest bulk room air, so
  ``T_in_i = m_i * T_ac + (1 - m_i) * T_room`` — exactly Eq. 7's shape
  with the room temperature folded into ``gamma_i`` once the cooling
  loop holds the room at its set point;
- node exhausts and the unused (bypass) part of the supply stream mix
  back into the bulk volume;
- an envelope heat gain ``U * (T_env - T_room)`` from the warmer
  building around the machine room.  This term is what makes the choice
  of operating temperature matter: a colder room absorbs more heat
  through its walls and therefore costs more cooling energy, which is
  the physical trade-off the paper's joint optimization exploits.

Flow bookkeeping is exact: supply in equals return out, and every node's
intake equals its exhaust, so the bulk volume conserves air mass.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro import units
from repro.errors import ConfigurationError
from repro.thermal.node import ComputeNodeThermal


@dataclass(frozen=True)
class MachineRoom:
    """Geometry and air-path model of one machine room.

    Parameters
    ----------
    nodes:
        The computing units in the room, ordered bottom-of-rack first
        (index 0 is the coolest spot; the cool-allocation baseline fills
        machines in this order).
    nu_room:
        Heat capacity of the bulk room air volume, J/K.
    envelope_conductance:
        Heat transfer coefficient ``U`` between the room bulk air and the
        building environment, W/K.
    t_env:
        Temperature of the surrounding building, K.  Must be warmer than
        typical room temperatures for the envelope gain to be a load on
        the cooler (machine rooms inside office buildings usually are the
        cold spot).
    supply_flow:
        Total cool-air supply flow ``f_ac`` of the cooling unit, m^3/s.
        Must exceed the sum of the node supply draws so the bypass flow
        is non-negative.
    """

    nodes: tuple[ComputeNodeThermal, ...]
    nu_room: float
    envelope_conductance: float
    t_env: float
    supply_flow: float

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ConfigurationError("a machine room needs at least one node")
        if self.nu_room <= 0.0:
            raise ConfigurationError(
                f"nu_room must be positive, got {self.nu_room}"
            )
        if self.envelope_conductance < 0.0:
            raise ConfigurationError(
                "envelope_conductance must be non-negative, got "
                f"{self.envelope_conductance}"
            )
        if not units.is_valid_temperature(self.t_env):
            raise ConfigurationError(f"t_env out of range: {self.t_env}")
        if self.supply_flow <= 0.0:
            raise ConfigurationError(
                f"supply_flow must be positive, got {self.supply_flow}"
            )
        drawn = sum(n.flow * n.supply_fraction for n in self.nodes)
        if drawn > self.supply_flow:
            raise ConfigurationError(
                "nodes draw more supply air than the cooler provides: "
                f"{drawn:.4f} > {self.supply_flow:.4f} m^3/s"
            )

    @property
    def node_count(self) -> int:
        """Number of computing units in the room."""
        return len(self.nodes)

    def bypass_flow(self, on_mask: Sequence[bool]) -> float:
        """Supply flow that bypasses the nodes straight into the bulk, m^3/s.

        Powered-off machines have no fans and draw no air.
        """
        drawn = sum(
            n.flow * n.supply_fraction
            for n, on in zip(self.nodes, on_mask)
            if on
        )
        return self.supply_flow - drawn

    def inlet_temperature(
        self, index: int, t_ac: float, t_room: float
    ) -> float:
        """Intake air temperature of node ``index`` (K).

        ``T_in_i = m_i * T_ac + (1 - m_i) * T_room`` — the ground truth
        behind the paper's Eq. 7.
        """
        m = self.nodes[index].supply_fraction
        return m * t_ac + (1.0 - m) * t_room

    def inlet_temperatures(
        self, t_ac: float, t_room: float
    ) -> np.ndarray:
        """Vectorized :meth:`inlet_temperature` over all nodes."""
        m = np.array([n.supply_fraction for n in self.nodes])
        return m * t_ac + (1.0 - m) * t_room

    def room_derivative(
        self,
        t_room: float,
        t_ac: float,
        box_temps: Sequence[float],
        on_mask: Sequence[bool],
    ) -> float:
        """``dT_room/dt`` of the bulk air volume, K/s.

        The bulk receives node exhausts and the bypass supply air, loses
        air to node intakes and to the cooler return, and exchanges heat
        with the building envelope.  Net flow is zero by construction, so
        only the enthalpy differences appear.
        """
        heat_in = 0.0
        for node, t_box, on in zip(self.nodes, box_temps, on_mask):
            if not on:
                continue
            # Exhaust into the bulk minus recirculated intake drawn from it.
            heat_in += node.flow * units.C_AIR * (t_box - t_room)
        heat_in += (
            self.bypass_flow(on_mask) * units.C_AIR * (t_ac - t_room)
        )
        heat_in += self.envelope_conductance * (self.t_env - t_room)
        # The return flow to the cooler leaves at T_room and carries no
        # enthalpy difference with respect to the bulk itself.
        return heat_in / self.nu_room

    def steady_heat_load(
        self, total_server_power: float, t_room: float
    ) -> float:
        """Total heat the cooler must remove at steady state, W.

        At steady state every watt of server power plus the envelope gain
        ends up in the return air stream (see the energy-balance derivation
        in DESIGN.md):  ``q = sum(P_i) + U * (T_env - T_room)``.
        """
        return total_server_power + self.envelope_conductance * (
            self.t_env - t_room
        )

    def ground_truth_alpha_gamma(
        self, t_room: float
    ) -> tuple[np.ndarray, np.ndarray]:
        """The exact ``(alpha_i, gamma_i)`` of Eq. 7 at a held room temp.

        Useful for tests that compare fitted coefficients against ground
        truth.  When the cooling loop regulates the room at its set point,
        ``alpha_i = m_i`` and ``gamma_i = (1 - m_i) * T_room``.  (The fitted
        values differ slightly because the room temperature itself moves
        with set point and load; that residual is the model error the paper
        accepts.)
        """
        m = np.array([n.supply_fraction for n in self.nodes])
        return m, (1.0 - m) * t_room
