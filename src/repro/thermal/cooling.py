"""Cooling unit emulation (paper Section II-B).

The paper's machine room is cooled by a Liebert Challenger 3000 whose
internal control loop manipulates chilled-water flow to hold the *exhaust*
(return) air temperature at a set point ``T_SP``.  We reproduce that
structure: a PI controller measures the return air temperature, compares it
to the set point, and commands a cooling capacity ``q_cool`` (watts of heat
removed from the air stream).  The supply temperature follows from the
enthalpy balance across the coil::

    T_ac = T_return - q_cool / (f_ac * c_air)

and the electrical power drawn by the unit is ``P_ac = q_cool / eta`` with
efficiency ``eta < 1``, which at steady state (return held at ``T_SP``)
reduces exactly to the paper's Eq. 10::

    P_ac = (c_air / eta) * f_ac * (T_SP - T_ac)  =  c * f_ac * (T_SP - T_ac)

The unit has actuator limits: a maximum capacity ``q_max`` and a minimum
supply temperature ``t_ac_min`` (the coil cannot chill below its water
temperature).  When saturated, the room floats above the set point — the
simulation reports this honestly rather than pretending regulation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import units
from repro.errors import ConfigurationError


@dataclass
class CoolingUnit:
    """Chilled-water cooling unit with a PI loop on return-air temperature.

    Parameters
    ----------
    supply_flow:
        Constant air flow ``f_ac`` through the unit, m^3/s.  The real unit
        keeps this fixed to maintain room air circulation, which is why the
        paper does not treat flow as a control knob.
    efficiency:
        ``eta`` in ``(0, 1]``: electrical-to-heat-removal efficiency.
    q_max:
        Maximum heat-removal capacity, W.
    t_ac_min:
        Lowest achievable supply-air temperature, K.
    set_point:
        Return-air temperature set point ``T_SP``, K.  Mutable: the
        policies under evaluation command it.
    fan_power:
        Constant blower draw while the unit runs, W.  The real unit keeps
        its air circulation constant regardless of thermal load, so this
        term is load-independent (and, being constant, never affects which
        policy wins — but it dominates the low-load energy floor, as in
        the paper's measurements).
    kp, ki:
        PI gains of the internal loop (W/K and W/(K*s)).
    """

    supply_flow: float
    efficiency: float
    q_max: float
    t_ac_min: float
    set_point: float
    fan_power: float = 0.0
    kp: float = 4000.0
    ki: float = 120.0
    _integral: float = field(default=0.0, repr=False)
    _q_cool: float = field(default=0.0, repr=False)

    def __post_init__(self) -> None:
        if self.supply_flow <= 0.0:
            raise ConfigurationError(
                f"supply_flow must be positive, got {self.supply_flow}"
            )
        if not 0.0 < self.efficiency <= 1.0:
            raise ConfigurationError(
                f"efficiency must be in (0, 1], got {self.efficiency}"
            )
        if self.q_max <= 0.0:
            raise ConfigurationError(f"q_max must be positive, got {self.q_max}")
        if not units.is_valid_temperature(self.t_ac_min):
            raise ConfigurationError(f"t_ac_min out of range: {self.t_ac_min}")
        if not units.is_valid_temperature(self.set_point):
            raise ConfigurationError(f"set_point out of range: {self.set_point}")
        if self.kp <= 0.0 or self.ki < 0.0:
            raise ConfigurationError(
                f"PI gains must be kp > 0, ki >= 0; got kp={self.kp}, ki={self.ki}"
            )
        if self.fan_power < 0.0:
            raise ConfigurationError(
                f"fan_power must be non-negative, got {self.fan_power}"
            )

    @property
    def c(self) -> float:
        """The paper's lumped cooling constant ``c = c_air / eta``."""
        return units.C_AIR / self.efficiency

    @property
    def q_cool(self) -> float:
        """Heat currently being removed from the air stream, W."""
        return self._q_cool

    def reset(self) -> None:
        """Clear the controller state (integral term and commanded capacity)."""
        self._integral = 0.0
        self._q_cool = 0.0

    def max_capacity_for_return(self, t_return: float) -> float:
        """Largest ``q_cool`` that keeps ``T_ac`` at or above ``t_ac_min``."""
        coil_limit = (
            (t_return - self.t_ac_min) * self.supply_flow * units.C_AIR
        )
        return max(0.0, min(self.q_max, coil_limit))

    def step(self, t_return: float, dt: float) -> tuple[float, float]:
        """Advance the PI loop by ``dt`` seconds.

        Parameters
        ----------
        t_return:
            Measured return (exhaust) air temperature, K.
        dt:
            Step size, seconds.

        Returns
        -------
        (t_ac, p_ac):
            The supply-air temperature (K) and the electrical power the
            unit draws (W) during this step.
        """
        if dt <= 0.0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        error = t_return - self.set_point
        limit = self.max_capacity_for_return(t_return)
        candidate = self.kp * error + self.ki * (self._integral + error * dt)
        if 0.0 <= candidate <= limit:
            # Only accumulate the integral while the actuator is not
            # saturated (conditional anti-windup).
            self._integral += error * dt
        self._q_cool = min(max(candidate, 0.0), limit)
        t_ac = t_return - self._q_cool / (self.supply_flow * units.C_AIR)
        return t_ac, self._q_cool / self.efficiency + self.fan_power

    def supply_temperature(self, t_return: float) -> float:
        """Supply temperature for the currently commanded capacity."""
        return t_return - self._q_cool / (self.supply_flow * units.C_AIR)

    def steady_state_power(
        self, heat_load: float, t_return: Optional[float] = None
    ) -> float:
        """Electrical power at steady state for a given room heat load, W.

        At steady state the unit removes exactly ``heat_load`` watts from
        the air, so ``P_ac = heat_load / eta`` — provided the load is within
        capacity.  When ``t_return`` is given, capacity means *both*
        actuator limits: ``q_max`` and the coil limit
        ``(t_return - t_ac_min) * f_ac * c_air`` (the supply air cannot
        drop below ``t_ac_min``), matching what the transient PI loop and
        the saturated-mode steady-state solver enforce.  Without
        ``t_return`` only ``q_max`` can be applied — the coil limit
        depends on the return temperature.
        """
        if heat_load < 0.0:
            return self.fan_power
        if t_return is None:
            q = min(heat_load, self.q_max)
        else:
            q = min(heat_load, self.max_capacity_for_return(t_return))
        return q / self.efficiency + self.fan_power

    def steady_supply_temperature(
        self, heat_load: float, t_return: float
    ) -> float:
        """Supply temperature at steady state for a given heat load, K.

        The removable heat is clamped through both actuator limits —
        ``q_max`` *and* the coil limit implied by ``t_ac_min`` at this
        return temperature — so the reported supply temperature can
        never fall below ``t_ac_min``, matching ``steady_state_power``
        and the transient PI loop.
        """
        q = min(max(heat_load, 0.0), self.max_capacity_for_return(t_return))
        return t_return - q / (self.supply_flow * units.C_AIR)
