"""Sensor emulation and trace filtering.

The paper measures server power with Watts-up-Pro meters and CPU
temperatures with lm-sensors, then smooths both with a low-pass filter
before regression.  These classes reproduce the measurement path: additive
Gaussian noise plus quantization, driven by an injected
:class:`numpy.random.Generator` so every experiment is reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError


@dataclass
class PowerMeter:
    """Watts-up-Pro style power meter: 1 Hz samples, ~0.5 W noise.

    Parameters
    ----------
    noise_std:
        Standard deviation of the additive Gaussian measurement noise, W.
    resolution:
        Quantization step of the reported value, W (the real meter reports
        tenths of a watt).
    """

    rng: np.random.Generator
    noise_std: float = 0.5
    resolution: float = 0.1

    def __post_init__(self) -> None:
        if self.noise_std < 0.0:
            raise ConfigurationError(
                f"noise_std must be non-negative, got {self.noise_std}"
            )
        if self.resolution <= 0.0:
            raise ConfigurationError(
                f"resolution must be positive, got {self.resolution}"
            )

    def read(self, true_power: float) -> float:
        """One noisy, quantized sample of ``true_power`` (W)."""
        noisy = true_power + self.rng.normal(0.0, self.noise_std)
        return max(0.0, round(noisy / self.resolution) * self.resolution)

    def read_many(self, true_power: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`read` over an array of true powers."""
        arr = np.asarray(true_power, dtype=float)
        noisy = arr + self.rng.normal(0.0, self.noise_std, size=arr.shape)
        return np.maximum(
            0.0, np.round(noisy / self.resolution) * self.resolution
        )


@dataclass
class TemperatureSensor:
    """lm-sensors style CPU temperature sensor: 1 K steps, ~0.3 K noise."""

    rng: np.random.Generator
    noise_std: float = 0.3
    resolution: float = 1.0

    def __post_init__(self) -> None:
        if self.noise_std < 0.0:
            raise ConfigurationError(
                f"noise_std must be non-negative, got {self.noise_std}"
            )
        if self.resolution <= 0.0:
            raise ConfigurationError(
                f"resolution must be positive, got {self.resolution}"
            )

    def read(self, true_temperature: float) -> float:
        """One noisy, quantized sample of ``true_temperature`` (K)."""
        noisy = true_temperature + self.rng.normal(0.0, self.noise_std)
        return round(noisy / self.resolution) * self.resolution

    def read_many(self, true_temperature: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`read` over an array of true temperatures."""
        arr = np.asarray(true_temperature, dtype=float)
        noisy = arr + self.rng.normal(0.0, self.noise_std, size=arr.shape)
        return np.round(noisy / self.resolution) * self.resolution


def low_pass_filter(samples: np.ndarray, alpha: float = 0.05) -> np.ndarray:
    """First-order exponential low-pass filter.

    The paper smooths measured power and temperature traces with a low-pass
    filter before fitting (Figs. 2-3).  ``alpha`` is the smoothing factor in
    ``(0, 1]``: smaller means heavier smoothing.
    """
    arr = np.asarray(samples, dtype=float)
    if arr.ndim != 1:
        raise ConfigurationError(
            f"low_pass_filter expects a 1-D trace, got ndim={arr.ndim}"
        )
    if not 0.0 < alpha <= 1.0:
        raise ConfigurationError(f"alpha must be in (0, 1], got {alpha}")
    if arr.size == 0:
        return arr.copy()
    out = np.empty_like(arr)
    out[0] = arr[0]
    for i in range(1, arr.size):
        out[i] = out[i - 1] + alpha * (arr[i] - out[i - 1])
    return out


def moving_average(samples: np.ndarray, window: int) -> np.ndarray:
    """Centered moving average, used for plotting-style smoothing.

    Edge windows shrink symmetrically so the output has the same length as
    the input.
    """
    arr = np.asarray(samples, dtype=float)
    if window <= 0:
        raise ConfigurationError(f"window must be positive, got {window}")
    if arr.ndim != 1:
        raise ConfigurationError(
            f"moving_average expects a 1-D trace, got ndim={arr.ndim}"
        )
    half = window // 2
    out = np.empty_like(arr)
    for i in range(arr.size):
        lo = max(0, i - half)
        hi = min(arr.size, i + half + 1)
        out[i] = float(np.mean(arr[lo:hi]))
    return out
