"""Thermal substrate: the simulated machine room.

This subpackage stands in for the paper's physical testbed (one rack of 20
Dell R210 machines cooled by a Liebert Challenger 3000).  It implements:

- :mod:`repro.thermal.node` — the per-computing-unit thermal ODEs
  (paper Eqs. 1-2) and their steady state (Eqs. 3-5);
- :mod:`repro.thermal.room` — the machine-room air model that produces the
  affine inlet-temperature relation of Eq. 7 as emergent behaviour;
- :mod:`repro.thermal.cooling` — a chilled-water cooling unit with an
  internal PI control loop regulating *exhaust* (return) air temperature to
  the set point, exactly the control structure the paper describes;
- :mod:`repro.thermal.simulation` — the coupled integrator plus a fast
  algebraic steady-state solver;
- :mod:`repro.thermal.sensors` — noisy, quantized sensor emulations
  (Watts-up-Pro power meters, lm-sensors CPU temperatures) and the low-pass
  filter the paper applies before regression;
- :mod:`repro.thermal.plant` — the weather-aware chiller plant behind the
  coil: ASHRAE-style COP curves, a hysteretic economizer, cooling-tower
  water accounting, and the per-operating-point Eq. 10 re-linearization.
"""

from repro.thermal.cooling import CoolingUnit
from repro.thermal.node import ComputeNodeThermal, NodeThermalState
from repro.thermal.plant import (
    ChillerPlant,
    COPCurve,
    CoolingTowerConfig,
    EconomizerConfig,
    default_plant,
)
from repro.thermal.room import MachineRoom
from repro.thermal.sensors import PowerMeter, TemperatureSensor, low_pass_filter
from repro.thermal.simulation import RoomSimulation, SteadyState

__all__ = [
    "ComputeNodeThermal",
    "NodeThermalState",
    "MachineRoom",
    "CoolingUnit",
    "ChillerPlant",
    "COPCurve",
    "EconomizerConfig",
    "CoolingTowerConfig",
    "default_plant",
    "RoomSimulation",
    "SteadyState",
    "PowerMeter",
    "TemperatureSensor",
    "low_pass_filter",
]
