"""Exporter glue: bench-results observability JSON and schema checks.

The benchmark harness (``benchmarks/conftest.py``) enables observability
for the whole session and, at teardown, writes
``benchmarks/results/observability.json`` through
:func:`write_bench_observability`.  The file is the machine-readable
side of the perf trajectory: a ``stages`` map of wall-clock summaries
for every instrumented span, plus the counter/gauge totals of the run.

:func:`validate_bench_observability` is the schema check wired into
tier-1 (``tests/test_bench_schema.py``): any future change to the
emitted shape must update the validator (and the documented schema in
``docs/observability.md``) in the same PR, so drift is caught at test
time rather than by a broken dashboard.

The consolidation scale bench (``benchmarks/bench_consolidation_scale.py``)
writes a second artifact, ``benchmarks/results/consolidation_scale.json``
— per-``n`` build/query timings of the vectorized Algorithm 1 against
the pure-Python reference — validated by
:func:`validate_consolidation_scale` under the same drift contract.
"""

from __future__ import annotations

import json
import math
import pathlib
import re
from typing import Iterable, Mapping, Optional, Union

from repro.errors import ConfigurationError
from repro.obs.metrics import SCHEMA_VERSION, MetricsRegistry
from repro.obs.trace import TraceBuffer

#: Keys every histogram summary must carry.
_SUMMARY_KEYS = ("count", "total", "mean", "min", "max")

#: Keys the optional trace summary must carry (all non-negative ints).
_TRACE_KEYS = ("schema", "spans", "events", "dropped_spans",
               "dropped_events", "violations")


def bench_observability(
    registry: MetricsRegistry, trace: Optional[TraceBuffer] = None
) -> dict:
    """The bench-results observability document for ``registry``.

    Shape (see ``docs/observability.md`` for the worked schema)::

        {
          "schema": 1,
          "stages": {"<span path>": {count,total,mean,min,max}, ...},
          "counters": {"<name>": <total>, ...},
          "gauges": {"<name>": <value>, ...},
          "runs": <number of completed run records>,
          "trace": {schema, spans, events, dropped_spans,
                    dropped_events, violations}        # when traced
        }

    The ``trace`` section appears only when a non-empty
    :class:`~repro.obs.trace.TraceBuffer` is passed — the bench session
    includes it when any bench ran with tracing on.
    """
    snapshot = registry.snapshot()
    document = {
        "schema": snapshot["schema"],
        "stages": registry.timings(),
        "counters": snapshot["counters"],
        "gauges": snapshot["gauges"],
        "runs": len(snapshot["records"]),
    }
    if trace is not None and len(trace):
        document["trace"] = trace.summary()
    return document


def write_bench_observability(
    path: Union[str, pathlib.Path],
    registry: MetricsRegistry,
    trace: Optional[TraceBuffer] = None,
) -> pathlib.Path:
    """Write the per-stage timing document to ``path``; returns it."""
    target = pathlib.Path(path)
    document = bench_observability(registry, trace=trace)
    validate_bench_observability(document)
    target.write_text(json.dumps(document, indent=2) + "\n")
    return target


def validate_bench_observability(document: Mapping) -> None:
    """Raise :class:`ConfigurationError` unless ``document`` conforms.

    Checks the contract downstream tooling relies on: the schema stamp,
    a ``stages`` timing map whose entries are complete histogram
    summaries with coherent statistics, and numeric counter/gauge maps.
    """
    if not isinstance(document, Mapping):
        raise ConfigurationError("observability document must be a mapping")
    if document.get("schema") != SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported observability schema {document.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    stages = document.get("stages")
    if not isinstance(stages, Mapping):
        raise ConfigurationError("'stages' timing map missing")
    for name, summary in stages.items():
        if not isinstance(summary, Mapping):
            raise ConfigurationError(f"stage {name!r} summary must be a map")
        missing = [k for k in _SUMMARY_KEYS if k not in summary]
        if missing:
            raise ConfigurationError(
                f"stage {name!r} summary missing {missing}"
            )
        count = summary["count"]
        if not isinstance(count, int) or count < 0:
            raise ConfigurationError(
                f"stage {name!r} count must be a non-negative int"
            )
        for key in ("total", "mean", "min", "max"):
            if not isinstance(summary[key], (int, float)):
                raise ConfigurationError(
                    f"stage {name!r} {key} must be numeric"
                )
        if count and not (
            summary["min"] - 1e-12
            <= summary["mean"]
            <= summary["max"] + 1e-12
        ):
            raise ConfigurationError(
                f"stage {name!r} mean outside [min, max]"
            )
    for section in ("counters", "gauges"):
        values = document.get(section)
        if not isinstance(values, Mapping):
            raise ConfigurationError(f"{section!r} map missing")
        for name, value in values.items():
            if not isinstance(value, (int, float)):
                raise ConfigurationError(
                    f"{section} entry {name!r} must be numeric"
                )
    runs = document.get("runs")
    if not isinstance(runs, int) or runs < 0:
        raise ConfigurationError("'runs' must be a non-negative int")
    if "trace" in document:
        trace = document["trace"]
        if not isinstance(trace, Mapping):
            raise ConfigurationError("'trace' summary must be a map")
        missing = [k for k in _TRACE_KEYS if k not in trace]
        if missing:
            raise ConfigurationError(f"trace summary missing {missing}")
        for key in _TRACE_KEYS:
            value = trace[key]
            if not isinstance(value, int) or value < 0:
                raise ConfigurationError(
                    f"trace {key!r} must be a non-negative int"
                )


#: Keys every consolidation-scale entry must carry.
_SCALE_ENTRY_KEYS = (
    "n", "events", "statuses", "queries", "build_seconds",
    "baseline_build_seconds", "speedup", "query_seconds_single",
    "query_seconds_batched", "identical_answers",
)

#: Keys every pod-sharded scale entry must carry.
_SCALE_SHARDED_KEYS = (
    "n", "pods", "statuses", "queries", "build_seconds",
    "query_seconds_single", "query_seconds_batched",
    "max_load_seconds", "exact_gap", "anneal_gap", "anneal_seconds",
)


def validate_consolidation_scale(document: Mapping) -> None:
    """Raise :class:`ConfigurationError` unless ``document`` is a valid
    consolidation-scale record.

    Shape (written by ``benchmarks/bench_consolidation_scale.py`` to
    ``benchmarks/results/consolidation_scale.json``)::

        {
          "schema": 1,
          "kind": "consolidation-scale",
          "seed": <int>,
          "entries": [
            {
              "n": <machines>, "events": <int>, "statuses": <int>,
              "queries": <int>,
              "build_seconds": <vectorized build, s>,
              "baseline_build_seconds": <pure-Python build, s> | null,
              "speedup": <baseline / vectorized> | null,
              "query_seconds_single": <mean per one-at-a-time query, s>,
              "query_seconds_batched": <mean per query via query_many, s>,
              "identical_answers": true | null
            }, ...
          ],
          "sharded": [            # optional pod-sharded sweep
            {
              "n": <machines>, "pods": <int>, "statuses": <int>,
              "queries": <int>,
              "build_seconds": <sharded build, s>,
              "query_seconds_single": <mean per fresh query, s>,
              "query_seconds_batched": <mean per query via query_many, s>,
              "max_load_seconds": <one maxL call, s>,
              "exact_gap": <worst signed relative power gap vs the
                            monolithic scan> | null,
              "anneal_gap": <mean signed relative gap of the sharded
                             answer vs a seeded annealing baseline>,
              "anneal_seconds": <total anneal wall time, s>
            }, ...
          ]
        }

    ``baseline_build_seconds`` / ``speedup`` / ``identical_answers`` are
    ``null`` for sizes where the pure-Python baseline was skipped; when
    the baseline ran, ``identical_answers`` records that both engines
    returned byte-identical tables and query answers (the bench asserts
    it, the schema requires the stamp to be present and true).

    In the ``sharded`` section ``exact_gap`` is ``null`` above the
    exact-comparison cutoff, and ``anneal_gap`` may be *negative*: the
    prefix scans skip capacity-infeasible ratio-optimal prefixes, so a
    same-size annealed subset can legitimately win where capacities
    bind (the bench bounds, not signs, the gap).
    """
    if not isinstance(document, Mapping):
        raise ConfigurationError(
            "consolidation-scale document must be a mapping"
        )
    if document.get("schema") != SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported consolidation-scale schema "
            f"{document.get('schema')!r} (expected {SCHEMA_VERSION})"
        )
    if document.get("kind") != "consolidation-scale":
        raise ConfigurationError(
            f"not a consolidation-scale record "
            f"(kind={document.get('kind')!r})"
        )
    if not isinstance(document.get("seed"), int):
        raise ConfigurationError("'seed' must be an int")
    entries = document.get("entries")
    if not isinstance(entries, list) or not entries:
        raise ConfigurationError("'entries' must be a non-empty list")
    for entry in entries:
        if not isinstance(entry, Mapping):
            raise ConfigurationError("each entry must be a map")
        missing = [k for k in _SCALE_ENTRY_KEYS if k not in entry]
        if missing:
            raise ConfigurationError(f"entry missing {missing}")
        for key in ("n", "events", "statuses", "queries"):
            value = entry[key]
            if not isinstance(value, int) or value < 0:
                raise ConfigurationError(
                    f"entry {key!r} must be a non-negative int"
                )
        if entry["n"] < 1:
            raise ConfigurationError("entry 'n' must be at least 1")
        for key in ("build_seconds", "query_seconds_single",
                    "query_seconds_batched"):
            value = entry[key]
            if not isinstance(value, (int, float)) or value < 0.0:
                raise ConfigurationError(
                    f"entry {key!r} must be a non-negative number"
                )
        baseline = entry["baseline_build_seconds"]
        speedup = entry["speedup"]
        identical = entry["identical_answers"]
        if baseline is None:
            if speedup is not None or identical is not None:
                raise ConfigurationError(
                    "'speedup' and 'identical_answers' must be null "
                    "when the baseline was skipped"
                )
        else:
            if not isinstance(baseline, (int, float)) or baseline < 0.0:
                raise ConfigurationError(
                    "'baseline_build_seconds' must be a non-negative "
                    "number or null"
                )
            if not isinstance(speedup, (int, float)) or speedup < 0.0:
                raise ConfigurationError(
                    "'speedup' must accompany a measured baseline"
                )
            if identical is not True:
                raise ConfigurationError(
                    "'identical_answers' must be true when the baseline "
                    "ran — engines disagreed or the stamp is missing"
                )
    sharded = document.get("sharded")
    if sharded is None:
        return
    if not isinstance(sharded, list) or not sharded:
        raise ConfigurationError(
            "'sharded' must be a non-empty list when present"
        )
    for entry in sharded:
        if not isinstance(entry, Mapping):
            raise ConfigurationError("each sharded entry must be a map")
        missing = [k for k in _SCALE_SHARDED_KEYS if k not in entry]
        if missing:
            raise ConfigurationError(f"sharded entry missing {missing}")
        for key in ("n", "pods", "statuses", "queries"):
            value = entry[key]
            if not isinstance(value, int) or value < 1:
                raise ConfigurationError(
                    f"sharded entry {key!r} must be a positive int"
                )
        if entry["pods"] > entry["n"]:
            raise ConfigurationError(
                "sharded entry 'pods' cannot exceed 'n'"
            )
        for key in ("build_seconds", "query_seconds_single",
                    "query_seconds_batched", "max_load_seconds",
                    "anneal_seconds"):
            value = entry[key]
            if not isinstance(value, (int, float)) or value < 0.0:
                raise ConfigurationError(
                    f"sharded entry {key!r} must be a non-negative number"
                )
        exact_gap = entry["exact_gap"]
        if exact_gap is not None and not isinstance(exact_gap, (int, float)):
            raise ConfigurationError(
                "sharded entry 'exact_gap' must be a number or null"
            )
        if not isinstance(entry["anneal_gap"], (int, float)):
            raise ConfigurationError(
                "sharded entry 'anneal_gap' must be a number"
            )


#: Controllers every resilience scenario must report.
_RESILIENCE_CONTROLLERS = ("naive", "resilient", "oracle")

#: Metric keys every per-controller resilience row must carry.
_RESILIENCE_ROW_KEYS = (
    "violation_seconds", "violation_seconds_after_grace",
    "recovery_seconds", "energy_joules", "energy_overhead_vs_oracle",
    "offered_task_seconds", "served_task_seconds", "shed_task_seconds",
    "reconfigurations", "suppressed", "safe_mode_entries",
    "sensors_quarantined", "max_t_cpu",
)


def validate_resilience(document: Mapping) -> None:
    """Raise :class:`ConfigurationError` unless ``document`` is a valid
    fault-campaign record.

    Shape (written by ``repro faults`` to
    ``benchmarks/results/resilience.json``; built by
    :func:`repro.faults.campaign.run_campaign`)::

        {
          "schema": 1,
          "kind": "resilience",
          "seed": <int>, "machines": <int>,
          "control_dt": <s>, "sim_dt": <s>, "grace_steps": <int>,
          "scenarios": [
            {
              "name": <str>, "description": <str>,
              "load_fraction": <0..1>, "duration": <s>,
              "fault_transitions": <int>,
              "controllers": {
                "naive" | "resilient" | "oracle": {
                  "violation_seconds": <s>,
                  "violation_seconds_after_grace": <s>,
                  "recovery_seconds": <s> | null,
                  "energy_joules": <J>,
                  "energy_overhead_vs_oracle": <ratio> | null,
                  "offered_task_seconds": <task*s>,
                  "served_task_seconds": <task*s>,
                  "shed_task_seconds": <task*s>,
                  "reconfigurations": <int>, "suppressed": <int>,
                  "safe_mode_entries": <int>,
                  "sensors_quarantined": <int>,
                  "max_t_cpu": <K>
                }, ...
              }
            }, ...
          ]
        }

    ``recovery_seconds`` is ``null`` only for a scenario with no fault
    onsets; the grace-filtered violation count can never exceed the raw
    one.
    """
    if not isinstance(document, Mapping):
        raise ConfigurationError("resilience document must be a mapping")
    if document.get("schema") != SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported resilience schema {document.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    if document.get("kind") != "resilience":
        raise ConfigurationError(
            f"not a resilience record (kind={document.get('kind')!r})"
        )
    for key in ("seed", "machines", "grace_steps"):
        if not isinstance(document.get(key), int):
            raise ConfigurationError(f"{key!r} must be an int")
    for key in ("control_dt", "sim_dt"):
        value = document.get(key)
        if not isinstance(value, (int, float)) or value <= 0.0:
            raise ConfigurationError(f"{key!r} must be a positive number")
    scenarios = document.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        raise ConfigurationError("'scenarios' must be a non-empty list")
    for scenario in scenarios:
        if not isinstance(scenario, Mapping):
            raise ConfigurationError("each scenario must be a map")
        name = scenario.get("name")
        if not isinstance(name, str) or not name:
            raise ConfigurationError("scenario 'name' must be a non-empty str")
        fraction = scenario.get("load_fraction")
        if not isinstance(fraction, (int, float)) or not 0.0 < fraction <= 1.0:
            raise ConfigurationError(
                f"scenario {name!r} load_fraction must be in (0, 1]"
            )
        duration = scenario.get("duration")
        if not isinstance(duration, (int, float)) or duration <= 0.0:
            raise ConfigurationError(
                f"scenario {name!r} duration must be positive"
            )
        transitions = scenario.get("fault_transitions")
        if not isinstance(transitions, int) or transitions < 0:
            raise ConfigurationError(
                f"scenario {name!r} fault_transitions must be a "
                "non-negative int"
            )
        controllers = scenario.get("controllers")
        if not isinstance(controllers, Mapping):
            raise ConfigurationError(
                f"scenario {name!r} 'controllers' map missing"
            )
        missing = [
            c for c in _RESILIENCE_CONTROLLERS if c not in controllers
        ]
        if missing:
            raise ConfigurationError(
                f"scenario {name!r} missing controllers {missing}"
            )
        for controller, row in controllers.items():
            if not isinstance(row, Mapping):
                raise ConfigurationError(
                    f"{name}/{controller} row must be a map"
                )
            absent = [k for k in _RESILIENCE_ROW_KEYS if k not in row]
            if absent:
                raise ConfigurationError(
                    f"{name}/{controller} row missing {absent}"
                )
            for key in ("violation_seconds", "violation_seconds_after_grace",
                        "energy_joules", "offered_task_seconds",
                        "served_task_seconds", "shed_task_seconds"):
                value = row[key]
                if not isinstance(value, (int, float)) or value < 0.0:
                    raise ConfigurationError(
                        f"{name}/{controller} {key!r} must be a "
                        "non-negative number"
                    )
            for key in ("reconfigurations", "suppressed",
                        "safe_mode_entries", "sensors_quarantined"):
                value = row[key]
                if not isinstance(value, int) or value < 0:
                    raise ConfigurationError(
                        f"{name}/{controller} {key!r} must be a "
                        "non-negative int"
                    )
            if not isinstance(row["max_t_cpu"], (int, float)):
                raise ConfigurationError(
                    f"{name}/{controller} 'max_t_cpu' must be numeric"
                )
            recovery = row["recovery_seconds"]
            if recovery is not None and (
                not isinstance(recovery, (int, float)) or recovery < 0.0
            ):
                raise ConfigurationError(
                    f"{name}/{controller} 'recovery_seconds' must be a "
                    "non-negative number or null"
                )
            overhead = row["energy_overhead_vs_oracle"]
            if overhead is not None and not isinstance(
                overhead, (int, float)
            ):
                raise ConfigurationError(
                    f"{name}/{controller} 'energy_overhead_vs_oracle' "
                    "must be numeric or null"
                )
            if (
                row["violation_seconds_after_grace"]
                > row["violation_seconds"] + 1e-9
            ):
                raise ConfigurationError(
                    f"{name}/{controller}: grace-filtered violations "
                    "exceed the raw count"
                )


def write_resilience(
    path: Union[str, pathlib.Path], document: Mapping
) -> pathlib.Path:
    """Validate and write a fault-campaign document to ``path``."""
    target = pathlib.Path(path)
    validate_resilience(document)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return target


#: Keys every simulation-speed entry must carry.
_SIM_SPEED_ENTRY_KEYS = (
    "n", "steps_numpy", "steps_python", "seconds_numpy", "seconds_python",
    "steps_per_second_numpy", "steps_per_second_python", "speedup",
    "identical_trajectory",
)


def validate_simulation_speed(document: Mapping) -> None:
    """Raise :class:`ConfigurationError` unless ``document`` is a valid
    simulation-speed record.

    Shape (written by ``benchmarks/bench_simulation_speed.py`` to
    ``benchmarks/results/simulation_speed.json``)::

        {
          "schema": 1,
          "kind": "simulation-speed",
          "seed": <int>,
          "dt": <integrator step, s>,
          "entries": [
            {
              "n": <machines>,
              "steps_numpy": <timed steps, vectorized engine>,
              "steps_python": <timed steps, loop engine>,
              "seconds_numpy": <best-of-rounds wall clock, s>,
              "seconds_python": <best-of-rounds wall clock, s>,
              "steps_per_second_numpy": <throughput>,
              "steps_per_second_python": <throughput>,
              "speedup": <numpy throughput / python throughput>,
              "identical_trajectory": true
            }, ...
          ]
        }

    ``identical_trajectory`` records that, before timing, both engines
    were stepped through the same seeded scenario and finished in
    exactly equal states (the bench asserts it; the schema requires the
    stamp to be present and true).
    """
    if not isinstance(document, Mapping):
        raise ConfigurationError(
            "simulation-speed document must be a mapping"
        )
    if document.get("schema") != SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported simulation-speed schema "
            f"{document.get('schema')!r} (expected {SCHEMA_VERSION})"
        )
    if document.get("kind") != "simulation-speed":
        raise ConfigurationError(
            f"not a simulation-speed record (kind={document.get('kind')!r})"
        )
    if not isinstance(document.get("seed"), int):
        raise ConfigurationError("'seed' must be an int")
    dt = document.get("dt")
    if not isinstance(dt, (int, float)) or dt <= 0.0:
        raise ConfigurationError("'dt' must be a positive number")
    entries = document.get("entries")
    if not isinstance(entries, list) or not entries:
        raise ConfigurationError("'entries' must be a non-empty list")
    for entry in entries:
        if not isinstance(entry, Mapping):
            raise ConfigurationError("each entry must be a map")
        missing = [k for k in _SIM_SPEED_ENTRY_KEYS if k not in entry]
        if missing:
            raise ConfigurationError(f"entry missing {missing}")
        for key in ("n", "steps_numpy", "steps_python"):
            value = entry[key]
            if not isinstance(value, int) or value < 1:
                raise ConfigurationError(
                    f"entry {key!r} must be a positive int"
                )
        for key in ("seconds_numpy", "seconds_python",
                    "steps_per_second_numpy", "steps_per_second_python",
                    "speedup"):
            value = entry[key]
            if not isinstance(value, (int, float)) or value <= 0.0:
                raise ConfigurationError(
                    f"entry {key!r} must be a positive number"
                )
        if entry["identical_trajectory"] is not True:
            raise ConfigurationError(
                "'identical_trajectory' must be true — engines disagreed "
                "or the equivalence check did not run"
            )


#: Keys every serving-benchmark entry must carry.
_SERVING_ENTRY_KEYS = (
    "clients", "batching", "batch_window_seconds", "max_batch",
    "requests", "errors", "duration_seconds", "requests_per_second",
    "latency_mean_ms", "latency_p50_ms", "latency_p99_ms",
    "batches", "mean_batch_size", "max_batch_size", "coalesced",
    "identical_answers", "batch_size_histogram",
)


def validate_serving(document: Mapping) -> None:
    """Raise :class:`ConfigurationError` unless ``document`` is a valid
    serving-benchmark record.

    Shape (written by ``benchmarks/bench_serving.py`` to
    ``benchmarks/results/serving.json``; rendered by the
    ``repro dashboard`` serving section)::

        {
          "schema": 1,
          "kind": "serving",
          "seed": <int>,
          "machines": <n>,
          "index_statuses": <rows in the warm Algorithm-1 table>,
          "levels": <distinct quantized load levels in the workload>,
          "warm_start_seconds": <index warm-start wall clock, s>,
          "entries": [
            {
              "clients": <concurrent clients simulated>,
              "batching": true | false,
              "batch_window_seconds": <collector window, s>,
              "max_batch": <dispatch cap>,
              "requests": <completed>, "errors": <failed>,
              "duration_seconds": <makespan, s>,
              "requests_per_second": <throughput>,
              "latency_mean_ms": <ms>, "latency_p50_ms": <ms>,
              "latency_p99_ms": <ms>,
              "batches": <dispatches>, "mean_batch_size": <float>,
              "max_batch_size": <int>,
              "coalesced": <duplicate loads answered from a batch twin>,
              "identical_answers": true,
              "batch_size_histogram": {"<dispatch size>": <count>, ...}
            }, ...
          ]
        }

    Every ``clients`` level must appear exactly twice — once batched,
    once unbatched — because the artifact's whole point is the paired
    comparison.  ``identical_answers`` records that the benchmark
    cross-checked served allocations against direct
    ``JointOptimizer.solve`` calls.
    """
    if not isinstance(document, Mapping):
        raise ConfigurationError("serving document must be a mapping")
    if document.get("schema") != SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported serving schema {document.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    if document.get("kind") != "serving":
        raise ConfigurationError(
            f"not a serving record (kind={document.get('kind')!r})"
        )
    if not isinstance(document.get("seed"), int):
        raise ConfigurationError("'seed' must be an int")
    for key in ("machines", "index_statuses", "levels"):
        value = document.get(key)
        if not isinstance(value, int) or value < 1:
            raise ConfigurationError(f"{key!r} must be a positive int")
    warm = document.get("warm_start_seconds")
    if not isinstance(warm, (int, float)) or warm < 0.0:
        raise ConfigurationError(
            "'warm_start_seconds' must be a non-negative number"
        )
    entries = document.get("entries")
    if not isinstance(entries, list) or not entries:
        raise ConfigurationError("'entries' must be a non-empty list")
    modes_by_clients: dict = {}
    for entry in entries:
        if not isinstance(entry, Mapping):
            raise ConfigurationError("each entry must be a map")
        missing = [k for k in _SERVING_ENTRY_KEYS if k not in entry]
        if missing:
            raise ConfigurationError(f"entry missing {missing}")
        if not isinstance(entry["batching"], bool):
            raise ConfigurationError("entry 'batching' must be a bool")
        for key in ("clients", "requests", "batches", "max_batch",
                    "max_batch_size"):
            value = entry[key]
            if not isinstance(value, int) or value < 1:
                raise ConfigurationError(
                    f"entry {key!r} must be a positive int"
                )
        for key in ("errors", "coalesced"):
            value = entry[key]
            if not isinstance(value, int) or value < 0:
                raise ConfigurationError(
                    f"entry {key!r} must be a non-negative int"
                )
        for key in ("duration_seconds", "requests_per_second",
                    "latency_mean_ms", "latency_p50_ms", "latency_p99_ms"):
            value = entry[key]
            if not isinstance(value, (int, float)) or value <= 0.0:
                raise ConfigurationError(
                    f"entry {key!r} must be a positive number"
                )
        window = entry["batch_window_seconds"]
        if not isinstance(window, (int, float)) or window < 0.0:
            raise ConfigurationError(
                "entry 'batch_window_seconds' must be a non-negative number"
            )
        mean_size = entry["mean_batch_size"]
        if not isinstance(mean_size, (int, float)) or mean_size < 1.0:
            raise ConfigurationError(
                "entry 'mean_batch_size' must be at least 1"
            )
        if entry["latency_p50_ms"] > entry["latency_p99_ms"] + 1e-9:
            raise ConfigurationError("entry p50 latency exceeds p99")
        if entry["identical_answers"] is not True:
            raise ConfigurationError(
                "'identical_answers' must be true — served allocations "
                "were not cross-checked against the library"
            )
        histogram = entry["batch_size_histogram"]
        if not isinstance(histogram, Mapping) or not histogram:
            raise ConfigurationError(
                "entry 'batch_size_histogram' must be a non-empty map"
            )
        accounted = 0
        for size, count in histogram.items():
            if (
                not isinstance(size, str)
                or not size.isdigit()
                or int(size) < 1
                or not isinstance(count, int)
                or count < 1
            ):
                raise ConfigurationError(
                    "entry 'batch_size_histogram' keys must be positive "
                    "integer strings with positive int counts"
                )
            accounted += int(size) * count
        if accounted != entry["requests"]:
            raise ConfigurationError(
                f"batch_size_histogram accounts for {accounted} requests, "
                f"entry reports {entry['requests']}"
            )
        modes = modes_by_clients.setdefault(entry["clients"], [])
        modes.append(entry["batching"])
    for clients, modes in sorted(modes_by_clients.items()):
        if sorted(modes) != [False, True]:
            raise ConfigurationError(
                f"clients={clients} must appear exactly twice "
                "(batching on and off), got "
                f"{len(modes)} entries"
            )


def write_serving(
    path: Union[str, pathlib.Path], document: Mapping
) -> pathlib.Path:
    """Validate and write a serving-benchmark document to ``path``."""
    target = pathlib.Path(path)
    validate_serving(document)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return target


#: Controllers every MPC-campaign scenario must report.
_MPC_CONTROLLERS = ("reactive", "resilient", "mpc", "oracle")

#: Metric keys every per-controller MPC row must carry.
_MPC_ROW_KEYS = (
    "violation_seconds", "energy_joules", "energy_overhead_vs_oracle",
    "offered_task_seconds", "served_task_seconds", "shed_task_seconds",
    "reconfigurations", "suppressed", "on_set_changes", "max_t_cpu",
    "horizon_solves", "fallbacks", "precools",
)

#: Keys every dominance row must carry.
_MPC_DOMINANCE_KEYS = (
    "scenario", "flash_crowd", "mpc_violation_seconds",
    "reactive_violation_seconds", "mpc_energy_joules",
    "reactive_energy_joules", "dominates",
)


def validate_mpc(document: Mapping) -> None:
    """Raise :class:`ConfigurationError` unless ``document`` is a valid
    MPC-campaign record.

    Shape (written by ``repro mpc`` / ``benchmarks/bench_mpc.py`` to
    ``benchmarks/results/mpc.json``; built by
    :func:`repro.control.campaign.run_mpc_campaign`)::

        {
          "schema": 1,
          "kind": "mpc",
          "seed": <int>, "machines": <int>, "horizon": <int>,
          "control_dt": <s>, "sim_dt": <s>,
          "entries": [            # flat per-(scenario, controller) rows
            {
              "scenario": <str>,
              "controller": "reactive"|"resilient"|"mpc"|"oracle",
              "violation_seconds": <s>, "energy_joules": <J>,
              "energy_overhead_vs_oracle": <ratio> | null,
              "offered_task_seconds": <task*s>,
              "served_task_seconds": <task*s>,
              "shed_task_seconds": <task*s>,
              "reconfigurations": <int>, "suppressed": <int>,
              "on_set_changes": <int>, "max_t_cpu": <K>,
              "horizon_solves": <int>, "fallbacks": <int>,
              "precools": <int>
            }, ...
          ],
          "scenarios": [
            {
              "name": <str>, "description": <str>,
              "flash_crowd": <bool>, "duration": <s>,
              "peak_load_fraction": <float> | null,
              "controllers": {"reactive": {...}, "resilient": {...},
                              "mpc": {...}, "oracle": {...}}
            }, ...
          ],
          "dominance": [          # the acceptance gate, one per scenario
            {
              "scenario": <str>, "flash_crowd": <bool>,
              "mpc_violation_seconds": <s>,
              "reactive_violation_seconds": <s>,
              "mpc_energy_joules": <J>, "reactive_energy_joules": <J>,
              "dominates": <bool>
            }, ...
          ]
        }

    The validator checks *consistency*, not the gate itself: every
    scenario carries all four controller rows, every dominance row's
    ``dominates`` flag agrees with its own numbers (strictly fewer
    violation-seconds at equal-or-lower energy), and the flat
    ``entries`` cover exactly the scenario/controller product.  Whether
    some flash-crowd row actually dominates is the *bench/CI* gate
    (``benchmarks/bench_mpc.py``), not a schema property.
    """
    if not isinstance(document, Mapping):
        raise ConfigurationError("mpc document must be a mapping")
    if document.get("schema") != SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported mpc schema {document.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    if document.get("kind") != "mpc":
        raise ConfigurationError(
            f"not an mpc record (kind={document.get('kind')!r})"
        )
    for key in ("seed", "machines", "horizon"):
        if not isinstance(document.get(key), int):
            raise ConfigurationError(f"{key!r} must be an int")
    if document["machines"] < 1 or document["horizon"] < 1:
        raise ConfigurationError(
            "'machines' and 'horizon' must be positive"
        )
    for key in ("control_dt", "sim_dt"):
        value = document.get(key)
        if not isinstance(value, (int, float)) or value <= 0.0:
            raise ConfigurationError(f"{key!r} must be a positive number")
    scenarios = document.get("scenarios")
    if not isinstance(scenarios, list) or not scenarios:
        raise ConfigurationError("'scenarios' must be a non-empty list")
    names = []
    for scenario in scenarios:
        if not isinstance(scenario, Mapping):
            raise ConfigurationError("each scenario must be a map")
        name = scenario.get("name")
        if not isinstance(name, str) or not name:
            raise ConfigurationError(
                "scenario 'name' must be a non-empty str"
            )
        names.append(name)
        if not isinstance(scenario.get("flash_crowd"), bool):
            raise ConfigurationError(
                f"scenario {name!r} 'flash_crowd' must be a bool"
            )
        duration = scenario.get("duration")
        if not isinstance(duration, (int, float)) or duration <= 0.0:
            raise ConfigurationError(
                f"scenario {name!r} duration must be positive"
            )
        peak = scenario.get("peak_load_fraction")
        if peak is not None and (
            not isinstance(peak, (int, float)) or peak <= 0.0
        ):
            raise ConfigurationError(
                f"scenario {name!r} 'peak_load_fraction' must be a "
                "positive number or null"
            )
        controllers = scenario.get("controllers")
        if not isinstance(controllers, Mapping):
            raise ConfigurationError(
                f"scenario {name!r} 'controllers' map missing"
            )
        missing = [c for c in _MPC_CONTROLLERS if c not in controllers]
        if missing:
            raise ConfigurationError(
                f"scenario {name!r} missing controllers {missing}"
            )
        for controller, row in controllers.items():
            _validate_mpc_row(f"{name}/{controller}", row)
    if len(set(names)) != len(names):
        raise ConfigurationError("scenario names must be unique")
    entries = document.get("entries")
    if not isinstance(entries, list):
        raise ConfigurationError("'entries' must be a list")
    seen = set()
    for entry in entries:
        if not isinstance(entry, Mapping):
            raise ConfigurationError("each entry must be a map")
        scenario = entry.get("scenario")
        controller = entry.get("controller")
        if scenario not in names:
            raise ConfigurationError(
                f"entry references unknown scenario {scenario!r}"
            )
        if controller not in _MPC_CONTROLLERS:
            raise ConfigurationError(
                f"entry references unknown controller {controller!r}"
            )
        _validate_mpc_row(f"entries[{scenario}/{controller}]", entry)
        seen.add((scenario, controller))
    expected = {
        (name, controller)
        for name in names
        for controller in _MPC_CONTROLLERS
    }
    if seen != expected:
        raise ConfigurationError(
            "'entries' must cover exactly the scenario x controller "
            f"product (missing {sorted(expected - seen)}, "
            f"extra {sorted(seen - expected)})"
        )
    dominance = document.get("dominance")
    if not isinstance(dominance, list) or len(dominance) != len(names):
        raise ConfigurationError(
            "'dominance' must list one row per scenario"
        )
    for row in dominance:
        if not isinstance(row, Mapping):
            raise ConfigurationError("each dominance row must be a map")
        missing = [k for k in _MPC_DOMINANCE_KEYS if k not in row]
        if missing:
            raise ConfigurationError(f"dominance row missing {missing}")
        if row["scenario"] not in names:
            raise ConfigurationError(
                f"dominance row references unknown scenario "
                f"{row['scenario']!r}"
            )
        for key in ("mpc_violation_seconds", "reactive_violation_seconds",
                    "mpc_energy_joules", "reactive_energy_joules"):
            value = row[key]
            if not isinstance(value, (int, float)) or value < 0.0:
                raise ConfigurationError(
                    f"dominance {key!r} must be a non-negative number"
                )
        if not isinstance(row["flash_crowd"], bool) or not isinstance(
            row["dominates"], bool
        ):
            raise ConfigurationError(
                "dominance 'flash_crowd' and 'dominates' must be bools"
            )
        implied = (
            row["mpc_violation_seconds"] < row["reactive_violation_seconds"]
            and row["mpc_energy_joules"] <= row["reactive_energy_joules"]
        )
        if row["dominates"] != implied:
            raise ConfigurationError(
                f"dominance row {row['scenario']!r}: 'dominates' flag "
                "disagrees with its own numbers"
            )


def _validate_mpc_row(label: str, row: Mapping) -> None:
    if not isinstance(row, Mapping):
        raise ConfigurationError(f"{label} row must be a map")
    absent = [k for k in _MPC_ROW_KEYS if k not in row]
    if absent:
        raise ConfigurationError(f"{label} row missing {absent}")
    for key in ("violation_seconds", "energy_joules",
                "offered_task_seconds", "served_task_seconds",
                "shed_task_seconds"):
        value = row[key]
        if not isinstance(value, (int, float)) or value < 0.0:
            raise ConfigurationError(
                f"{label} {key!r} must be a non-negative number"
            )
    for key in ("reconfigurations", "suppressed", "on_set_changes",
                "horizon_solves", "fallbacks", "precools"):
        value = row[key]
        if not isinstance(value, int) or value < 0:
            raise ConfigurationError(
                f"{label} {key!r} must be a non-negative int"
            )
    if not isinstance(row["max_t_cpu"], (int, float)):
        raise ConfigurationError(f"{label} 'max_t_cpu' must be numeric")
    overhead = row["energy_overhead_vs_oracle"]
    if overhead is not None and not isinstance(overhead, (int, float)):
        raise ConfigurationError(
            f"{label} 'energy_overhead_vs_oracle' must be numeric or null"
        )
    if (
        row["served_task_seconds"]
        > row["offered_task_seconds"] + 1e-6
    ):
        raise ConfigurationError(
            f"{label}: served task-seconds exceed offered"
        )


def write_mpc(
    path: Union[str, pathlib.Path], document: Mapping
) -> pathlib.Path:
    """Validate and write an MPC-campaign document to ``path``."""
    target = pathlib.Path(path)
    validate_mpc(document)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return target


#: Keys every per-site cooling-plant entry must carry.
_COOLING_PLANT_ENTRY_KEYS = (
    "site", "description", "buckets", "bucket_seconds",
    "it_energy_joules", "cooling_energy_joules", "total_energy_joules",
    "pue", "water_liters", "wue_l_per_kwh", "economizer_fraction",
    "mode_switches", "mean_cop", "linearization_gap",
)

#: Keys every heat-wave row must carry.
_COOLING_PLANT_WAVE_KEYS = (
    "site", "amplitude_k", "baseline_pue", "wave_pue", "pue_penalty",
    "baseline_peak_w", "wave_peak_w",
)

#: Exactness budget for the per-site linearization-gap stamp.  The
#: tangent re-linearization of Eq. 10 is *exact* at its operating point
#: (the chiller's power curve is smooth there); a gap beyond float
#: round-off means the seam between the plant and the optimizer leaks.
_COOLING_PLANT_GAP_TOLERANCE = 1e-6


def validate_cooling_plant(document: Mapping) -> None:
    """Raise :class:`ConfigurationError` unless ``document`` is a valid
    cooling-plant record.

    Shape (written by ``repro weather`` /
    ``benchmarks/bench_cooling_plant.py`` to
    ``benchmarks/results/cooling_plant.json``; built by
    :meth:`repro.experiments.weather.WeatherStudyResult.document`)::

        {
          "schema": 1,
          "kind": "cooling-plant",
          "seed": <int>, "machines": <int>,
          "load_fraction": <0..1>, "quick": <bool>,
          "entries": [              # one per climate preset
            {
              "site": <str>, "description": <str>,
              "buckets": <int>, "bucket_seconds": <s>,
              "it_energy_joules": <J>,
              "cooling_energy_joules": <J>,
              "total_energy_joules": <J>,
              "pue": <total / IT, >= 1>,
              "water_liters": <L> | null,
              "wue_l_per_kwh": <L/kWh> | null,
              "economizer_fraction": <0..1>,
              "mode_switches": <int>,
              "mean_cop": <delivered J per electrical J>,
              "linearization_gap": <relative, <= 1e-6>
            }, ...
          ],
          "heat_wave": [            # one stress day per site
            {
              "site": <str>, "amplitude_k": <K>,
              "baseline_pue": <float>, "wave_pue": <float>,
              "pue_penalty": <wave - baseline>,
              "baseline_peak_w": <W>, "wave_peak_w": <W>
            }, ...
          ]
        }

    Beyond shape, the validator enforces the physics the artifact
    certifies: PUE at least 1, energies adding up, water/WUE paired,
    and — the PR's acceptance stamp — every site's
    ``linearization_gap`` within float round-off, so a drifting plant
    model cannot silently decouple from the Eq. 10 optimizer.
    """
    if not isinstance(document, Mapping):
        raise ConfigurationError("cooling-plant document must be a mapping")
    if document.get("schema") != SCHEMA_VERSION:
        raise ConfigurationError(
            f"unsupported cooling-plant schema {document.get('schema')!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    if document.get("kind") != "cooling-plant":
        raise ConfigurationError(
            f"not a cooling-plant record (kind={document.get('kind')!r})"
        )
    for key in ("seed", "machines"):
        if not isinstance(document.get(key), int):
            raise ConfigurationError(f"{key!r} must be an int")
    if document["machines"] < 1:
        raise ConfigurationError("'machines' must be positive")
    fraction = document.get("load_fraction")
    if not isinstance(fraction, (int, float)) or not 0.0 < fraction <= 1.0:
        raise ConfigurationError("'load_fraction' must be in (0, 1]")
    if not isinstance(document.get("quick"), bool):
        raise ConfigurationError("'quick' must be a bool")
    entries = document.get("entries")
    if not isinstance(entries, list) or not entries:
        raise ConfigurationError("'entries' must be a non-empty list")
    sites = []
    for entry in entries:
        if not isinstance(entry, Mapping):
            raise ConfigurationError("each entry must be a map")
        missing = [k for k in _COOLING_PLANT_ENTRY_KEYS if k not in entry]
        if missing:
            raise ConfigurationError(f"entry missing {missing}")
        site = entry["site"]
        if not isinstance(site, str) or not site:
            raise ConfigurationError("entry 'site' must be a non-empty str")
        sites.append(site)
        if not isinstance(entry["buckets"], int) or entry["buckets"] < 1:
            raise ConfigurationError(
                f"site {site!r} 'buckets' must be a positive int"
            )
        if not isinstance(entry["mode_switches"], int) or \
                entry["mode_switches"] < 0:
            raise ConfigurationError(
                f"site {site!r} 'mode_switches' must be a non-negative int"
            )
        for key in ("bucket_seconds", "it_energy_joules",
                    "cooling_energy_joules", "total_energy_joules",
                    "mean_cop"):
            value = entry[key]
            if not isinstance(value, (int, float)) or value <= 0.0:
                raise ConfigurationError(
                    f"site {site!r} {key!r} must be a positive number"
                )
        total = entry["it_energy_joules"] + entry["cooling_energy_joules"]
        if abs(total - entry["total_energy_joules"]) > 1e-6 * max(total, 1.0):
            raise ConfigurationError(
                f"site {site!r}: total energy does not equal IT + cooling"
            )
        pue = entry["pue"]
        if not isinstance(pue, (int, float)) or pue < 1.0:
            raise ConfigurationError(
                f"site {site!r} 'pue' must be a number >= 1"
            )
        econ = entry["economizer_fraction"]
        if not isinstance(econ, (int, float)) or not 0.0 <= econ <= 1.0:
            raise ConfigurationError(
                f"site {site!r} 'economizer_fraction' must be in [0, 1]"
            )
        water = entry["water_liters"]
        wue = entry["wue_l_per_kwh"]
        if (water is None) != (wue is None):
            raise ConfigurationError(
                f"site {site!r}: 'water_liters' and 'wue_l_per_kwh' must "
                "be both present or both null"
            )
        for key, value in (("water_liters", water),
                           ("wue_l_per_kwh", wue)):
            if value is not None and (
                not isinstance(value, (int, float)) or value < 0.0
            ):
                raise ConfigurationError(
                    f"site {site!r} {key!r} must be a non-negative "
                    "number or null"
                )
        gap = entry["linearization_gap"]
        if not isinstance(gap, (int, float)) or not (
            0.0 <= gap <= _COOLING_PLANT_GAP_TOLERANCE
        ):
            raise ConfigurationError(
                f"site {site!r} 'linearization_gap' {gap!r} exceeds "
                f"{_COOLING_PLANT_GAP_TOLERANCE:g} — the re-linearized "
                "Eq. 10 no longer matches the plant at its operating point"
            )
    if len(set(sites)) != len(sites):
        raise ConfigurationError("entry sites must be unique")
    waves = document.get("heat_wave")
    if not isinstance(waves, list) or not waves:
        raise ConfigurationError("'heat_wave' must be a non-empty list")
    for wave in waves:
        if not isinstance(wave, Mapping):
            raise ConfigurationError("each heat-wave row must be a map")
        missing = [k for k in _COOLING_PLANT_WAVE_KEYS if k not in wave]
        if missing:
            raise ConfigurationError(f"heat-wave row missing {missing}")
        site = wave["site"]
        if site not in sites:
            raise ConfigurationError(
                f"heat-wave row references unknown site {site!r}"
            )
        for key in ("amplitude_k", "baseline_pue", "wave_pue",
                    "baseline_peak_w", "wave_peak_w"):
            value = wave[key]
            if not isinstance(value, (int, float)) or value <= 0.0:
                raise ConfigurationError(
                    f"heat-wave {site!r} {key!r} must be a positive number"
                )
        penalty = wave["pue_penalty"]
        if not isinstance(penalty, (int, float)):
            raise ConfigurationError(
                f"heat-wave {site!r} 'pue_penalty' must be numeric"
            )
        implied = wave["wave_pue"] - wave["baseline_pue"]
        if abs(penalty - implied) > 1e-9:
            raise ConfigurationError(
                f"heat-wave {site!r}: 'pue_penalty' disagrees with its "
                "own PUE numbers"
            )


def write_cooling_plant(
    path: Union[str, pathlib.Path], document: Mapping
) -> pathlib.Path:
    """Validate and write a cooling-plant document to ``path``."""
    target = pathlib.Path(path)
    validate_cooling_plant(document)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(json.dumps(document, indent=2, sort_keys=True) + "\n")
    return target


# ---------------------------------------------------------------------- #
# Prometheus text exposition
# ---------------------------------------------------------------------- #

#: Legal Prometheus metric-name shape.
_PROM_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_PROM_LABEL = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")
#: Metric types the renderer/validator accept (exposition-format v0.0.4).
_PROM_TYPES = ("counter", "gauge", "summary", "histogram", "untyped")
#: One sample line: name, optional {labels}, value.
_PROM_SAMPLE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(\{[^{}]*\})?"
    r" (NaN|[+-]?Inf|[+-]?[0-9]*\.?[0-9]+(?:[eE][+-]?[0-9]+)?)$"
)


def _prom_value(value: float) -> str:
    value = float(value)
    if math.isnan(value):
        return "NaN"
    if math.isinf(value):
        return "+Inf" if value > 0 else "-Inf"
    return repr(value) if value != int(value) else str(int(value))


def _prom_labels(labels: Mapping) -> str:
    if not labels:
        return ""
    parts = []
    for key in sorted(labels):
        if not _PROM_LABEL.match(str(key)):
            raise ConfigurationError(
                f"invalid Prometheus label name {key!r}"
            )
        escaped = (
            str(labels[key])
            .replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
        )
        parts.append(f'{key}="{escaped}"')
    return "{" + ",".join(parts) + "}"


def render_prometheus(families: Iterable[Mapping]) -> str:
    """Render metric families in the Prometheus text format (v0.0.4).

    Each family is ``{"name", "type", "help", "samples"}`` where
    ``samples`` is a list of ``{"labels": {...}, "value": <number>}``
    (``labels`` optional, ``suffix`` optional for summary series like
    ``_count``/``_sum``).  Output passes :func:`validate_prometheus` by
    construction; the serving ``telemetry`` op serves this text so any
    Prometheus scraper can ingest the daemon's live metrics.
    """
    lines = []
    for family in families:
        name = family.get("name")
        if not isinstance(name, str) or not _PROM_NAME.match(name):
            raise ConfigurationError(
                f"invalid Prometheus metric name {name!r}"
            )
        kind = family.get("type", "untyped")
        if kind not in _PROM_TYPES:
            raise ConfigurationError(
                f"invalid Prometheus metric type {kind!r} for {name}"
            )
        help_text = str(family.get("help", "")).replace("\n", " ")
        if help_text:
            lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {kind}")
        for sample in family.get("samples", []):
            suffix = sample.get("suffix", "")
            series = name + suffix
            if not _PROM_NAME.match(series):
                raise ConfigurationError(
                    f"invalid Prometheus series name {series!r}"
                )
            lines.append(
                f"{series}{_prom_labels(sample.get('labels', {}))} "
                f"{_prom_value(sample['value'])}"
            )
    return "\n".join(lines) + "\n"


def validate_prometheus(text: str) -> dict:
    """Structural check of Prometheus text-format output.

    Verifies that every non-comment line is a well-formed sample, that
    every sample's family was declared with a ``# TYPE`` line first, and
    that type declarations are legal.  Returns
    ``{"families": <int>, "samples": <int>}`` so callers (the CI smoke
    job) can also assert the exposition is non-trivial.  Raises
    :class:`ConfigurationError` on any malformed line.
    """
    families: dict[str, str] = {}
    samples = 0
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 3 or parts[1] not in ("HELP", "TYPE"):
                raise ConfigurationError(
                    f"line {lineno}: malformed comment {line!r}"
                )
            if not _PROM_NAME.match(parts[2]):
                raise ConfigurationError(
                    f"line {lineno}: invalid metric name {parts[2]!r}"
                )
            if parts[1] == "TYPE":
                if len(parts) != 4 or parts[3] not in _PROM_TYPES:
                    raise ConfigurationError(
                        f"line {lineno}: invalid TYPE declaration {line!r}"
                    )
                families[parts[2]] = parts[3]
            continue
        match = _PROM_SAMPLE.match(line)
        if match is None:
            raise ConfigurationError(
                f"line {lineno}: malformed sample {line!r}"
            )
        series = match.group(1)
        declared = any(
            series == name or series.startswith(name + "_")
            for name in families
        )
        if not declared:
            raise ConfigurationError(
                f"line {lineno}: sample {series!r} has no TYPE declaration"
            )
        samples += 1
    if not families:
        raise ConfigurationError("no metric families declared")
    return {"families": len(families), "samples": samples}
