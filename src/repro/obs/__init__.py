"""repro.obs — process-local observability for the reproduction.

Metrics (counters, gauges, histograms), scoped wall-clock timers, and
structured per-run records for the optimizer, the thermal simulation,
the profiling campaign, and the runtime controller — behind a
near-zero-cost disabled mode so tier-1 timings are unaffected.

Quickstart::

    from repro import obs

    registry = obs.enable()            # start recording
    ...                                # run instrumented code
    record = obs.last_record("optimizer.solve")
    print(record.stages)               # {"selection": ..., "closed_form": ...}
    print(registry.to_json(indent=2))  # the whole registry
    obs.disable()

See ``docs/observability.md`` for the full API, the record schema, the
exporter formats, and overhead expectations.
"""

from repro.obs.export import (
    bench_observability,
    validate_bench_observability,
    write_bench_observability,
)
from repro.obs.metrics import (
    MAX_HISTOGRAM_SAMPLES,
    SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.records import (
    RunRecord,
    records_from_csv,
    records_to_csv,
)
from repro.obs.runtime import (
    count,
    current_record,
    disable,
    enable,
    enabled,
    get_registry,
    last_record,
    observe,
    record_run,
    reset,
    set_gauge,
    timed,
)

__all__ = [
    # switches / registry access
    "enable",
    "disable",
    "enabled",
    "get_registry",
    "reset",
    # instruments
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "count",
    "set_gauge",
    "observe",
    "MAX_HISTOGRAM_SAMPLES",
    "SCHEMA_VERSION",
    # timers
    "timed",
    # run records
    "RunRecord",
    "record_run",
    "current_record",
    "last_record",
    "records_to_csv",
    "records_from_csv",
    # exporters
    "bench_observability",
    "write_bench_observability",
    "validate_bench_observability",
]
