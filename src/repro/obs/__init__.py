"""repro.obs — process-local observability for the reproduction.

Metrics (counters, gauges, histograms), scoped wall-clock timers,
structured per-run records, hierarchical event tracing, and
paper-constraint watchdogs for the optimizer, the thermal simulation,
the profiling campaign, and the runtime controller — behind
near-zero-cost disabled modes so tier-1 timings are unaffected.

Quickstart::

    from repro import obs

    registry = obs.enable()            # start recording metrics
    buffer = obs.enable_tracing()      # ... and a span/event timeline
    obs.watchdog.install()             # ... and constraint monitors
    ...                                # run instrumented code
    record = obs.last_record("optimizer.solve")
    print(record.stages)               # {"selection": ..., "closed_form": ...}
    print(buffer.to_jsonl()[:80])      # the trace, exportable
    obs.disable_tracing()
    obs.watchdog.uninstall()
    obs.disable()

See ``docs/observability.md`` for the full API, the record and trace
schemas, the exporter formats, and overhead expectations.
"""

from repro.obs import trace, watchdog
from repro.obs.export import (
    bench_observability,
    render_prometheus,
    validate_bench_observability,
    validate_consolidation_scale,
    validate_cooling_plant,
    validate_mpc,
    validate_prometheus,
    validate_resilience,
    validate_serving,
    validate_simulation_speed,
    write_bench_observability,
    write_cooling_plant,
    write_mpc,
    write_resilience,
    write_serving,
)
from repro.obs.metrics import (
    DEFAULT_HORIZONS,
    MAX_HISTOGRAM_SAMPLES,
    MAX_WINDOW_BUCKET_SAMPLES,
    SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SlidingHistogram,
    WindowedCounter,
)
from repro.obs.records import (
    RunRecord,
    records_from_csv,
    records_to_csv,
)
from repro.obs.runtime import (
    count,
    current_record,
    disable,
    enable,
    enabled,
    get_registry,
    last_record,
    observe,
    record_run,
    reset,
    set_gauge,
    timed,
)
from repro.obs.trace import (
    TRACE_SCHEMA_VERSION,
    RotatingTraceExporter,
    TraceBuffer,
    TraceEvent,
    TraceSpan,
    add_event,
    disable_tracing,
    enable_tracing,
    get_trace_buffer,
    read_rotated_trace,
    reset_trace,
    set_span_attributes,
    suspended_tracing,
    tracing_enabled,
)
from repro.obs.watchdog import (
    EnergyBalanceMonitor,
    ErrorRateMonitor,
    KKTOptimalityMonitor,
    LatencyBurnRateMonitor,
    LoopStallMonitor,
    Monitor,
    QueueDepthMonitor,
    Reading,
    ThermalHeadroomMonitor,
    ThroughputMonitor,
    Violation,
    WatchdogSet,
    serving_monitors,
)

__all__ = [
    # switches / registry access
    "enable",
    "disable",
    "enabled",
    "get_registry",
    "reset",
    # instruments
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "count",
    "set_gauge",
    "observe",
    "MAX_HISTOGRAM_SAMPLES",
    "MAX_WINDOW_BUCKET_SAMPLES",
    "DEFAULT_HORIZONS",
    "SCHEMA_VERSION",
    "SlidingHistogram",
    "WindowedCounter",
    # timers
    "timed",
    # run records
    "RunRecord",
    "record_run",
    "current_record",
    "last_record",
    "records_to_csv",
    "records_from_csv",
    # exporters
    "bench_observability",
    "write_bench_observability",
    "validate_bench_observability",
    "validate_consolidation_scale",
    "validate_cooling_plant",
    "validate_mpc",
    "validate_resilience",
    "validate_serving",
    "validate_simulation_speed",
    "write_cooling_plant",
    "write_mpc",
    "write_resilience",
    "write_serving",
    "render_prometheus",
    "validate_prometheus",
    # tracing
    "trace",
    "TRACE_SCHEMA_VERSION",
    "TraceBuffer",
    "TraceSpan",
    "TraceEvent",
    "enable_tracing",
    "disable_tracing",
    "suspended_tracing",
    "tracing_enabled",
    "get_trace_buffer",
    "reset_trace",
    "add_event",
    "set_span_attributes",
    "RotatingTraceExporter",
    "read_rotated_trace",
    # watchdogs
    "watchdog",
    "WatchdogSet",
    "Monitor",
    "Reading",
    "Violation",
    "ThermalHeadroomMonitor",
    "ThroughputMonitor",
    "EnergyBalanceMonitor",
    "KKTOptimalityMonitor",
    "LatencyBurnRateMonitor",
    "QueueDepthMonitor",
    "ErrorRateMonitor",
    "LoopStallMonitor",
    "serving_monitors",
]
