"""Structured records of individual optimization / simulation runs.

A :class:`RunRecord` captures one unit of work end to end — one
:meth:`~repro.core.optimizer.JointOptimizer.solve` call, one profiling
campaign, one controller trace — with its inputs, the selection method
used, disjoint per-stage wall-clock timings, solver-iteration counters
(active-set repair rounds, ``query_refined`` window re-scores, bisection
steps), and the outcome.  Records are created by
:func:`repro.obs.runtime.record_run` and collected on the active
:class:`~repro.obs.metrics.MetricsRegistry`.

Two exporters are provided: JSON (one record or the whole registry via
``snapshot()``) and CSV (one row per record, nested maps JSON-encoded in
their cells so the round-trip is lossless).
"""

from __future__ import annotations

import csv
import io
import json
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Optional, Sequence

#: Column order of the CSV exporter.
CSV_FIELDS = (
    "kind",
    "method",
    "total_seconds",
    "inputs",
    "stages",
    "counters",
    "outcome",
)


@dataclass
class RunRecord:
    """One instrumented run.

    Attributes
    ----------
    kind:
        What ran: ``"optimizer.solve"``, ``"optimizer.max_load"``,
        ``"profiling.campaign"``, ``"controller.trace"``, or any caller
        supplied label.
    inputs:
        The run's inputs (load, budget, machine count, ...), JSON-safe.
    method:
        Selection method for optimizer runs (``"index"``, ``"exact"``,
        ``"brute"``, ``"explicit"``, ``"all"``); ``None`` otherwise.
    stages:
        Wall-clock seconds per stage.  Top-level stages (no ``/`` in the
        key) are disjoint and together cover essentially the whole run;
        nested spans appear under ``parent/child`` keys and are already
        included in their parent's time.
    counters:
        Per-run counter increments (e.g.
        ``closed_form.active_set_rounds``), a run-scoped view of the
        same names the global registry accumulates.
    outcome:
        What the run produced (ON-set size, commanded set point,
        predicted power, error type on failure), JSON-safe.
    total_seconds:
        Wall-clock duration of the whole run.
    """

    kind: str
    inputs: dict = field(default_factory=dict)
    method: Optional[str] = None
    stages: dict = field(default_factory=dict)
    counters: dict = field(default_factory=dict)
    outcome: dict = field(default_factory=dict)
    total_seconds: float = 0.0

    def add_stage(self, name: str, seconds: float) -> None:
        """Accumulate ``seconds`` under stage ``name``."""
        self.stages[name] = self.stages.get(name, 0.0) + seconds

    def add_count(self, name: str, amount: float = 1.0) -> None:
        """Accumulate ``amount`` under counter ``name``."""
        self.counters[name] = self.counters.get(name, 0.0) + amount

    @property
    def stage_seconds(self) -> float:
        """Sum of the disjoint top-level stages (keys without ``/``)."""
        return sum(
            seconds
            for name, seconds in self.stages.items()
            if "/" not in name
        )

    # ------------------------------------------------------------------ #
    # JSON
    # ------------------------------------------------------------------ #

    def to_dict(self) -> dict:
        """JSON-safe dictionary (inverse of :meth:`from_dict`)."""
        return {
            "kind": self.kind,
            "method": self.method,
            "total_seconds": self.total_seconds,
            "inputs": dict(self.inputs),
            "stages": dict(self.stages),
            "counters": dict(self.counters),
            "outcome": dict(self.outcome),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "RunRecord":
        return cls(
            kind=data["kind"],
            method=data.get("method"),
            total_seconds=float(data.get("total_seconds", 0.0)),
            inputs=dict(data.get("inputs", {})),
            stages=dict(data.get("stages", {})),
            counters=dict(data.get("counters", {})),
            outcome=dict(data.get("outcome", {})),
        )

    def to_json(self, indent: Optional[int] = None) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    @classmethod
    def from_json(cls, text: str) -> "RunRecord":
        return cls.from_dict(json.loads(text))


# ---------------------------------------------------------------------- #
# CSV
# ---------------------------------------------------------------------- #


def records_to_csv(records: Iterable[RunRecord]) -> str:
    """Render records as CSV, one row per record.

    Nested maps (``inputs``/``stages``/``counters``/``outcome``) are
    JSON-encoded inside their cells, so
    :func:`records_from_csv` recovers the records exactly.
    """
    out = io.StringIO()
    writer = csv.DictWriter(out, fieldnames=CSV_FIELDS, lineterminator="\n")
    writer.writeheader()
    for record in records:
        row = record.to_dict()
        writer.writerow(
            {
                "kind": row["kind"],
                "method": "" if row["method"] is None else row["method"],
                "total_seconds": repr(row["total_seconds"]),
                "inputs": json.dumps(row["inputs"]),
                "stages": json.dumps(row["stages"]),
                "counters": json.dumps(row["counters"]),
                "outcome": json.dumps(row["outcome"]),
            }
        )
    return out.getvalue()


def records_from_csv(text: str) -> list[RunRecord]:
    """Parse :func:`records_to_csv` output back into records."""
    reader = csv.DictReader(io.StringIO(text))
    records = []
    for row in reader:
        records.append(
            RunRecord(
                kind=row["kind"],
                method=row["method"] or None,
                total_seconds=float(row["total_seconds"]),
                inputs=json.loads(row["inputs"]),
                stages=json.loads(row["stages"]),
                counters=json.loads(row["counters"]),
                outcome=json.loads(row["outcome"]),
            )
        )
    return records
