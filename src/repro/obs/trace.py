"""Structured event tracing: hierarchical spans and a trace buffer.

While :mod:`repro.obs.metrics` answers *how much* (counters, gauges,
duration histograms), tracing answers *what happened, in order*: every
instrumented stage becomes a :class:`TraceSpan` with a span id, a parent
id, and monotonic start/end timestamps, and point-in-time facts (an
active-set round, a suppressed replan, a constraint violation) become
:class:`TraceEvent` entries attached to the innermost open span.  One
controller run therefore yields one timeline: the replan spans in
sequence, each carrying its hysteresis/dwell decision as events.

Tracing follows the same contract as the metrics switch: **off by
default, and one module-attribute check per call site while off**.  It
is toggled independently of metrics (:func:`enable_tracing`), so a
caller can record a timeline without paying for histograms or vice
versa.  :class:`repro.obs.runtime.timed` and
:class:`~repro.obs.runtime.record_run` open spans automatically while
tracing is on, so all existing instrumentation points show up in the
timeline without new call sites.

Two interchange formats are supported, both lossless:

- **JSONL** — a header line followed by one JSON object per span/event;
  the native on-disk format (``repro trace`` writes it, ``repro
  dashboard`` reads it).
- **Chrome trace** — the ``chrome://tracing`` / Perfetto JSON array
  format.  Spans become complete (``"ph": "X"``) events, trace events
  become instants (``"ph": "i"``); exact float timestamps and span
  topology ride along in ``args`` so the round-trip back through
  :meth:`TraceBuffer.from_chrome_trace` is exact.
"""

from __future__ import annotations

import json
import pathlib
from contextlib import contextmanager
from dataclasses import dataclass, field
from time import perf_counter
from typing import Iterable, Mapping, Optional, Union

from repro.errors import ConfigurationError

#: Version stamp embedded in exported traces.
TRACE_SCHEMA_VERSION = 1

#: Default buffer bounds.  Past the cap, new spans/events are counted as
#: dropped rather than recorded, bounding memory for long campaigns
#: (a settle run alone can take ~70k simulation steps).
MAX_TRACE_SPANS = 100_000
MAX_TRACE_EVENTS = 100_000

_JSONL_HEADER_KIND = "repro.trace"


@dataclass
class TraceSpan:
    """One timed, named region of a run.

    Attributes
    ----------
    span_id:
        Unique (per buffer) integer id, assigned at begin time.
    parent_id:
        Span id of the enclosing open span, or ``None`` for a root.
    name:
        Stage name (same vocabulary as ``obs.timed`` spans).
    start, end:
        Monotonic timestamps (``perf_counter`` seconds); ``end`` is
        ``None`` while the span is open.
    attributes:
        JSON-safe key/value annotations (inputs, decisions, outcomes).
    """

    span_id: int
    parent_id: Optional[int]
    name: str
    start: float
    end: Optional[float] = None
    attributes: dict = field(default_factory=dict)

    @property
    def duration(self) -> Optional[float]:
        """Seconds from start to end (``None`` while open)."""
        return None if self.end is None else self.end - self.start

    def to_dict(self) -> dict:
        return {
            "type": "span",
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "TraceSpan":
        return cls(
            span_id=int(data["span_id"]),
            parent_id=(
                None if data.get("parent_id") is None
                else int(data["parent_id"])
            ),
            name=data["name"],
            start=float(data["start"]),
            end=(None if data.get("end") is None else float(data["end"])),
            attributes=dict(data.get("attributes", {})),
        )


@dataclass
class TraceEvent:
    """One point-in-time structured fact, attached to a span (or root).

    The ``name`` is dotted and stable (``constraint.violation``,
    ``replan.suppressed``, ``closed_form.active_set_round``); consumers
    filter on it.
    """

    name: str
    time: float
    span_id: Optional[int] = None
    attributes: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "type": "event",
            "name": self.name,
            "time": self.time,
            "span_id": self.span_id,
            "attributes": dict(self.attributes),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "TraceEvent":
        return cls(
            name=data["name"],
            time=float(data["time"]),
            span_id=(
                None if data.get("span_id") is None else int(data["span_id"])
            ),
            attributes=dict(data.get("attributes", {})),
        )


class TraceBuffer:
    """In-memory store of spans and events, with bounded capacity."""

    def __init__(
        self,
        max_spans: int = MAX_TRACE_SPANS,
        max_events: int = MAX_TRACE_EVENTS,
    ) -> None:
        if max_spans <= 0 or max_events <= 0:
            raise ConfigurationError(
                "trace buffer capacities must be positive"
            )
        self.max_spans = max_spans
        self.max_events = max_events
        self.spans: list[TraceSpan] = []
        self.events: list[TraceEvent] = []
        self.dropped_spans = 0
        self.dropped_events = 0
        self._next_id = 1

    def __len__(self) -> int:
        return len(self.spans) + len(self.events)

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def start_span(
        self,
        name: str,
        parent_id: Optional[int] = None,
        attributes: Optional[Mapping] = None,
        start: Optional[float] = None,
    ) -> Optional[TraceSpan]:
        """Open a span; returns ``None`` when the buffer is full."""
        if len(self.spans) >= self.max_spans:
            self.dropped_spans += 1
            return None
        span = TraceSpan(
            span_id=self._next_id,
            parent_id=parent_id,
            name=name,
            start=perf_counter() if start is None else start,
            attributes=dict(attributes) if attributes else {},
        )
        self._next_id += 1
        self.spans.append(span)
        return span

    def add_event(
        self,
        name: str,
        span_id: Optional[int] = None,
        attributes: Optional[Mapping] = None,
        time: Optional[float] = None,
    ) -> Optional[TraceEvent]:
        """Record an instant event; returns ``None`` when full."""
        if len(self.events) >= self.max_events:
            self.dropped_events += 1
            return None
        event = TraceEvent(
            name=name,
            time=perf_counter() if time is None else time,
            span_id=span_id,
            attributes=dict(attributes) if attributes else {},
        )
        self.events.append(event)
        return event

    def clear(self) -> None:
        """Drop every span and event (ids keep increasing)."""
        self.spans.clear()
        self.events.clear()
        self.dropped_spans = 0
        self.dropped_events = 0

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #

    def spans_named(self, name: str) -> list[TraceSpan]:
        """All spans with exactly this name, in start order."""
        return [s for s in self.spans if s.name == name]

    def events_named(self, name: str) -> list[TraceEvent]:
        """All events with exactly this name, in record order."""
        return [e for e in self.events if e.name == name]

    def children(self, span_id: int) -> list[TraceSpan]:
        """Direct child spans of ``span_id``."""
        return [s for s in self.spans if s.parent_id == span_id]

    def summary(self) -> dict:
        """JSON-safe shape summary (used by the bench artifact)."""
        return {
            "schema": TRACE_SCHEMA_VERSION,
            "spans": len(self.spans),
            "events": len(self.events),
            "dropped_spans": self.dropped_spans,
            "dropped_events": self.dropped_events,
            "violations": len(self.events_named("constraint.violation")),
        }

    # ------------------------------------------------------------------ #
    # JSONL
    # ------------------------------------------------------------------ #

    def to_jsonl(self) -> str:
        """The whole buffer as JSON Lines (header + one line per item)."""
        header = {
            "kind": _JSONL_HEADER_KIND,
            "schema": TRACE_SCHEMA_VERSION,
            "dropped_spans": self.dropped_spans,
            "dropped_events": self.dropped_events,
        }
        lines = [json.dumps(header)]
        lines.extend(json.dumps(s.to_dict()) for s in self.spans)
        lines.extend(json.dumps(e.to_dict()) for e in self.events)
        return "\n".join(lines) + "\n"

    @classmethod
    def from_jsonl(cls, text: str) -> "TraceBuffer":
        """Parse :meth:`to_jsonl` output back into a buffer."""
        lines = [line for line in text.splitlines() if line.strip()]
        if not lines:
            raise ConfigurationError("empty trace file")
        header = json.loads(lines[0])
        if header.get("kind") != _JSONL_HEADER_KIND:
            raise ConfigurationError(
                f"not a repro trace file (kind={header.get('kind')!r})"
            )
        if header.get("schema") != TRACE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported trace schema {header.get('schema')!r} "
                f"(expected {TRACE_SCHEMA_VERSION})"
            )
        buffer = cls()
        buffer.dropped_spans = int(header.get("dropped_spans", 0))
        buffer.dropped_events = int(header.get("dropped_events", 0))
        for line in lines[1:]:
            data = json.loads(line)
            kind = data.get("type")
            if kind == "span":
                buffer.spans.append(TraceSpan.from_dict(data))
            elif kind == "event":
                buffer.events.append(TraceEvent.from_dict(data))
            else:
                raise ConfigurationError(
                    f"unknown trace record type {kind!r}"
                )
        if buffer.spans:
            buffer._next_id = max(s.span_id for s in buffer.spans) + 1
        return buffer

    # ------------------------------------------------------------------ #
    # Chrome trace (chrome://tracing, Perfetto)
    # ------------------------------------------------------------------ #

    def to_chrome_trace(self) -> dict:
        """The buffer in Chrome's trace-event JSON format.

        Timestamps are microseconds (as the format requires); the exact
        float seconds and span topology ride along in ``args`` so
        :meth:`from_chrome_trace` reconstructs the buffer losslessly.
        Open spans export with zero duration and ``"open": true``.
        """
        trace_events = []
        for s in self.spans:
            end = s.start if s.end is None else s.end
            args = {
                "span_id": s.span_id,
                "parent_id": s.parent_id,
                "t0": s.start,
                "t1": s.end,
                "attributes": dict(s.attributes),
            }
            if s.end is None:
                args["open"] = True
            trace_events.append(
                {
                    "name": s.name,
                    "cat": "span",
                    "ph": "X",
                    "ts": s.start * 1e6,
                    "dur": (end - s.start) * 1e6,
                    "pid": 1,
                    "tid": 1,
                    "args": args,
                }
            )
        for e in self.events:
            trace_events.append(
                {
                    "name": e.name,
                    "cat": "event",
                    "ph": "i",
                    "ts": e.time * 1e6,
                    "s": "t",
                    "pid": 1,
                    "tid": 1,
                    "args": {
                        "span_id": e.span_id,
                        "t0": e.time,
                        "attributes": dict(e.attributes),
                    },
                }
            )
        return {
            "traceEvents": trace_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "schema": TRACE_SCHEMA_VERSION,
                "dropped_spans": self.dropped_spans,
                "dropped_events": self.dropped_events,
            },
        }

    @classmethod
    def from_chrome_trace(cls, document: Mapping) -> "TraceBuffer":
        """Rebuild a buffer from :meth:`to_chrome_trace` output."""
        if not isinstance(document, Mapping):
            raise ConfigurationError("chrome trace must be a mapping")
        other = document.get("otherData", {})
        if other.get("schema") != TRACE_SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported trace schema {other.get('schema')!r} "
                f"(expected {TRACE_SCHEMA_VERSION})"
            )
        buffer = cls()
        buffer.dropped_spans = int(other.get("dropped_spans", 0))
        buffer.dropped_events = int(other.get("dropped_events", 0))
        for entry in document.get("traceEvents", []):
            args = entry.get("args", {})
            if entry.get("ph") == "X":
                buffer.spans.append(
                    TraceSpan(
                        span_id=int(args["span_id"]),
                        parent_id=(
                            None if args.get("parent_id") is None
                            else int(args["parent_id"])
                        ),
                        name=entry["name"],
                        start=float(args["t0"]),
                        end=(
                            None if args.get("t1") is None
                            else float(args["t1"])
                        ),
                        attributes=dict(args.get("attributes", {})),
                    )
                )
            elif entry.get("ph") == "i":
                buffer.events.append(
                    TraceEvent(
                        name=entry["name"],
                        time=float(args["t0"]),
                        span_id=(
                            None if args.get("span_id") is None
                            else int(args["span_id"])
                        ),
                        attributes=dict(args.get("attributes", {})),
                    )
                )
            else:
                raise ConfigurationError(
                    f"unsupported chrome trace phase {entry.get('ph')!r}"
                )
        if buffer.spans:
            buffer._next_id = max(s.span_id for s in buffer.spans) + 1
        return buffer


# ---------------------------------------------------------------------- #
# Rotating on-disk JSONL export
# ---------------------------------------------------------------------- #


class RotatingTraceExporter:
    """Append-only on-disk JSONL trace sink with size-based rotation.

    Long-running processes (the serving daemon) cannot hold every span
    in memory, so they flush closed spans/events here in batches.  The
    active file is ``path``; when it reaches ``max_bytes`` the *next*
    batch triggers a rotation — ``path`` becomes ``path.1``, ``path.1``
    becomes ``path.2``, and so on, with at most ``keep_files`` rotated
    files retained.  Two invariants make rotation lossless:

    - rotation only ever happens **between** write batches, never in the
      middle of one, so a record is never split across files;
    - every file begins with its own JSONL header line, so each rotated
      file independently round-trips through
      :meth:`TraceBuffer.from_jsonl` (and :func:`read_rotated_trace`
      merges the whole set back into one buffer).
    """

    def __init__(
        self,
        path: Union[str, pathlib.Path],
        max_bytes: int = 1_000_000,
        keep_files: int = 3,
    ) -> None:
        if max_bytes <= 0:
            raise ConfigurationError("max_bytes must be positive")
        if keep_files < 1:
            raise ConfigurationError("keep_files must be at least 1")
        self.path = pathlib.Path(path)
        self.max_bytes = max_bytes
        self.keep_files = keep_files
        self.rotations = 0

    def files(self) -> list[pathlib.Path]:
        """Every existing file of the set, oldest first."""
        rotated = []
        for i in range(self.keep_files, 0, -1):
            candidate = self.path.with_name(f"{self.path.name}.{i}")
            if candidate.exists():
                rotated.append(candidate)
        if self.path.exists():
            rotated.append(self.path)
        return rotated

    def _rotate(self) -> None:
        oldest = self.path.with_name(f"{self.path.name}.{self.keep_files}")
        if oldest.exists():
            oldest.unlink()
        for i in range(self.keep_files - 1, 0, -1):
            src = self.path.with_name(f"{self.path.name}.{i}")
            if src.exists():
                src.rename(self.path.with_name(f"{self.path.name}.{i + 1}"))
        if self.path.exists():
            self.path.rename(self.path.with_name(f"{self.path.name}.1"))
        self.rotations += 1

    def write(
        self,
        spans: Iterable[TraceSpan] = (),
        events: Iterable[TraceEvent] = (),
    ) -> pathlib.Path:
        """Append one batch of records; returns the file written to."""
        lines = [json.dumps(s.to_dict()) for s in spans]
        lines.extend(json.dumps(e.to_dict()) for e in events)
        if not lines:
            return self.path
        if (
            self.path.exists()
            and self.path.stat().st_size >= self.max_bytes
        ):
            self._rotate()
        if not self.path.exists() or self.path.stat().st_size == 0:
            header = {
                "kind": _JSONL_HEADER_KIND,
                "schema": TRACE_SCHEMA_VERSION,
                "dropped_spans": 0,
                "dropped_events": 0,
            }
            lines.insert(0, json.dumps(header))
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write("\n".join(lines) + "\n")
        return self.path

    def export_buffer(self, buffer: TraceBuffer) -> pathlib.Path:
        """Write every record of ``buffer`` as one batch."""
        return self.write(buffer.spans, buffer.events)


def read_rotated_trace(
    path: Union[str, pathlib.Path], keep_files: int = 16
) -> TraceBuffer:
    """Merge a :class:`RotatingTraceExporter` file set into one buffer.

    Reads ``path`` plus every ``path.N`` rotation (oldest first, so the
    merged record order matches write order) and returns a single
    :class:`TraceBuffer`.  Raises :class:`ConfigurationError` when no
    file of the set exists or any file fails the trace-schema check.
    """
    exporter = RotatingTraceExporter(path, keep_files=keep_files)
    files = exporter.files()
    if not files:
        raise ConfigurationError(f"no trace files at {path}")
    merged = TraceBuffer()
    for file in files:
        piece = TraceBuffer.from_jsonl(file.read_text())
        merged.spans.extend(piece.spans)
        merged.events.extend(piece.events)
        merged.dropped_spans += piece.dropped_spans
        merged.dropped_events += piece.dropped_events
    if merged.spans:
        merged._next_id = max(s.span_id for s in merged.spans) + 1
    return merged


# ---------------------------------------------------------------------- #
# Module-level tracer state (same contract as the metrics switch)
# ---------------------------------------------------------------------- #

_tracing: bool = False
_buffer: TraceBuffer = TraceBuffer()
#: Ids of the currently open spans, innermost last.  A ``None`` entry
#: marks a span the buffer dropped (so nesting stays balanced).
_open: list[Optional[int]] = []


def tracing_enabled() -> bool:
    """Whether span/event recording is currently on."""
    return _tracing


def enable_tracing(buffer: Optional[TraceBuffer] = None) -> TraceBuffer:
    """Turn tracing on (optionally into a caller-owned buffer).

    Independent of the metrics switch; idempotent.  Returns the buffer
    now receiving spans and events.
    """
    global _tracing, _buffer
    if buffer is not None:
        _buffer = buffer
    _tracing = True
    return _buffer


def disable_tracing() -> None:
    """Turn tracing off.  The buffer keeps its accumulated data."""
    global _tracing
    _tracing = False
    _open.clear()


@contextmanager
def suspended_tracing():
    """Temporarily stop recording spans and events.

    Unlike :func:`disable_tracing` this leaves open spans intact, so it
    is safe inside an enclosing :func:`span` — used by the benchmarks to
    time hot loops without the per-event recording cost.
    """
    global _tracing
    was = _tracing
    _tracing = False
    try:
        yield
    finally:
        _tracing = was


def get_trace_buffer() -> TraceBuffer:
    """The buffer spans are (or would be) recorded into."""
    return _buffer


def reset_trace() -> None:
    """Clear the active buffer and any open-span state."""
    _buffer.clear()
    _open.clear()


def current_span_id() -> Optional[int]:
    """Id of the innermost open span, if any."""
    for span_id in reversed(_open):
        if span_id is not None:
            return span_id
    return None


def begin_span(name: str, **attributes) -> Optional[int]:
    """Open a span under the innermost open span; returns its id.

    No-op (returns ``None``) while tracing is disabled.  Prefer the
    :class:`span` context manager (or ``obs.timed``, which opens spans
    automatically) over calling this directly.
    """
    if not _tracing:
        return None
    span = _buffer.start_span(
        name, parent_id=current_span_id(), attributes=attributes or None
    )
    span_id = None if span is None else span.span_id
    _open.append(span_id)
    return span_id


def end_span(span_id: Optional[int], **attributes) -> None:
    """Close the innermost open span (which must be ``span_id``)."""
    if not _open:
        return
    _open.pop()
    if span_id is None:
        return
    for span in reversed(_buffer.spans):
        if span.span_id == span_id:
            span.end = perf_counter()
            if attributes:
                span.attributes.update(attributes)
            return


class span:
    """Scoped trace span with attributes; context manager.

    Unlike :class:`repro.obs.runtime.timed` this records no histogram —
    it exists for call sites that want a timeline entry with structured
    attributes regardless of the metrics switch.
    """

    __slots__ = ("name", "attributes", "_span_id")

    def __init__(self, name: str, **attributes) -> None:
        self.name = name
        self.attributes = attributes
        self._span_id: Optional[int] = None

    def __enter__(self) -> "span":
        if _tracing:
            self._span_id = begin_span(self.name, **self.attributes)
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        if _tracing or _open:
            end_span(self._span_id)
        return False


def add_event(name: str, **attributes) -> None:
    """Record a structured instant event on the innermost open span.

    No-op while tracing is disabled — this is the call-site vocabulary
    for watchdog violations, replan decisions, and solver milestones.
    """
    if not _tracing:
        return
    _buffer.add_event(
        name, span_id=current_span_id(), attributes=attributes or None
    )


def set_span_attributes(**attributes) -> None:
    """Attach attributes to the innermost open span (no-op if none)."""
    if not _tracing:
        return
    span_id = current_span_id()
    if span_id is None:
        return
    for span_ in reversed(_buffer.spans):
        if span_.span_id == span_id:
            span_.attributes.update(attributes)
            return
