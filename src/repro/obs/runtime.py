"""Observability runtime: the enable switch, scoped timers, run records.

The whole package is built around one invariant: **when observability is
disabled (the default), every instrumentation call site costs one
module-attribute check and nothing else** — no allocation, no dictionary
lookups, no registry mutation — so instrumented hot paths (the RK4
stepper, the active-set loop, ``query_refined``) keep their tier-1
timings.  :func:`enable` flips the process into recording mode against a
:class:`~repro.obs.metrics.MetricsRegistry`.

Call-site vocabulary:

- ``with timed("selection"): ...`` — a scoped wall-clock span.  Spans
  nest: an inner span records under ``outer/inner``.  The object always
  measures (``span.duration`` is valid even when disabled, two
  ``perf_counter`` calls), but only *records* when enabled — so code can
  use it as its one stopwatch API.
- ``@timed("consolidation/preprocess")`` — same thing as a decorator.
- ``with record_run("optimizer.solve", inputs={...}) as rec: ...`` —
  captures one run end to end; yields ``None`` when disabled.  While a
  record is active, completed spans attribute their duration to its
  ``stages`` map and :func:`count` increments land in its ``counters``
  map (innermost record wins when records nest).
- ``count(name)`` / ``set_gauge(name, v)`` / ``observe(name, v)`` —
  fire-and-forget instrument updates.

State is process-local and single-threaded by design (see
:mod:`repro.obs.metrics`).
"""

from __future__ import annotations

import functools
from time import perf_counter
from typing import Callable, Mapping, Optional

from repro.obs import trace as _trace
from repro.obs.metrics import MetricsRegistry
from repro.obs.records import RunRecord

_enabled: bool = False
_registry: MetricsRegistry = MetricsRegistry()
#: Active span names, innermost last (paths are joined with "/").
_span_stack: list[str] = []
#: Active run records, innermost last; parallel list of the span-stack
#: depth at which each record started (for stage attribution).
_record_stack: list[RunRecord] = []
_record_depths: list[int] = []


def enabled() -> bool:
    """Whether instrumentation is currently recording."""
    return _enabled


def enable(registry: Optional[MetricsRegistry] = None) -> MetricsRegistry:
    """Turn recording on (optionally into a caller-owned registry).

    Returns the registry now receiving measurements; idempotent.
    """
    global _enabled, _registry
    if registry is not None:
        _registry = registry
    _enabled = True
    return _registry


def disable() -> None:
    """Turn recording off.  The registry keeps its accumulated data."""
    global _enabled
    _enabled = False
    _span_stack.clear()
    _record_stack.clear()
    _record_depths.clear()


def get_registry() -> MetricsRegistry:
    """The registry measurements are (or would be) recorded into."""
    return _registry


def reset() -> None:
    """Clear the active registry (instruments, records, span state)."""
    _registry.reset()
    _span_stack.clear()
    _record_stack.clear()
    _record_depths.clear()


# ---------------------------------------------------------------------- #
# Fire-and-forget instrument updates
# ---------------------------------------------------------------------- #


def count(name: str, amount: float = 1.0) -> None:
    """Increment counter ``name`` (and the innermost active record's)."""
    if not _enabled:
        return
    _registry.counter(name).inc(amount)
    if _record_stack:
        _record_stack[-1].add_count(name, amount)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` to ``value``."""
    if not _enabled:
        return
    _registry.gauge(name).set(value)


def observe(name: str, value: float) -> None:
    """Record one observation into histogram ``name``."""
    if not _enabled:
        return
    _registry.histogram(name).observe(value)


# ---------------------------------------------------------------------- #
# Scoped timers
# ---------------------------------------------------------------------- #


class timed:
    """Scoped wall-clock timer; context manager and decorator.

    Always measures (``.duration`` in seconds after exit); records into
    ``time.<path>`` histograms — and the active run record's stage map —
    only while observability is enabled.
    """

    __slots__ = ("name", "duration", "_t0", "_recording", "_traced",
                 "_trace_id")

    def __init__(self, name: str) -> None:
        self.name = name
        self.duration: Optional[float] = None
        self._t0 = 0.0
        self._recording = False
        self._traced = False
        self._trace_id: Optional[int] = None

    def __enter__(self) -> "timed":
        self._recording = _enabled
        if self._recording:
            _span_stack.append(self.name)
        self._traced = _trace._tracing
        if self._traced:
            self._trace_id = _trace.begin_span(self.name)
        self._t0 = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        duration = perf_counter() - self._t0
        self.duration = duration
        if self._traced:
            _trace.end_span(self._trace_id)
        if self._recording and _span_stack and _span_stack[-1] is self.name:
            path = "/".join(_span_stack)
            _span_stack.pop()
            if _enabled:
                _registry.histogram("time." + path).observe(duration)
                if _record_stack:
                    base = _record_depths[-1]
                    record = _record_stack[-1]
                    if len(_span_stack) >= base:
                        rel = "/".join(_span_stack[base:] + [self.name])
                        record.add_stage(rel, duration)
        return False

    def __call__(self, fn: Callable) -> Callable:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            with timed(self.name):
                return fn(*args, **kwargs)

        return wrapper


# ---------------------------------------------------------------------- #
# Run records
# ---------------------------------------------------------------------- #


class record_run:
    """Context manager capturing one run as a :class:`RunRecord`.

    Yields the live record when enabled (mutate ``method``/``outcome``
    freely inside the block), or ``None`` when disabled.  On exit the
    total duration is stamped, failure is noted in ``outcome``, and the
    record is appended to the registry's ``records`` list.
    """

    __slots__ = ("kind", "inputs", "method", "_record", "_t0", "_traced",
                 "_trace_id")

    def __init__(
        self,
        kind: str,
        inputs: Optional[Mapping] = None,
        method: Optional[str] = None,
    ) -> None:
        self.kind = kind
        self.inputs = inputs
        self.method = method
        self._record: Optional[RunRecord] = None
        self._t0 = 0.0
        self._traced = False
        self._trace_id: Optional[int] = None

    def __enter__(self) -> Optional[RunRecord]:
        self._traced = _trace._tracing
        if self._traced:
            self._trace_id = _trace.begin_span(
                self.kind, **(dict(self.inputs) if self.inputs else {})
            )
        if not _enabled:
            return None
        record = RunRecord(
            kind=self.kind,
            inputs=dict(self.inputs) if self.inputs else {},
            method=self.method,
        )
        self._record = record
        _record_stack.append(record)
        _record_depths.append(len(_span_stack))
        self._t0 = perf_counter()
        return record

    def __exit__(self, exc_type, exc, tb) -> bool:
        if self._traced:
            _trace.end_span(self._trace_id)
        record = self._record
        if record is None:
            return False
        record.total_seconds = perf_counter() - self._t0
        if exc_type is not None:
            record.outcome.setdefault("error", exc_type.__name__)
        if _record_stack and _record_stack[-1] is record:
            _record_stack.pop()
            _record_depths.pop()
        if _enabled:
            _registry.records.append(record)
        return False


def current_record() -> Optional[RunRecord]:
    """The innermost in-flight record, if any."""
    return _record_stack[-1] if _record_stack else None


def last_record(kind: Optional[str] = None) -> Optional[RunRecord]:
    """The most recently completed record (optionally of one ``kind``)."""
    for record in reversed(_registry.records):
        if kind is None or record.kind == kind:
            return record
    return None
