"""Paper-constraint watchdogs: runtime monitors for invariant drift.

The paper's optimality story rests on invariants the test suite asserts
only post-hoc: every powered-on CPU sits at exactly ``T_max`` at the
unclamped optimum (Eqs. 17-22), the throughput constraint is met, and
total energy is exactly computing plus cooling energy (Eqs. 8-10).  A
:class:`WatchdogSet` evaluates those invariants *while a run unfolds* —
on every closed-form solution, every simulation step, and every
controller replan — and records violations as telemetry instead of
crashing the run:

- a ``watchdog.violations`` counter (plus one per monitor),
- a worst-case headroom gauge per metric (``watchdog.<metric>.headroom``),
- a structured ``constraint.violation`` trace event,

with a configurable policy: ``"warn"`` (default) issues a
:class:`UserWarning` and keeps going; ``"raise"`` raises
:class:`~repro.errors.ConstraintViolationError` at the violation site.

Like the rest of :mod:`repro.obs`, nothing runs until installed: every
hook site costs one module-attribute check while no watchdog is
installed (:func:`install` / :func:`uninstall`).  Monitors are plain
objects — subclass :class:`Monitor` to add new invariants and pass your
set to :class:`WatchdogSet`.
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass, field
from typing import Literal, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, ConstraintViolationError
from repro.obs import runtime as _runtime
from repro.obs import trace as _trace

Policy = Literal["warn", "raise"]

#: Violations kept on the set itself (counters keep exact totals).
MAX_STORED_VIOLATIONS = 1000


@dataclass(frozen=True)
class Reading:
    """One evaluated invariant: a signed headroom plus context.

    ``headroom >= -tolerance`` passes; more positive is safer.  The
    units depend on the metric (kelvin for thermal, tasks/s for
    throughput, relative error for energy/KKT residuals).
    """

    monitor: str
    metric: str
    headroom: float
    message: str
    tolerance: float = 0.0
    context: dict = field(default_factory=dict)

    @property
    def violated(self) -> bool:
        return self.headroom < -self.tolerance


@dataclass(frozen=True)
class Violation:
    """One recorded constraint violation (a failed :class:`Reading`)."""

    monitor: str
    metric: str
    headroom: float
    message: str
    context: dict = field(default_factory=dict)


class Monitor:
    """Base class: override the hooks relevant to your invariant.

    Every hook returns a list of :class:`Reading`; the default is no
    readings, so a monitor only pays for the checks it implements.
    """

    name = "monitor"

    def solution_readings(
        self, model, solution, total_load: Optional[float]
    ) -> list[Reading]:
        """Invariants of one closed-form solution (Eqs. 17-22)."""
        return []

    def simulation_readings(
        self, simulation, t_max: Optional[float]
    ) -> list[Reading]:
        """Invariants of one transient simulation state."""
        return []

    def replan_readings(
        self, controller, result, offered_load: float
    ) -> list[Reading]:
        """Invariants of one accepted controller replan."""
        return []

    def serving_readings(self, telemetry) -> list[Reading]:
        """SLO invariants of a live serving daemon.

        ``telemetry`` is duck-typed (the serving monitors below read
        :class:`repro.serving.telemetry.ServingTelemetry`): windowed
        request/error counts, windowed latency percentiles, queue depth,
        and loop lag.  Keeping the hook duck-typed keeps ``repro.obs``
        free of serving imports.
        """
        return []


class ThermalHeadroomMonitor(Monitor):
    """``T_cpu <= T_max`` headroom, on predictions and simulated state."""

    name = "thermal"

    def __init__(self, margin: float = 0.0) -> None:
        if margin < 0.0:
            raise ConfigurationError(
                f"thermal margin must be non-negative, got {margin}"
            )
        self.margin = margin

    def _reading(self, hottest: float, t_max: float, where: str) -> Reading:
        headroom = t_max - self.margin - hottest
        return Reading(
            monitor=self.name,
            metric="thermal.headroom_k",
            headroom=headroom,
            message=(
                f"{where}: hottest CPU {hottest:.2f} K exceeds "
                f"T_max={t_max:.2f} K (margin {self.margin:.2f} K)"
            ),
            tolerance=1e-6,
            context={"hottest_cpu": hottest, "t_max": t_max, "where": where},
        )

    def solution_readings(self, model, solution, total_load):
        on = list(solution.on_ids)
        if not on:
            return []
        hottest = float(np.nanmax(solution.predicted_t_cpu[on]))
        return [self._reading(hottest, model.t_max, "closed form")]

    def simulation_readings(self, simulation, t_max):
        if t_max is None:
            return []
        mask = simulation.on_mask
        if not np.any(mask):
            return []
        hottest = float(np.max(simulation.t_cpu[mask]))
        return [self._reading(hottest, t_max, "simulation")]

    def replan_readings(self, controller, result, offered_load):
        model = controller.optimizer.model
        return self.solution_readings(model, result.solution, None)


class ThroughputMonitor(Monitor):
    """The throughput constraint: assigned load covers the demand."""

    name = "throughput"

    def _reading(self, assigned: float, demanded: float, where: str) -> Reading:
        deficit = demanded - assigned
        return Reading(
            monitor=self.name,
            metric="throughput.deficit",
            headroom=-deficit,
            message=(
                f"{where}: assigned load {assigned:.3f} tasks/s falls "
                f"{deficit:.3f} short of the demanded {demanded:.3f}"
            ),
            tolerance=1e-6 * max(1.0, demanded),
            context={"assigned": assigned, "demanded": demanded,
                     "where": where},
        )

    def solution_readings(self, model, solution, total_load):
        if total_load is None:
            return []
        return [
            self._reading(solution.total_load, total_load, "closed form")
        ]

    def replan_readings(self, controller, result, offered_load):
        return [
            self._reading(
                float(result.loads.sum()), offered_load, "replan"
            )
        ]


class EnergyBalanceMonitor(Monitor):
    """Energy accounting: server + AC power equals the reported total.

    Re-derives per-machine power from the loads through Eq. 9 and the
    cooler draw through Eq. 10, then compares against the solution's
    reported totals — so a refactor that breaks the accounting (or a
    stale cached total) surfaces as drift, not as a wrong paper figure.
    """

    name = "energy"

    def __init__(self, rel_tolerance: float = 1e-6) -> None:
        if rel_tolerance <= 0.0:
            raise ConfigurationError(
                f"rel_tolerance must be positive, got {rel_tolerance}"
            )
        self.rel_tolerance = rel_tolerance

    def _reading(
        self, reported: float, recomputed: float, where: str
    ) -> Reading:
        scale = max(1.0, abs(recomputed))
        rel_error = abs(reported - recomputed) / scale
        return Reading(
            monitor=self.name,
            metric="energy.balance_rel_err",
            headroom=-rel_error,
            message=(
                f"{where}: reported total power {reported:.3f} W differs "
                f"from servers+AC {recomputed:.3f} W "
                f"(rel err {rel_error:.2e})"
            ),
            tolerance=self.rel_tolerance,
            context={"reported": reported, "recomputed": recomputed,
                     "where": where},
        )

    def solution_readings(self, model, solution, total_load):
        server = sum(
            model.power.power(float(solution.loads[i]))
            for i in solution.on_ids
        )
        cooling = model.cooler.cooling_power(solution.t_sp, solution.t_ac)
        return [
            self._reading(
                solution.predicted_total_power,
                server + cooling,
                "closed form",
            )
        ]

    def simulation_readings(self, simulation, t_max):
        recomputed = (
            float(np.sum(simulation.powers)) + simulation.cooling_power
        )
        return [
            self._reading(simulation.total_power, recomputed, "simulation")
        ]

    def replan_readings(self, controller, result, offered_load):
        model = controller.optimizer.model
        return self.solution_readings(model, result.solution, None)


class KKTOptimalityMonitor(Monitor):
    """Residuals of the closed form's KKT conditions (Eqs. 15-18).

    At an unclamped optimum every active machine sits exactly at
    ``T_max`` (Eq. 17-18) and the multipliers are strictly positive
    (Eqs. 15-16); with actuator clamping or active-set repair the
    machines still share one common temperature ``<= T_max``.  The
    reading's headroom is the tolerance minus the worst residual, in
    kelvin, normalized by ``T_max``'s scale implicitly through the
    tolerance.
    """

    name = "kkt"

    def __init__(self, tolerance: float = 1e-6) -> None:
        if tolerance <= 0.0:
            raise ConfigurationError(
                f"tolerance must be positive, got {tolerance}"
            )
        self.tolerance = tolerance

    def solution_readings(self, model, solution, total_load):
        readings = []
        active = list(solution.active_ids)
        if active:
            t_cpu = solution.predicted_t_cpu[active]
            if solution.clamped or solution.repaired:
                # Pinned machines may legitimately run cooler than the
                # reported common temperature; the invariant is one-sided.
                target = solution.common_temperature
                residual = float(np.max(t_cpu - target))
                label = "common temperature"
            else:
                # Eq. 17-18: every active CPU sits exactly at T_max.
                target = model.t_max
                residual = float(np.max(np.abs(t_cpu - target)))
                label = "T_max"
            readings.append(
                Reading(
                    monitor=self.name,
                    metric="kkt.stationarity_residual_k",
                    headroom=-residual,
                    message=(
                        f"active machines stray {residual:.2e} K from the "
                        f"shared {label} (Eq. 18 stationarity)"
                    ),
                    tolerance=self.tolerance,
                    context={"residual_k": residual, "target": target},
                )
            )
        if total_load is not None:
            conservation = abs(solution.total_load - total_load)
            readings.append(
                Reading(
                    monitor=self.name,
                    metric="kkt.load_conservation",
                    headroom=-conservation,
                    message=(
                        f"loads sum to {solution.total_load:.6f}, "
                        f"{conservation:.2e} away from L={total_load:.6f} "
                        "(Eq. 12 primal feasibility)"
                    ),
                    tolerance=self.tolerance * max(1.0, total_load),
                    context={"residual": conservation},
                )
            )
        from repro.core.closed_form import kkt_multipliers

        lam, mu = kkt_multipliers(model, solution.on_ids)
        worst = min(lam, float(np.min(mu))) if len(mu) else lam
        readings.append(
            Reading(
                monitor=self.name,
                metric="kkt.multiplier_positivity",
                headroom=worst,
                message=(
                    f"a KKT multiplier is non-positive ({worst:.3e}); "
                    "Eqs. 15-16 require strict positivity"
                ),
                context={"lambda": lam, "min_mu": worst},
            )
        )
        return readings

    def replan_readings(self, controller, result, offered_load):
        model = controller.optimizer.model
        return self.solution_readings(model, result.solution, None)


def default_monitors() -> list[Monitor]:
    """The standard monitor set covering the paper's invariants."""
    return [
        ThermalHeadroomMonitor(),
        ThroughputMonitor(),
        EnergyBalanceMonitor(),
        KKTOptimalityMonitor(),
    ]


# ---------------------------------------------------------------------- #
# Serving SLO monitors
# ---------------------------------------------------------------------- #


class LatencyBurnRateMonitor(Monitor):
    """Windowed p99 latency against a target p99 (the serving SLO).

    The headroom is the *burn fraction* — ``(target - p99) / target`` —
    so 0.0 means the window's p99 sits exactly at the target, negative
    means the budget is burning.  Quiet windows (no requests) produce no
    reading: an idle daemon is not violating its latency SLO.
    """

    name = "slo.latency"

    def __init__(self, target_p99_ms: float, horizon: float = 60.0) -> None:
        if target_p99_ms <= 0.0:
            raise ConfigurationError(
                f"target_p99_ms must be positive, got {target_p99_ms}"
            )
        if horizon <= 0.0:
            raise ConfigurationError(
                f"horizon must be positive, got {horizon}"
            )
        self.target_p99_ms = target_p99_ms
        self.horizon = horizon

    def serving_readings(self, telemetry) -> list[Reading]:
        if telemetry.request_count(self.horizon) == 0:
            return []
        p99 = telemetry.latency_p99_ms(self.horizon)
        return [
            Reading(
                monitor=self.name,
                metric="serving.latency_burn",
                headroom=(self.target_p99_ms - p99) / self.target_p99_ms,
                message=(
                    f"serving p99 latency {p99:.1f} ms over the last "
                    f"{self.horizon:g} s exceeds the {self.target_p99_ms:.1f}"
                    " ms SLO target"
                ),
                context={"p99_ms": p99, "target_p99_ms": self.target_p99_ms,
                         "horizon": self.horizon},
            )
        ]


class QueueDepthMonitor(Monitor):
    """Bounded request-queue depth (a leading indicator of overload)."""

    name = "slo.queue"

    def __init__(self, max_depth: int, horizon: float = 10.0) -> None:
        if max_depth < 1:
            raise ConfigurationError(
                f"max_depth must be at least 1, got {max_depth}"
            )
        if horizon <= 0.0:
            raise ConfigurationError(
                f"horizon must be positive, got {horizon}"
            )
        self.max_depth = max_depth
        self.horizon = horizon

    def serving_readings(self, telemetry) -> list[Reading]:
        depth = telemetry.max_queue_depth(self.horizon)
        return [
            Reading(
                monitor=self.name,
                metric="serving.queue_headroom",
                headroom=(self.max_depth - depth) / self.max_depth,
                message=(
                    f"serving queue depth peaked at {depth:.0f} over the "
                    f"last {self.horizon:g} s, beyond the {self.max_depth} "
                    "limit"
                ),
                context={"max_observed": depth, "limit": self.max_depth,
                         "horizon": self.horizon},
            )
        ]


class ErrorRateMonitor(Monitor):
    """Windowed error fraction (errors / requests) against a budget."""

    name = "slo.errors"

    def __init__(self, max_rate: float = 0.01, horizon: float = 60.0) -> None:
        if not 0.0 < max_rate <= 1.0:
            raise ConfigurationError(
                f"max_rate must be in (0, 1], got {max_rate}"
            )
        if horizon <= 0.0:
            raise ConfigurationError(
                f"horizon must be positive, got {horizon}"
            )
        self.max_rate = max_rate
        self.horizon = horizon

    def serving_readings(self, telemetry) -> list[Reading]:
        requests = telemetry.request_count(self.horizon)
        if requests == 0:
            return []
        rate = telemetry.error_count(self.horizon) / requests
        return [
            Reading(
                monitor=self.name,
                metric="serving.error_rate",
                headroom=self.max_rate - rate,
                message=(
                    f"serving error rate {rate:.4f} over the last "
                    f"{self.horizon:g} s exceeds the {self.max_rate:.4f} "
                    "budget"
                ),
                context={"error_rate": rate, "budget": self.max_rate,
                         "requests": requests, "horizon": self.horizon},
            )
        ]


class LoopStallMonitor(Monitor):
    """Event-loop responsiveness: worst watchdog-tick lag in the window."""

    name = "slo.stall"

    def __init__(
        self, max_lag_seconds: float, horizon: float = 60.0
    ) -> None:
        if max_lag_seconds <= 0.0:
            raise ConfigurationError(
                f"max_lag_seconds must be positive, got {max_lag_seconds}"
            )
        if horizon <= 0.0:
            raise ConfigurationError(
                f"horizon must be positive, got {horizon}"
            )
        self.max_lag_seconds = max_lag_seconds
        self.horizon = horizon

    def serving_readings(self, telemetry) -> list[Reading]:
        lag = telemetry.max_loop_lag_seconds(self.horizon)
        return [
            Reading(
                monitor=self.name,
                metric="serving.loop_lag_headroom",
                headroom=(
                    (self.max_lag_seconds - lag) / self.max_lag_seconds
                ),
                message=(
                    f"serving event loop lagged {lag * 1e3:.1f} ms over "
                    f"the last {self.horizon:g} s, beyond the "
                    f"{self.max_lag_seconds * 1e3:.1f} ms stall budget"
                ),
                context={"max_lag_seconds": lag,
                         "budget_seconds": self.max_lag_seconds,
                         "horizon": self.horizon},
            )
        ]


def serving_monitors(
    target_p99_ms: Optional[float] = None,
    max_queue_depth: Optional[int] = None,
    max_error_rate: Optional[float] = None,
    max_loop_lag_seconds: Optional[float] = None,
    horizon: float = 60.0,
) -> list[Monitor]:
    """Build the serving-SLO monitor set from configured thresholds.

    Only thresholds actually given become monitors, so an unconfigured
    daemon runs with no SLO checks at all (and no spurious warnings).
    """
    monitors: list[Monitor] = []
    if target_p99_ms is not None:
        monitors.append(LatencyBurnRateMonitor(target_p99_ms, horizon))
    if max_queue_depth is not None:
        monitors.append(QueueDepthMonitor(max_queue_depth, horizon=horizon))
    if max_error_rate is not None:
        monitors.append(ErrorRateMonitor(max_error_rate, horizon=horizon))
    if max_loop_lag_seconds is not None:
        monitors.append(
            LoopStallMonitor(max_loop_lag_seconds, horizon=horizon)
        )
    return monitors


class WatchdogSet:
    """A pluggable set of monitors plus the violation-handling policy.

    Parameters
    ----------
    monitors:
        The invariants to evaluate (default: :func:`default_monitors`).
    policy:
        ``"warn"`` records the violation and issues a ``UserWarning``;
        ``"raise"`` records it and raises
        :class:`~repro.errors.ConstraintViolationError`.
    t_max:
        CPU temperature limit used for *simulation* checks, where no
        fitted model is in scope (solution/replan checks read it from
        the model).  ``None`` skips simulation thermal checks.
    """

    def __init__(
        self,
        monitors: Optional[Sequence[Monitor]] = None,
        policy: Policy = "warn",
        t_max: Optional[float] = None,
    ) -> None:
        if policy not in ("warn", "raise"):
            raise ConfigurationError(f"unknown watchdog policy {policy!r}")
        self.monitors = (
            list(monitors) if monitors is not None else default_monitors()
        )
        self.policy = policy
        self.t_max = t_max
        self.violations: list[Violation] = []
        self.violation_counts: dict[str, int] = {}
        self.worst_headroom: dict[str, float] = {}
        self.checks = 0

    # ------------------------------------------------------------------ #
    # Hook entry points (called from instrumented code)
    # ------------------------------------------------------------------ #

    def check_solution(
        self, model, solution, total_load: Optional[float] = None
    ) -> list[Violation]:
        """Evaluate every monitor against one closed-form solution."""
        readings: list[Reading] = []
        for monitor in self.monitors:
            readings.extend(
                monitor.solution_readings(model, solution, total_load)
            )
        return self._ingest(readings)

    def check_simulation(self, simulation) -> list[Violation]:
        """Evaluate every monitor against the live simulation state."""
        readings: list[Reading] = []
        for monitor in self.monitors:
            readings.extend(
                monitor.simulation_readings(simulation, self.t_max)
            )
        return self._ingest(readings)

    def check_replan(
        self, controller, result, offered_load: float
    ) -> list[Violation]:
        """Evaluate every monitor against one accepted replan."""
        readings: list[Reading] = []
        for monitor in self.monitors:
            readings.extend(
                monitor.replan_readings(controller, result, offered_load)
            )
        return self._ingest(readings)

    def check_serving(self, telemetry) -> list[Violation]:
        """Evaluate every monitor against live serving telemetry.

        Called from the daemon's watchdog loop; monitors without a
        ``serving_readings`` implementation contribute nothing, so the
        paper-invariant monitors and the SLO monitors can share one set.
        """
        readings: list[Reading] = []
        for monitor in self.monitors:
            readings.extend(monitor.serving_readings(telemetry))
        return self._ingest(readings)

    def notify_infeasible(self, message: str, **context) -> Violation:
        """Record an infeasible replan as a violation (no monitor ran)."""
        reading = Reading(
            monitor="replan",
            metric="replan.feasible",
            headroom=-1.0,
            message=message,
            context=context,
        )
        return self._ingest([reading])[0]

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #

    def _ingest(self, readings: Sequence[Reading]) -> list[Violation]:
        self.checks += 1
        _runtime.count("watchdog.checks")
        violations: list[Violation] = []
        for reading in readings:
            worst = min(
                self.worst_headroom.get(reading.metric, float("inf")),
                reading.headroom,
            )
            self.worst_headroom[reading.metric] = worst
            _runtime.set_gauge(
                f"watchdog.{reading.metric}.headroom", worst
            )
            if reading.violated:
                violations.append(self._record_violation(reading))
        return violations

    def _record_violation(self, reading: Reading) -> Violation:
        violation = Violation(
            monitor=reading.monitor,
            metric=reading.metric,
            headroom=reading.headroom,
            message=reading.message,
            context=dict(reading.context),
        )
        if len(self.violations) < MAX_STORED_VIOLATIONS:
            self.violations.append(violation)
        self.violation_counts[reading.monitor] = (
            self.violation_counts.get(reading.monitor, 0) + 1
        )
        _runtime.count("watchdog.violations")
        _runtime.count(f"watchdog.{reading.monitor}.violations")
        _trace.add_event(
            "constraint.violation",
            monitor=reading.monitor,
            metric=reading.metric,
            headroom=reading.headroom,
            message=reading.message,
            **reading.context,
        )
        if self.policy == "raise":
            raise ConstraintViolationError(reading.message)
        warnings.warn(reading.message, UserWarning, stacklevel=4)
        return violation

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #

    @property
    def violation_count(self) -> int:
        """Total violations recorded (exact, unlike the stored list)."""
        return sum(self.violation_counts.values())

    def headroom_table(self) -> dict[str, float]:
        """Worst-case headroom per metric, sorted by metric name."""
        return dict(sorted(self.worst_headroom.items()))

    def emit_summary(self, buffer: Optional[_trace.TraceBuffer] = None) -> None:
        """Write one ``watchdog.headroom`` event per metric to a buffer.

        Makes the headroom table self-contained in an exported trace
        file, so ``repro dashboard`` can render it without the live
        :class:`WatchdogSet`.  Defaults to the active trace buffer.
        """
        target = buffer if buffer is not None else _trace.get_trace_buffer()
        for metric, headroom in sorted(self.worst_headroom.items()):
            target.add_event(
                "watchdog.headroom",
                attributes={
                    "metric": metric,
                    "headroom": headroom,
                    "violations": sum(
                        1 for v in self.violations if v.metric == metric
                    ),
                },
            )


# ---------------------------------------------------------------------- #
# Module-level installation (same contract as the metrics switch)
# ---------------------------------------------------------------------- #

_active: Optional[WatchdogSet] = None


def install(watchdog: Optional[WatchdogSet] = None) -> WatchdogSet:
    """Install a watchdog set as the process-wide monitor.

    Instrumented code (closed form, simulation step, controller replan)
    starts feeding it immediately.  Returns the installed set.
    """
    global _active
    _active = watchdog if watchdog is not None else WatchdogSet()
    return _active


def uninstall() -> None:
    """Remove the active watchdog; hook sites go back to one flag check."""
    global _active
    _active = None


def active() -> Optional[WatchdogSet]:
    """The installed watchdog set, if any."""
    return _active
