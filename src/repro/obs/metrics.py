"""Metric primitives and the process-local registry.

Three instrument kinds, mirroring the usual metrics vocabulary:

- :class:`Counter` — a monotonically increasing total (events seen,
  solver iterations performed, simulation steps taken);
- :class:`Gauge` — a point-in-time value that can move both ways
  (statuses tabulated by the last index build, machines currently on);
- :class:`Histogram` — a distribution of observations, used for all
  wall-clock span durations (``time.<span>`` series recorded by
  :class:`repro.obs.runtime.timed`).

A :class:`MetricsRegistry` owns one namespace of instruments plus the
list of completed :class:`~repro.obs.records.RunRecord` objects.  The
registry is plain data: enabling/disabling instrumentation and the
module-global default registry live in :mod:`repro.obs.runtime`.

Everything here is process-local and intentionally lock-free: the
reproduction is single-threaded (numpy releases the GIL only inside
kernels), and the near-zero-cost disabled mode matters more than
concurrent mutation safety.  Snapshots are JSON-safe dictionaries and
round-trip through :meth:`MetricsRegistry.from_snapshot`.
"""

from __future__ import annotations

import json
import random
import zlib
from typing import Mapping, Optional

from repro.errors import ConfigurationError
from repro.obs.records import RunRecord

#: Version stamp embedded in every snapshot so downstream consumers
#: (the bench results schema check, dashboards) can detect drift.
SCHEMA_VERSION = 1

#: Histograms keep at most this many raw samples (count/total/min/max
#: stay exact beyond it; retention degrades to uniform reservoir
#: sampling); bounds memory for long campaigns.
MAX_HISTOGRAM_SAMPLES = 4096


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0.0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount


class Gauge:
    """A point-in-time value that can move in either direction."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """A distribution of observations (durations, sizes, gaps).

    Tracks exact ``count``/``total``/``min``/``max`` for any number of
    observations and retains up to :data:`MAX_HISTOGRAM_SAMPLES` raw
    samples for percentile queries.  Past the cap, retention switches to
    reservoir sampling (Vitter's Algorithm R) so the retained set stays
    a uniform sample of *every* observation — keeping only the first N
    would bias quantiles toward run startup and hide late-run outliers.
    The reservoir uses a private :class:`random.Random` seeded from the
    histogram name, so results are deterministic and the global
    ``random`` state is untouched.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_samples", "_rng")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list[float] = []
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < MAX_HISTOGRAM_SAMPLES:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < MAX_HISTOGRAM_SAMPLES:
                self._samples[slot] = value

    @property
    def mean(self) -> float:
        """Average observation (0.0 before any observation)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile (over the retained samples)."""
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = q / 100.0 * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    def summary(self) -> dict:
        """JSON-safe summary (raw samples are not exported)."""
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }


class MetricsRegistry:
    """One namespace of counters, gauges, histograms, and run records.

    Instruments are created on first use (``registry.counter("x")``)
    so call sites never need registration boilerplate.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self.records: list[RunRecord] = []

    # ------------------------------------------------------------------ #
    # Instrument access (get-or-create)
    # ------------------------------------------------------------------ #

    def counter(self, name: str) -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self.histograms.get(name)
        if inst is None:
            inst = self.histograms[name] = Histogram(name)
        return inst

    def reset(self) -> None:
        """Drop every instrument and record."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.records.clear()

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def timings(self) -> dict[str, dict]:
        """Summaries of every ``time.<span>`` histogram, keyed by span
        path (the ``time.`` prefix stripped)."""
        return {
            name[len("time.") :]: hist.summary()
            for name, hist in sorted(self.histograms.items())
            if name.startswith("time.")
        }

    def snapshot(self) -> dict:
        """The whole registry as one JSON-safe dictionary."""
        return {
            "schema": SCHEMA_VERSION,
            "counters": {
                name: c.value for name, c in sorted(self.counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self.gauges.items())
            },
            "histograms": {
                name: h.summary()
                for name, h in sorted(self.histograms.items())
            },
            "records": [r.to_dict() for r in self.records],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The snapshot serialized as JSON."""
        return json.dumps(self.snapshot(), indent=indent)

    @classmethod
    def from_snapshot(cls, data: Mapping) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output.

        Histogram raw samples are not exported, so percentile queries on
        the rebuilt registry degrade to the mean; ``snapshot()`` of the
        result round-trips exactly.
        """
        schema = data.get("schema")
        if schema != SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported metrics snapshot schema {schema!r} "
                f"(expected {SCHEMA_VERSION})"
            )
        registry = cls()
        for name, value in data.get("counters", {}).items():
            registry.counter(name).value = float(value)
        for name, value in data.get("gauges", {}).items():
            registry.gauge(name).set(float(value))
        for name, summary in data.get("histograms", {}).items():
            hist = registry.histogram(name)
            hist.count = int(summary["count"])
            hist.total = float(summary["total"])
            if hist.count:
                hist.min = float(summary["min"])
                hist.max = float(summary["max"])
        registry.records = [
            RunRecord.from_dict(r) for r in data.get("records", [])
        ]
        return registry
