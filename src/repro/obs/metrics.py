"""Metric primitives and the process-local registry.

Three instrument kinds, mirroring the usual metrics vocabulary:

- :class:`Counter` — a monotonically increasing total (events seen,
  solver iterations performed, simulation steps taken);
- :class:`Gauge` — a point-in-time value that can move both ways
  (statuses tabulated by the last index build, machines currently on);
- :class:`Histogram` — a distribution of observations, used for all
  wall-clock span durations (``time.<span>`` series recorded by
  :class:`repro.obs.runtime.timed`).

A :class:`MetricsRegistry` owns one namespace of instruments plus the
list of completed :class:`~repro.obs.records.RunRecord` objects.  The
registry is plain data: enabling/disabling instrumentation and the
module-global default registry live in :mod:`repro.obs.runtime`.

Everything here is process-local and intentionally lock-free: the
reproduction is single-threaded (numpy releases the GIL only inside
kernels), and the near-zero-cost disabled mode matters more than
concurrent mutation safety.  Snapshots are JSON-safe dictionaries and
round-trip through :meth:`MetricsRegistry.from_snapshot`.
"""

from __future__ import annotations

import json
import math
import random
import zlib
from time import monotonic
from typing import Iterator, Mapping, Optional

from repro.errors import ConfigurationError
from repro.obs.records import RunRecord

#: Version stamp embedded in every snapshot so downstream consumers
#: (the bench results schema check, dashboards) can detect drift.
SCHEMA_VERSION = 1

#: Histograms keep at most this many raw samples (count/total/min/max
#: stay exact beyond it; retention degrades to uniform reservoir
#: sampling); bounds memory for long campaigns.
MAX_HISTOGRAM_SAMPLES = 4096

#: Per-time-bucket raw-sample cap for :class:`SlidingHistogram`.  Within
#: a bucket the first this-many observations are retained exactly;
#: beyond it retention degrades to reservoir sampling (and window
#: summaries say so via ``sampled``).
MAX_WINDOW_BUCKET_SAMPLES = 1024

#: Default horizons (seconds) reported by windowed summaries: 10 s /
#: 1 min / 5 min — the operator's "now", "recently", and "trend" views.
DEFAULT_HORIZONS = (10.0, 60.0, 300.0)


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative) to the total."""
        if amount < 0.0:
            raise ConfigurationError(
                f"counter {self.name!r} cannot decrease (inc {amount})"
            )
        self.value += amount


class Gauge:
    """A point-in-time value that can move in either direction."""

    __slots__ = ("name", "value")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount


class Histogram:
    """A distribution of observations (durations, sizes, gaps).

    Tracks exact ``count``/``total``/``min``/``max`` for any number of
    observations and retains up to :data:`MAX_HISTOGRAM_SAMPLES` raw
    samples for percentile queries.  Past the cap, retention switches to
    reservoir sampling (Vitter's Algorithm R) so the retained set stays
    a uniform sample of *every* observation — keeping only the first N
    would bias quantiles toward run startup and hide late-run outliers.
    The reservoir uses a private :class:`random.Random` seeded from the
    histogram name, so results are deterministic and the global
    ``random`` state is untouched.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_samples",
                 "_rng", "_restored")

    def __init__(self, name: str) -> None:
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")
        self._samples: list[float] = []
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))
        #: Retained-sample count carried over from a snapshot (raw
        #: samples themselves are never exported); ``None`` while the
        #: histogram is live.
        self._restored: Optional[int] = None

    def observe(self, value: float) -> None:
        value = float(value)
        self._restored = None
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        if len(self._samples) < MAX_HISTOGRAM_SAMPLES:
            self._samples.append(value)
        else:
            slot = self._rng.randrange(self.count)
            if slot < MAX_HISTOGRAM_SAMPLES:
                self._samples[slot] = value

    @property
    def mean(self) -> float:
        """Average observation (0.0 before any observation)."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Approximate ``q``-th percentile (over the retained samples)."""
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(f"percentile must be in [0, 100], got {q}")
        if not self._samples:
            return 0.0
        ordered = sorted(self._samples)
        rank = q / 100.0 * (len(ordered) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(ordered) - 1)
        frac = rank - lo
        return ordered[lo] * (1.0 - frac) + ordered[hi] * frac

    @property
    def samples_retained(self) -> int:
        """How many raw samples back the percentile estimates."""
        if self._restored is not None:
            return self._restored
        return len(self._samples)

    @property
    def sampled(self) -> bool:
        """Whether the reservoir downsampled (percentiles approximate).

        ``False`` means every observation is retained and
        :meth:`percentile` is exact; ``True`` means quantiles come from
        a uniform sample of ``samples_retained`` out of ``count``
        observations.
        """
        return self.count > self.samples_retained

    def summary(self) -> dict:
        """JSON-safe summary (raw samples are not exported).

        When the reservoir has downsampled, the summary carries
        ``"sampled": true`` plus ``"samples"`` (the retained-sample
        count) next to the raw ``"count"`` — so exported percentiles
        are never silently read as exact.  Exact histograms omit both
        keys and keep the historical five-key shape.
        """
        summary = {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": self.min if self.count else 0.0,
            "max": self.max if self.count else 0.0,
        }
        if self.sampled:
            summary["sampled"] = True
            summary["samples"] = self.samples_retained
        return summary


class _Windowed:
    """Shared ring-of-time-buckets machinery for windowed instruments.

    Both windowed instruments key a fixed-size ring by *absolute bucket
    epoch* (``floor(now / bucket_seconds)``): writing to a slot whose
    stored epoch is stale resets it first, so expiry costs nothing — old
    buckets are simply never read once their epoch falls out of the
    window.  Every read/write takes an explicit ``now`` (defaulting to
    :func:`time.monotonic`) so tests can drive the clock
    deterministically.
    """

    __slots__ = ("name", "window", "bucket_seconds", "n_buckets", "_epochs")

    def __init__(
        self, name: str, window: float = 300.0, bucket_seconds: float = 1.0
    ) -> None:
        if bucket_seconds <= 0.0:
            raise ConfigurationError(
                f"windowed instrument {name!r}: bucket_seconds must be "
                f"positive, got {bucket_seconds}"
            )
        if window < bucket_seconds:
            raise ConfigurationError(
                f"windowed instrument {name!r}: window ({window}) must be "
                f"at least one bucket ({bucket_seconds})"
            )
        self.name = name
        self.window = float(window)
        self.bucket_seconds = float(bucket_seconds)
        self.n_buckets = int(math.ceil(self.window / self.bucket_seconds))
        self._epochs = [-1] * self.n_buckets

    def _epoch(self, now: Optional[float]) -> int:
        if now is None:
            now = monotonic()
        return int(now // self.bucket_seconds)

    def _span(self, horizon: float) -> int:
        """Bucket count covering ``horizon`` (validated against window)."""
        if not 0.0 < horizon <= self.window + 1e-9:
            raise ConfigurationError(
                f"windowed instrument {self.name!r}: horizon must be in "
                f"(0, {self.window}] seconds, got {horizon}"
            )
        return min(
            self.n_buckets, int(math.ceil(horizon / self.bucket_seconds))
        )

    def _live_slots(
        self, horizon: float, now: Optional[float]
    ) -> Iterator[int]:
        """Slots holding data observed within ``horizon`` of ``now``."""
        epoch = self._epoch(now)
        span = self._span(horizon)
        for e in range(epoch - span + 1, epoch + 1):
            slot = e % self.n_buckets
            if self._epochs[slot] == e:
                yield slot


class WindowedCounter(_Windowed):
    """An event counter with per-horizon totals and rates.

    Unlike :class:`Counter` (a lifetime total), a ``WindowedCounter``
    answers "how many in the last H seconds" for any horizon up to its
    window — the primitive behind live req/s and error-rate readouts.
    """

    __slots__ = ("_values",)

    def __init__(
        self, name: str, window: float = 300.0, bucket_seconds: float = 1.0
    ) -> None:
        super().__init__(name, window, bucket_seconds)
        self._values = [0.0] * self.n_buckets

    def inc(self, amount: float = 1.0, now: Optional[float] = None) -> None:
        if amount < 0.0:
            raise ConfigurationError(
                f"windowed counter {self.name!r} cannot decrease "
                f"(inc {amount})"
            )
        epoch = self._epoch(now)
        slot = epoch % self.n_buckets
        if self._epochs[slot] != epoch:
            self._epochs[slot] = epoch
            self._values[slot] = 0.0
        self._values[slot] += amount

    def total(self, horizon: float, now: Optional[float] = None) -> float:
        """Sum of increments within the last ``horizon`` seconds."""
        return sum(self._values[s] for s in self._live_slots(horizon, now))

    def rate(self, horizon: float, now: Optional[float] = None) -> float:
        """Mean per-second rate over the last ``horizon`` seconds."""
        return self.total(horizon, now=now) / horizon

    def summary(
        self,
        horizons: tuple = DEFAULT_HORIZONS,
        now: Optional[float] = None,
    ) -> dict:
        """JSON-safe ``{"<horizon s>": {"total", "rate"}}`` map."""
        out = {}
        for horizon in horizons:
            total = self.total(horizon, now=now)
            out[f"{horizon:g}"] = {"total": total, "rate": total / horizon}
        return out


class SlidingHistogram(_Windowed):
    """A distribution over a sliding time window.

    Complements :class:`Histogram` (lifetime-cumulative): the sliding
    variant answers "what is the p99 *right now*", over any horizon up
    to its window, by retaining raw samples per time bucket.  Within a
    bucket the first :data:`MAX_WINDOW_BUCKET_SAMPLES` observations are
    kept exactly — so window percentiles are exact at sane rates — and
    beyond that retention degrades to the same deterministic reservoir
    sampling as :class:`Histogram` (summaries then carry
    ``sampled: true``).  count/total/min/max per bucket stay exact
    regardless.
    """

    __slots__ = ("_counts", "_totals", "_mins", "_maxs", "_samples", "_rng")

    def __init__(
        self, name: str, window: float = 300.0, bucket_seconds: float = 1.0
    ) -> None:
        super().__init__(name, window, bucket_seconds)
        n = self.n_buckets
        self._counts = [0] * n
        self._totals = [0.0] * n
        self._mins = [0.0] * n
        self._maxs = [0.0] * n
        self._samples: list[list[float]] = [[] for _ in range(n)]
        self._rng = random.Random(zlib.crc32(name.encode("utf-8")))

    def observe(self, value: float, now: Optional[float] = None) -> None:
        value = float(value)
        epoch = self._epoch(now)
        slot = epoch % self.n_buckets
        if self._epochs[slot] != epoch:
            self._epochs[slot] = epoch
            self._counts[slot] = 0
            self._totals[slot] = 0.0
            self._samples[slot] = []
        count = self._counts[slot]
        if count == 0 or value < self._mins[slot]:
            self._mins[slot] = value
        if count == 0 or value > self._maxs[slot]:
            self._maxs[slot] = value
        self._counts[slot] = count + 1
        self._totals[slot] += value
        samples = self._samples[slot]
        if len(samples) < MAX_WINDOW_BUCKET_SAMPLES:
            samples.append(value)
        else:
            pick = self._rng.randrange(count + 1)
            if pick < MAX_WINDOW_BUCKET_SAMPLES:
                samples[pick] = value

    # -- window reads --------------------------------------------------- #

    def count(self, horizon: float, now: Optional[float] = None) -> int:
        return sum(self._counts[s] for s in self._live_slots(horizon, now))

    def total(self, horizon: float, now: Optional[float] = None) -> float:
        return sum(self._totals[s] for s in self._live_slots(horizon, now))

    def rate(self, horizon: float, now: Optional[float] = None) -> float:
        """Observations per second over the last ``horizon`` seconds."""
        return self.count(horizon, now=now) / horizon

    def mean(self, horizon: float, now: Optional[float] = None) -> float:
        count = total = 0.0
        for slot in self._live_slots(horizon, now):
            count += self._counts[slot]
            total += self._totals[slot]
        return total / count if count else 0.0

    def min_value(self, horizon: float, now: Optional[float] = None) -> float:
        lows = [self._mins[s] for s in self._live_slots(horizon, now)
                if self._counts[s]]
        return min(lows) if lows else 0.0

    def max_value(self, horizon: float, now: Optional[float] = None) -> float:
        highs = [self._maxs[s] for s in self._live_slots(horizon, now)
                 if self._counts[s]]
        return max(highs) if highs else 0.0

    def sampled(self, horizon: float, now: Optional[float] = None) -> bool:
        """Whether any live bucket downsampled (percentiles approximate)."""
        return any(
            self._counts[s] > len(self._samples[s])
            for s in self._live_slots(horizon, now)
        )

    def percentile(
        self, q: float, horizon: float, now: Optional[float] = None
    ) -> float:
        """``q``-th percentile over the last ``horizon`` seconds.

        Exact while no live bucket overflowed its sample cap; the same
        linear interpolation as :meth:`Histogram.percentile`.
        """
        if not 0.0 <= q <= 100.0:
            raise ConfigurationError(
                f"percentile must be in [0, 100], got {q}"
            )
        pooled: list[float] = []
        for slot in self._live_slots(horizon, now):
            pooled.extend(self._samples[slot])
        if not pooled:
            return 0.0
        pooled.sort()
        rank = q / 100.0 * (len(pooled) - 1)
        lo = int(rank)
        hi = min(lo + 1, len(pooled) - 1)
        frac = rank - lo
        return pooled[lo] * (1.0 - frac) + pooled[hi] * frac

    def summary(
        self,
        horizons: tuple = DEFAULT_HORIZONS,
        now: Optional[float] = None,
    ) -> dict:
        """JSON-safe per-horizon summary map.

        ``{"<horizon s>": {count, rate, mean, min, max, p50, p99,
        sampled}}`` — the shape the serving ``telemetry`` op exports.
        """
        out = {}
        for horizon in horizons:
            out[f"{horizon:g}"] = {
                "count": self.count(horizon, now=now),
                "rate": self.rate(horizon, now=now),
                "mean": self.mean(horizon, now=now),
                "min": self.min_value(horizon, now=now),
                "max": self.max_value(horizon, now=now),
                "p50": self.percentile(50.0, horizon, now=now),
                "p99": self.percentile(99.0, horizon, now=now),
                "sampled": self.sampled(horizon, now=now),
            }
        return out


class MetricsRegistry:
    """One namespace of counters, gauges, histograms, and run records.

    Instruments are created on first use (``registry.counter("x")``)
    so call sites never need registration boilerplate.
    """

    def __init__(self) -> None:
        self.counters: dict[str, Counter] = {}
        self.gauges: dict[str, Gauge] = {}
        self.histograms: dict[str, Histogram] = {}
        self.records: list[RunRecord] = []

    # ------------------------------------------------------------------ #
    # Instrument access (get-or-create)
    # ------------------------------------------------------------------ #

    def counter(self, name: str) -> Counter:
        inst = self.counters.get(name)
        if inst is None:
            inst = self.counters[name] = Counter(name)
        return inst

    def gauge(self, name: str) -> Gauge:
        inst = self.gauges.get(name)
        if inst is None:
            inst = self.gauges[name] = Gauge(name)
        return inst

    def histogram(self, name: str) -> Histogram:
        inst = self.histograms.get(name)
        if inst is None:
            inst = self.histograms[name] = Histogram(name)
        return inst

    def reset(self) -> None:
        """Drop every instrument and record."""
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
        self.records.clear()

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def timings(self) -> dict[str, dict]:
        """Summaries of every ``time.<span>`` histogram, keyed by span
        path (the ``time.`` prefix stripped)."""
        return {
            name[len("time.") :]: hist.summary()
            for name, hist in sorted(self.histograms.items())
            if name.startswith("time.")
        }

    def snapshot(self) -> dict:
        """The whole registry as one JSON-safe dictionary."""
        return {
            "schema": SCHEMA_VERSION,
            "counters": {
                name: c.value for name, c in sorted(self.counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self.gauges.items())
            },
            "histograms": {
                name: h.summary()
                for name, h in sorted(self.histograms.items())
            },
            "records": [r.to_dict() for r in self.records],
        }

    def to_json(self, indent: Optional[int] = None) -> str:
        """The snapshot serialized as JSON."""
        return json.dumps(self.snapshot(), indent=indent)

    @classmethod
    def from_snapshot(cls, data: Mapping) -> "MetricsRegistry":
        """Rebuild a registry from :meth:`snapshot` output.

        Histogram raw samples are not exported, so percentile queries on
        the rebuilt registry degrade to the mean; ``snapshot()`` of the
        result round-trips exactly.
        """
        schema = data.get("schema")
        if schema != SCHEMA_VERSION:
            raise ConfigurationError(
                f"unsupported metrics snapshot schema {schema!r} "
                f"(expected {SCHEMA_VERSION})"
            )
        registry = cls()
        for name, value in data.get("counters", {}).items():
            registry.counter(name).value = float(value)
        for name, value in data.get("gauges", {}).items():
            registry.gauge(name).set(float(value))
        for name, summary in data.get("histograms", {}).items():
            hist = registry.histogram(name)
            hist.count = int(summary["count"])
            hist.total = float(summary["total"])
            if hist.count:
                hist.min = float(summary["min"])
                hist.max = float(summary["max"])
                # An absent "samples" key means the source histogram was
                # exact, so the restored one reports exact too.
                hist._restored = int(summary.get("samples", hist.count))
        registry.records = [
            RunRecord.from_dict(r) for r in data.get("records", [])
        ]
        return registry
