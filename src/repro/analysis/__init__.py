"""Result analysis: energy accounting, savings, and figure series."""

from repro.analysis.energy import (
    average_power,
    percent_savings,
    savings_summary,
)
from repro.analysis.series import FigureSeries, format_table, records_to_series

__all__ = [
    "percent_savings",
    "average_power",
    "savings_summary",
    "FigureSeries",
    "records_to_series",
    "format_table",
]
