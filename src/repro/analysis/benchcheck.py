"""Bench-regression gate: compare result artifacts against baselines.

The benchmarks under ``benchmarks/`` write machine-readable JSON
artifacts into ``benchmarks/results/`` (each self-describing via a
``kind`` field).  This module compares a fresh results directory
against the committed snapshots in ``benchmarks/baselines/`` and
renders a per-metric verdict table — the ``repro bench-check`` CLI
target, run in CI right after the smoke benches.

Design choices, in decreasing order of importance:

- **Generous ratio tolerances.**  CI machines are noisy and shared;
  the gate exists to catch order-of-magnitude regressions (an
  accidentally quadratic path, a lost vectorization), not 10% jitter.
  The default tolerance lets a metric degrade up to 2.5x before
  failing.
- **Context-gated comparison.**  A result is only compared against a
  baseline measured under the same workload shape (same ``machines``
  for serving, matching entry identity keys everywhere).  A CI smoke
  run at ``machines=20`` is *skipped* against the committed
  ``machines=500`` baseline rather than producing meaningless ratios.
- **New artifacts pass.**  A result with no committed baseline (or a
  kind with no metric spec) is reported as ``new``/``skipped``, never
  failed — the gate must not punish adding benchmarks.

``--update`` snapshots the current results as the new baselines.
"""

from __future__ import annotations

import json
import pathlib
import shutil
from dataclasses import dataclass, field
from typing import Optional, Union

from repro.errors import ConfigurationError

#: Degradation ratio a metric may reach before the gate fails.
DEFAULT_TOLERANCE = 2.5

#: Verdicts, in the order the summary counts them.
VERDICTS = ("ok", "regression", "new", "skipped")


@dataclass(frozen=True)
class MetricSpec:
    """One gated metric: its name, better-direction, and tolerance."""

    name: str
    direction: str  # "lower" (latencies, seconds) or "higher" (rates)
    tolerance: float = DEFAULT_TOLERANCE
    #: How to treat a zero/negative baseline: "skip" (ratios are
    #: meaningless for noisy timings) or "strict" — a zero baseline is
    #: a *promise* (e.g. zero violation-seconds) and any nonzero
    #: current value of a lower-is-better metric is a regression.
    zero_baseline: str = "skip"

    def verdict(self, baseline: float, current: float) -> str:
        if baseline <= 0.0:
            if self.zero_baseline == "strict" and self.direction == "lower":
                return "regression" if current > baseline + 1e-9 else "ok"
            return "skipped"
        ratio = current / baseline
        if self.direction == "lower":
            return "regression" if ratio > self.tolerance else "ok"
        return "regression" if ratio < 1.0 / self.tolerance else "ok"


@dataclass(frozen=True)
class SectionSpec:
    """An extra gated entry list under a top-level key ≠ ``entries``.

    Sections are optional on both sides: a result without the section
    (or a baseline predating it) yields ``new``/``skipped`` rows, never
    a failure — same grandfathering rule as whole artifacts.
    """

    key: str
    identity: tuple[str, ...]
    metrics: tuple[MetricSpec, ...]


@dataclass(frozen=True)
class KindSpec:
    """How to compare one artifact ``kind``: identity keys + metrics."""

    identity: tuple[str, ...]
    metrics: tuple[MetricSpec, ...]
    context: tuple[str, ...] = ()  # top-level keys that must match
    sections: tuple[SectionSpec, ...] = ()  # extra gated entry lists


#: Per-kind comparison specs.  Kinds absent here are skipped, not
#: failed — see the module docstring.
KIND_SPECS: dict[str, KindSpec] = {
    "serving": KindSpec(
        identity=("clients", "batching"),
        context=("machines",),
        metrics=(
            MetricSpec("latency_p50_ms", "lower"),
            MetricSpec("latency_p99_ms", "lower"),
            MetricSpec("requests_per_second", "higher"),
        ),
    ),
    "consolidation-scale": KindSpec(
        identity=("n",),
        metrics=(
            MetricSpec("build_seconds", "lower"),
            MetricSpec("query_seconds_batched", "lower"),
        ),
        sections=(
            SectionSpec(
                key="sharded",
                identity=("n", "pods"),
                metrics=(
                    MetricSpec("build_seconds", "lower"),
                    MetricSpec("query_seconds_batched", "lower"),
                ),
            ),
        ),
    ),
    "simulation-speed": KindSpec(
        identity=("n",),
        metrics=(
            MetricSpec("steps_per_second_numpy", "higher"),
        ),
    ),
    "cooling-plant": KindSpec(
        identity=("site",),
        context=("machines", "load_fraction"),
        metrics=(
            MetricSpec("pue", "lower"),
            MetricSpec("total_energy_joules", "lower"),
            MetricSpec("economizer_fraction", "higher"),
        ),
        sections=(
            SectionSpec(
                key="heat_wave",
                identity=("site",),
                metrics=(
                    MetricSpec("wave_pue", "lower"),
                    MetricSpec("wave_peak_w", "lower"),
                ),
            ),
        ),
    ),
    "mpc": KindSpec(
        identity=("scenario", "controller"),
        context=("machines", "horizon"),
        metrics=(
            MetricSpec("violation_seconds", "lower"),
            MetricSpec("energy_joules", "lower"),
            MetricSpec("served_task_seconds", "higher"),
        ),
        sections=(
            # The acceptance gate rides here: the committed baseline has
            # MPC at zero violation-seconds on every scenario, so the
            # strict zero-baseline rule turns *any* nonzero
            # mpc_violation_seconds into a failure.
            SectionSpec(
                key="dominance",
                identity=("scenario",),
                metrics=(
                    MetricSpec("mpc_violation_seconds", "lower",
                               zero_baseline="strict"),
                    MetricSpec("mpc_energy_joules", "lower"),
                ),
            ),
        ),
    ),
}


@dataclass
class CheckRow:
    """One verdict line of the bench-check table."""

    artifact: str
    subject: str
    metric: str
    verdict: str
    baseline: Optional[float] = None
    current: Optional[float] = None
    note: str = ""

    @property
    def ratio(self) -> Optional[float]:
        if not self.baseline or self.current is None:
            return None
        return self.current / self.baseline


@dataclass
class CheckReport:
    """All rows of one ``bench-check`` run plus the overall verdict."""

    rows: list[CheckRow] = field(default_factory=list)

    @property
    def regressed(self) -> bool:
        return any(row.verdict == "regression" for row in self.rows)

    def counts(self) -> dict[str, int]:
        out = {verdict: 0 for verdict in VERDICTS}
        for row in self.rows:
            out[row.verdict] = out.get(row.verdict, 0) + 1
        return out


def _load_json(path: pathlib.Path) -> dict:
    try:
        document = json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ConfigurationError(
            f"cannot read benchmark artifact {path}: {exc}"
        ) from exc
    if not isinstance(document, dict):
        raise ConfigurationError(
            f"benchmark artifact {path} is not a JSON object"
        )
    return document


def _entry_key(entry: dict, identity: tuple[str, ...]) -> tuple:
    return tuple(entry.get(key) for key in identity)


def _subject(entry: dict, identity: tuple[str, ...]) -> str:
    return ",".join(f"{key}={entry.get(key)}" for key in identity)


def _compare_entries(
    artifact: str,
    baseline_list: list,
    current_list: list,
    identity: tuple[str, ...],
    metrics: tuple[MetricSpec, ...],
    prefix: str = "",
) -> list[CheckRow]:
    """Verdict rows for one identity-keyed entry list (or section)."""
    baseline_entries = {
        _entry_key(entry, identity): entry for entry in baseline_list
    }
    rows: list[CheckRow] = []
    for entry in current_list:
        subject = prefix + _subject(entry, identity)
        base_entry = baseline_entries.get(_entry_key(entry, identity))
        if base_entry is None:
            rows.append(
                CheckRow(artifact, subject, "-", "new",
                         note="no baseline entry")
            )
            continue
        for metric in metrics:
            base_value = base_entry.get(metric.name)
            value = entry.get(metric.name)
            if not isinstance(base_value, (int, float)) or not isinstance(
                value, (int, float)
            ):
                rows.append(
                    CheckRow(artifact, subject, metric.name, "skipped",
                             note="metric missing")
                )
                continue
            verdict = metric.verdict(float(base_value), float(value))
            note = ""
            if verdict == "regression":
                note = (f"{metric.direction}-is-better beyond "
                        f"{metric.tolerance:g}x tolerance")
            rows.append(
                CheckRow(artifact, subject, metric.name, verdict,
                         baseline=float(base_value),
                         current=float(value), note=note)
            )
    return rows


def compare_documents(
    artifact: str, baseline: dict, current: dict
) -> list[CheckRow]:
    """Per-metric verdict rows for one (baseline, result) artifact pair."""
    kind = current.get("kind")
    spec = KIND_SPECS.get(str(kind))
    if spec is None:
        return [
            CheckRow(artifact, "-", "-", "skipped",
                     note=f"no gate spec for kind {kind!r}")
        ]
    if baseline.get("kind") != kind:
        return [
            CheckRow(artifact, "-", "-", "skipped",
                     note=f"baseline kind {baseline.get('kind')!r} "
                          f"!= result kind {kind!r}")
        ]
    for key in spec.context:
        if baseline.get(key) != current.get(key):
            return [
                CheckRow(
                    artifact, "-", "-", "skipped",
                    note=(f"incomparable workload: {key} "
                          f"{current.get(key)!r} vs baseline "
                          f"{baseline.get(key)!r}"),
                )
            ]
    rows = _compare_entries(
        artifact,
        baseline.get("entries", []),
        current.get("entries", []),
        spec.identity,
        spec.metrics,
    )
    for section in spec.sections:
        current_list = current.get(section.key)
        if not isinstance(current_list, list):
            continue  # result has no such section — nothing to gate
        baseline_list = baseline.get(section.key)
        if not isinstance(baseline_list, list):
            baseline_list = []  # baseline predates it: rows come out "new"
        rows.extend(
            _compare_entries(
                artifact, baseline_list, current_list,
                section.identity, section.metrics,
                prefix=f"{section.key}:",
            )
        )
    if not rows:
        rows.append(
            CheckRow(artifact, "-", "-", "skipped", note="no entries")
        )
    return rows


def check_benchmarks(
    results_dir: Union[str, pathlib.Path],
    baselines_dir: Union[str, pathlib.Path],
) -> CheckReport:
    """Compare every ``*.json`` result against its committed baseline."""
    results_dir = pathlib.Path(results_dir)
    baselines_dir = pathlib.Path(baselines_dir)
    if not results_dir.is_dir():
        raise ConfigurationError(
            f"results directory does not exist: {results_dir}"
        )
    report = CheckReport()
    result_paths = sorted(results_dir.glob("*.json"))
    if not result_paths:
        raise ConfigurationError(
            f"no *.json benchmark artifacts in {results_dir}"
        )
    for path in result_paths:
        baseline_path = baselines_dir / path.name
        if not baseline_path.is_file():
            report.rows.append(
                CheckRow(path.name, "-", "-", "new",
                         note="no committed baseline")
            )
            continue
        report.rows.extend(
            compare_documents(
                path.name, _load_json(baseline_path), _load_json(path)
            )
        )
    return report


def update_baselines(
    results_dir: Union[str, pathlib.Path],
    baselines_dir: Union[str, pathlib.Path],
) -> list[str]:
    """Snapshot current ``*.json`` results as the new baselines."""
    results_dir = pathlib.Path(results_dir)
    baselines_dir = pathlib.Path(baselines_dir)
    if not results_dir.is_dir():
        raise ConfigurationError(
            f"results directory does not exist: {results_dir}"
        )
    baselines_dir.mkdir(parents=True, exist_ok=True)
    copied = []
    for path in sorted(results_dir.glob("*.json")):
        shutil.copyfile(path, baselines_dir / path.name)
        copied.append(path.name)
    return copied


def render_report(report: CheckReport) -> str:
    """The human verdict table ``repro bench-check`` prints."""
    headers = ["artifact", "subject", "metric", "baseline", "current",
               "ratio", "verdict"]
    widths = [len(h) for h in headers]
    body = []
    for row in report.rows:
        ratio = row.ratio
        cells = [
            row.artifact,
            row.subject,
            row.metric,
            "-" if row.baseline is None else f"{row.baseline:.4g}",
            "-" if row.current is None else f"{row.current:.4g}",
            "-" if ratio is None else f"{ratio:.2f}x",
            row.verdict + (f" ({row.note})" if row.note else ""),
        ]
        widths = [max(w, len(c)) for w, c in zip(widths, cells)]
        body.append(cells)
    lines = []
    lines.append("  ".join(
        h.ljust(w) for h, w in zip(headers, widths)
    ).rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for cells in body:
        lines.append("  ".join(
            c.ljust(w) for c, w in zip(cells, widths)
        ).rstrip())
    counts = report.counts()
    summary = ", ".join(
        f"{counts[v]} {v}" for v in VERDICTS if counts.get(v)
    )
    lines.append("")
    lines.append(
        ("FAIL: benchmark regression detected" if report.regressed
         else "OK: no benchmark regressions")
        + (f" ({summary})" if summary else "")
    )
    return "\n".join(lines) + "\n"
