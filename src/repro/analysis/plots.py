"""ASCII line plots for figure series.

The environment has no plotting stack, and the reproduction's claims are
about series *shapes* anyway — so the CLI renders figures as compact
ASCII charts: one glyph per series, shared axes, a legend underneath.
Good enough to eyeball that the curves cross where the paper says they
cross.
"""

from __future__ import annotations

from repro.analysis.series import FigureSeries
from repro.errors import ConfigurationError

#: Plot glyphs assigned to series in order.
GLYPHS = "ox+*#@%&$~"


def ascii_plot(
    series: FigureSeries,
    width: int = 64,
    height: int = 18,
) -> str:
    """Render a :class:`FigureSeries` as an ASCII chart.

    Each series gets one glyph; overlapping points show the glyph of the
    later series.  Y axis is linear with the data range padded 5%.
    """
    if width < 16 or height < 6:
        raise ConfigurationError(
            f"plot needs width >= 16 and height >= 6, got {width}x{height}"
        )
    labels = list(series.series)
    if len(labels) > len(GLYPHS):
        raise ConfigurationError(
            f"at most {len(GLYPHS)} series supported, got {len(labels)}"
        )
    all_y = [y for ys in series.series.values() for y in ys]
    if not all_y:
        raise ConfigurationError("nothing to plot")
    y_min, y_max = min(all_y), max(all_y)
    pad = 0.05 * (y_max - y_min) if y_max > y_min else max(1.0, abs(y_max))
    y_lo, y_hi = y_min - pad, y_max + pad
    x_lo, x_hi = min(series.x), max(series.x)
    x_span = (x_hi - x_lo) or 1.0

    grid = [[" "] * width for _ in range(height)]
    for label, glyph in zip(labels, GLYPHS):
        for x, y in zip(series.x, series.series[label]):
            col = int(round((x - x_lo) / x_span * (width - 1)))
            row = int(
                round((y_hi - y) / (y_hi - y_lo) * (height - 1))
            )
            grid[row][col] = glyph

    lines = [f"{series.name}: {series.title}"]
    for i, row in enumerate(grid):
        if i == 0:
            label = f"{y_hi:>9.0f} |"
        elif i == height - 1:
            label = f"{y_lo:>9.0f} |"
        else:
            label = " " * 9 + " |"
        lines.append(label + "".join(row))
    lines.append(" " * 10 + "+" + "-" * width)
    lines.append(
        " " * 10
        + f"{x_lo:<10.0f}"
        + f"{series.x_label:^{max(0, width - 20)}}"
        + f"{x_hi:>10.0f}"
    )
    for label, glyph in zip(labels, GLYPHS):
        lines.append(f"  {glyph} = {label}")
    return "\n".join(lines)


def sparkline(values: list[float]) -> str:
    """A one-line sparkline (eight-level block glyphs) for quick looks."""
    if not values:
        raise ConfigurationError("nothing to plot")
    blocks = "▁▂▃▄▅▆▇█"
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    out = []
    for v in values:
        idx = int((v - lo) / span * (len(blocks) - 1))
        out.append(blocks[idx])
    return "".join(out)
