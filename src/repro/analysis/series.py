"""Figure-series containers and plain-text table rendering.

The benches regenerate every paper figure as *data* — x/y series plus a
rendered text table — because the reproduction's claims are about the
series shapes, not about pixels.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.testbed.experiment import ExperimentRecord


@dataclass(frozen=True)
class FigureSeries:
    """One figure's worth of series sharing an x axis.

    Attributes
    ----------
    name:
        Figure identifier, e.g. ``"fig6"``.
    title:
        The paper's caption.
    x_label, y_label:
        Axis labels.
    x:
        Shared x values (load fractions, in percent, for most figures).
    series:
        Mapping from series label (e.g. ``"#8 optimal+AC+consolidation"``)
        to y values aligned with ``x``.
    """

    name: str
    title: str
    x_label: str
    y_label: str
    x: tuple[float, ...]
    series: Mapping[str, tuple[float, ...]]

    def __post_init__(self) -> None:
        for label, ys in self.series.items():
            if len(ys) != len(self.x):
                raise ConfigurationError(
                    f"series {label!r} has {len(ys)} points for "
                    f"{len(self.x)} x values"
                )

    def table(self) -> str:
        """Render the figure as an aligned text table."""
        labels = list(self.series)
        header = [self.x_label] + labels
        rows = []
        for i, x in enumerate(self.x):
            rows.append(
                [f"{x:.1f}"] + [f"{self.series[l][i]:.1f}" for l in labels]
            )
        return format_table(header, rows, title=f"{self.name}: {self.title}")


def records_to_series(
    name: str,
    title: str,
    sweeps: Mapping[str, Sequence[ExperimentRecord]],
    y_label: str = "Total power (W)",
) -> FigureSeries:
    """Build a :class:`FigureSeries` from per-scenario record sweeps."""
    if not sweeps:
        raise ConfigurationError("no sweeps given")
    first = next(iter(sweeps.values()))
    x = tuple(round(r.load_fraction * 100.0, 6) for r in first)
    series = {}
    for label, records in sweeps.items():
        xs = tuple(round(r.load_fraction * 100.0, 6) for r in records)
        if len(xs) != len(x) or any(
            abs(a - b) > 1e-3 for a, b in zip(xs, x)
        ):
            raise ConfigurationError(
                f"sweep {label!r} covers loads {xs}, expected {x}"
            )
        series[label] = tuple(r.total_power for r in records)
    return FigureSeries(
        name=name,
        title=title,
        x_label="Load (%)",
        y_label=y_label,
        x=x,
        series=series,
    )


def format_table(
    header: Sequence[str],
    rows: Sequence[Sequence[str]],
    title: str | None = None,
) -> str:
    """Align a header and string rows into a monospace table."""
    columns = len(header)
    for row in rows:
        if len(row) != columns:
            raise ConfigurationError(
                f"row has {len(row)} cells, header has {columns}"
            )
    widths = [
        max(len(str(header[c])), *(len(str(r[c])) for r in rows))
        if rows
        else len(str(header[c]))
        for c in range(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    lines.append(
        "  ".join(str(h).rjust(w) for h, w in zip(header, widths))
    )
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append(
            "  ".join(str(cell).rjust(w) for cell, w in zip(row, widths))
        )
    return "\n".join(lines)
