"""Energy accounting and savings computations over experiment records."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError
from repro.testbed.experiment import ExperimentRecord


def percent_savings(baseline_power: float, candidate_power: float) -> float:
    """Percentage of ``baseline_power`` saved by the candidate.

    Positive means the candidate is cheaper (the convention used in the
    paper's headline numbers).
    """
    if baseline_power <= 0.0:
        raise ConfigurationError(
            f"baseline power must be positive, got {baseline_power}"
        )
    return 100.0 * (baseline_power - candidate_power) / baseline_power


def average_power(records: Sequence[ExperimentRecord]) -> float:
    """Mean total power over a sweep of records (the paper's Fig. 10
    aggregation: average across load scenarios), W."""
    if not records:
        raise ConfigurationError("no records to average")
    return float(np.mean([r.total_power for r in records]))


@dataclass(frozen=True)
class SavingsSummary:
    """Aggregate comparison of one method against a baseline."""

    baseline: str
    candidate: str
    average_savings_percent: float
    best_savings_percent: float
    best_load_fraction: float
    worst_savings_percent: float

    def __str__(self) -> str:
        return (
            f"{self.candidate} vs {self.baseline}: "
            f"avg {self.average_savings_percent:.1f}%, "
            f"best {self.best_savings_percent:.1f}% "
            f"(at load {self.best_load_fraction * 100.0:.0f}%), "
            f"worst {self.worst_savings_percent:.1f}%"
        )


def savings_summary(
    baseline: Sequence[ExperimentRecord],
    candidate: Sequence[ExperimentRecord],
) -> SavingsSummary:
    """Per-load and aggregate savings of ``candidate`` over ``baseline``.

    Both sweeps must cover the same load fractions in the same order
    (they are produced by the same harness, so this is a consistency
    check, not a limitation).
    """
    if len(baseline) != len(candidate) or not baseline:
        raise ConfigurationError(
            f"sweeps differ in length: {len(baseline)} vs {len(candidate)}"
        )
    per_load = []
    for b, c in zip(baseline, candidate):
        if abs(b.load_fraction - c.load_fraction) > 1e-6:
            raise ConfigurationError(
                "sweeps cover different load fractions: "
                f"{b.load_fraction} vs {c.load_fraction}"
            )
        per_load.append(
            (b.load_fraction, percent_savings(b.total_power, c.total_power))
        )
    savings = [s for _, s in per_load]
    best_idx = int(np.argmax(savings))
    return SavingsSummary(
        baseline=baseline[0].scenario,
        candidate=candidate[0].scenario,
        average_savings_percent=float(np.mean(savings)),
        best_savings_percent=savings[best_idx],
        best_load_fraction=per_load[best_idx][0],
        worst_savings_percent=float(np.min(savings)),
    )
