"""Fig. 6 reproduction: total power of all eight methods vs total load."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.series import FigureSeries, records_to_series
from repro.experiments.common import (
    EvaluationContext,
    all_paper_sweeps,
    default_context,
)


@dataclass(frozen=True)
class Fig6Result:
    """Regenerated Fig. 6 data."""

    series: FigureSeries
    winner_per_load: tuple[str, ...]

    def table(self) -> str:
        """Text rendering plus the per-load winner row."""
        lines = [self.series.table(), "", "cheapest method per load:"]
        for x, winner in zip(self.series.x, self.winner_per_load):
            lines.append(f"  {x:5.1f}%: {winner}")
        return "\n".join(lines)


def run_fig6(context: EvaluationContext | None = None) -> Fig6Result:
    """Regenerate Fig. 6 (all eight numbered scenarios vs load)."""
    ctx = context or default_context()
    sweeps = all_paper_sweeps(ctx)
    series = records_to_series(
        "fig6", "Power consumption of all methods vs total load", sweeps
    )
    winners = []
    labels = list(series.series)
    for i in range(len(series.x)):
        winners.append(
            min(labels, key=lambda label: series.series[label][i])
        )
    return Fig6Result(series=series, winner_per_load=tuple(winners))
