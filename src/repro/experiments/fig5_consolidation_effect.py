"""Fig. 5 reproduction: the effect of consolidation.

The paper compares "similar methods with and without consolidation" —
the pairs (#2, #3), (#5, #7) and (#6, #8) — and observes that
consolidation "substantially increases total energy savings", most of all
at low load.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.series import FigureSeries, records_to_series
from repro.experiments.common import (
    EvaluationContext,
    default_context,
    numbered_sweeps,
)

#: Scenario pairs differing only in consolidation.
FIG5_PAIRS: tuple[tuple[int, int], ...] = ((2, 3), (5, 7), (6, 8))


@dataclass(frozen=True)
class Fig5Result:
    """Regenerated Fig. 5 data."""

    series: FigureSeries
    pair_low_load_savings_percent: dict[str, float]
    pair_high_load_savings_percent: dict[str, float]

    def table(self) -> str:
        """Text rendering: the series plus per-pair consolidation gains."""
        lines = [self.series.table(), "", "consolidation savings by pair:"]
        for pair in self.pair_low_load_savings_percent:
            lines.append(
                f"  {pair}: {self.pair_low_load_savings_percent[pair]:5.1f}% "
                f"at lowest load, "
                f"{self.pair_high_load_savings_percent[pair]:5.1f}% at full load"
            )
        return "\n".join(lines)


def run_fig5(context: EvaluationContext | None = None) -> Fig5Result:
    """Regenerate Fig. 5 (methods #2, #3, #5, #7, #6, #8 vs load)."""
    ctx = context or default_context()
    numbers = [n for pair in FIG5_PAIRS for n in pair]
    sweeps = numbered_sweeps(ctx, numbers)
    series = records_to_series(
        "fig5",
        "Comparison of similar methods with and without consolidation",
        sweeps,
    )
    low: dict[str, float] = {}
    high: dict[str, float] = {}
    labels = list(sweeps)
    for j, (base_n, cons_n) in enumerate(FIG5_PAIRS):
        base = sweeps[labels[2 * j]]
        cons = sweeps[labels[2 * j + 1]]
        key = f"#{base_n} vs #{cons_n}"
        low[key] = (
            100.0
            * (base[0].total_power - cons[0].total_power)
            / base[0].total_power
        )
        high[key] = (
            100.0
            * (base[-1].total_power - cons[-1].total_power)
            / base[-1].total_power
        )
    return Fig5Result(
        series=series,
        pair_low_load_savings_percent=low,
        pair_high_load_savings_percent=high,
    )
