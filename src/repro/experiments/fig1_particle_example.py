"""Fig. 1 reproduction: the one-dimensional particle system example.

The paper illustrates the consolidation reduction with a 4-particle,
``k = 2`` system having exactly two events: the initial order
``(3, 1, 4, 2)`` becomes ``(1, 3, 4, 2)`` when particle 1 passes particle 3
at ``t = 1``, then ``(1, 4, 3, 2)`` when particle 4 passes particle 3 at
``t = 3``.

The scanned figure's ``(a_i, b_i)`` labels are not legible in the source
text, so we use a reconstructed instance with *identical structure* (same
initial order, same two events at the same times, same final order):

    particle 1: (a, b) = (5, 1)
    particle 2: (a, b) = (0, 2)
    particle 3: (a, b) = (6, 2)
    particle 4: (a, b) = (3, 1)

With these values ``x_1(1) = x_3(1) = 4`` and ``x_3(3) = x_4(3) = 0``, and
no other pair ever crosses at positive time.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.consolidation import ConsolidationIndex
from repro.core.select import Pair
from repro.obs import timed

#: Reconstructed Fig. 1 instance (see module docstring).  Particle ids in
#: the paper are 1-based; indices here are 0-based.
FIG1_PAIRS: tuple[Pair, ...] = (
    (5.0, 1.0),  # particle 1
    (0.0, 2.0),  # particle 2
    (6.0, 2.0),  # particle 3
    (3.0, 1.0),  # particle 4
)

#: The orders the paper's figure shows (1-based particle ids).
EXPECTED_ORDERS: tuple[tuple[int, ...], ...] = (
    (3, 1, 4, 2),
    (1, 3, 4, 2),
    (1, 4, 3, 2),
)

#: The event times the paper's figure shows.
EXPECTED_EVENT_TIMES: tuple[float, ...] = (1.0, 3.0)


@dataclass(frozen=True)
class Fig1Result:
    """The regenerated Fig. 1 data."""

    event_times: tuple[float, ...]
    orders: tuple[tuple[int, ...], ...]
    status_count: int
    top2_sets: tuple[tuple[int, ...], ...]

    def table(self) -> str:
        """Text rendering of the particle-system timeline."""
        lines = ["Fig. 1 particle system (n=4, k=2)"]
        times = (0.0,) + self.event_times
        for t, order in zip(times, self.orders):
            ids = ", ".join(str(i) for i in order)
            lines.append(f"  t={t:>4.1f}  order=({ids})")
        sets = " ".join("{" + ",".join(map(str, s)) + "}" for s in self.top2_sets)
        lines.append(f"  distinct top-2 candidate sets: {sets}")
        lines.append(f"  statuses tabulated: {self.status_count}")
        return "\n".join(lines)


def run_fig1() -> Fig1Result:
    """Build the Algorithm-1 index for the Fig. 1 instance."""
    with timed("fig1/index_build"):
        index = ConsolidationIndex(FIG1_PAIRS, w2=1.0, rho=1.0)
    timeline = index.order_timeline()
    orders = tuple(
        tuple(i + 1 for i in order) for _, order in timeline
    )  # back to the paper's 1-based ids
    event_times = tuple(t for t, _ in timeline[1:])
    top2 = []
    for _, order in timeline:
        candidate = tuple(sorted(i + 1 for i in order[:2]))
        if candidate not in top2:
            top2.append(candidate)
    return Fig1Result(
        event_times=event_times,
        orders=orders,
        status_count=index.status_count,
        top2_sets=tuple(top2),
    )
