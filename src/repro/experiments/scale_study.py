"""Scale study: does a bigger room mean bigger savings?

The paper conjectures: "It is expected that more savings can be achieved
in larger-scale systems" (and, in the introduction, that "larger spatial
diversity gives rise to more opportunities for optimization").  This
driver rebuilds the testbed at several rack sizes — scaling the cooling
unit with the heat load, as a facility designer would — re-profiles each,
and measures the #8-vs-#7 savings band.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.series import format_table
from repro.experiments.common import default_context, numbered_sweeps
from repro.testbed.rack import TestbedConfig


def scaled_config(n_machines: int) -> TestbedConfig:
    """A machine-room configuration sized for ``n_machines``.

    Cooler air flow, heat-removal capacity, blower power and the room
    volume/envelope all scale with the rack (a facility for 40 machines
    is not cooled by the 20-machine unit).
    """
    scale = n_machines / 20.0
    return TestbedConfig(
        n_machines=n_machines,
        cooler_flow=1.0 * scale,
        cooler_q_max=12000.0 * scale,
        cooler_fan_power=3000.0 * scale,
        room_volume=50.0 * scale,
        envelope_conductance=65.0 * np.sqrt(scale),
    )


@dataclass(frozen=True)
class ScalePoint:
    """Savings of the full solution at one rack size."""

    n_machines: int
    avg_savings_percent: float
    best_savings_percent: float


@dataclass(frozen=True)
class ScaleStudyResult:
    """The whole scale sweep."""

    points: tuple[ScalePoint, ...]

    def table(self) -> str:
        """Text rendering of the scale study."""
        rows = [
            [
                str(p.n_machines),
                f"{p.avg_savings_percent:.1f}",
                f"{p.best_savings_percent:.1f}",
            ]
            for p in self.points
        ]
        return format_table(
            ["machines", "avg #8 vs #7 savings (%)", "best (%)"],
            rows,
            title="Scale study: savings vs rack size "
            "(paper: larger systems should save more)",
        )


def run_scale_study(
    sizes: Sequence[int] = (10, 20, 40),
    seed: int = 2012,
    load_fractions: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
) -> ScaleStudyResult:
    """Re-profile and evaluate the rack at several sizes."""
    points = []
    for n in sizes:
        ctx = default_context(seed=seed, config=scaled_config(n))
        sweeps = numbered_sweeps(ctx, [7, 8], load_fractions)
        labels = list(sweeps)
        bottom, optimal = sweeps[labels[0]], sweeps[labels[1]]
        savings = [
            100.0 * (b.total_power - o.total_power) / b.total_power
            for b, o in zip(bottom, optimal)
        ]
        points.append(
            ScalePoint(
                n_machines=n,
                avg_savings_percent=float(np.mean(savings)),
                best_savings_percent=float(np.max(savings)),
            )
        )
    return ScaleStudyResult(points=tuple(points))
