"""Fig. 7 reproduction: load distribution strategies without consolidation.

With AC control on and every machine powered (#4 Even, #5 Bottom-up,
#6 Optimal), the paper observes "the optimal load distribution computed by
our heuristic saves the most energy compared to the other two baselines".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.series import FigureSeries, records_to_series
from repro.experiments.common import (
    EvaluationContext,
    default_context,
    numbered_sweeps,
)


@dataclass(frozen=True)
class Fig7Result:
    """Regenerated Fig. 7 data."""

    series: FigureSeries
    optimal_vs_even_avg_percent: float
    optimal_vs_bottom_up_avg_percent: float

    def table(self) -> str:
        """Text rendering plus the aggregate savings of the optimal row."""
        return (
            self.series.table()
            + "\n\n"
            + f"optimal saves on average {self.optimal_vs_even_avg_percent:.1f}% "
            f"vs even and {self.optimal_vs_bottom_up_avg_percent:.1f}% vs bottom-up"
        )


def run_fig7(context: EvaluationContext | None = None) -> Fig7Result:
    """Regenerate Fig. 7 (#4 vs #5 vs #6 across load)."""
    ctx = context or default_context()
    sweeps = numbered_sweeps(ctx, [4, 5, 6])
    series = records_to_series(
        "fig7",
        "AC control, no consolidation: different load distribution strategies",
        sweeps,
    )
    labels = list(sweeps)
    even, bottom, optimal = (sweeps[label] for label in labels)
    ove = [
        100.0 * (e.total_power - o.total_power) / e.total_power
        for e, o in zip(even, optimal)
    ]
    ovb = [
        100.0 * (b.total_power - o.total_power) / b.total_power
        for b, o in zip(bottom, optimal)
    ]
    return Fig7Result(
        series=series,
        optimal_vs_even_avg_percent=sum(ove) / len(ove),
        optimal_vs_bottom_up_avg_percent=sum(ovb) / len(ovb),
    )
