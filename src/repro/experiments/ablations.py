"""Ablation studies for the design choices DESIGN.md calls out.

Three questions the paper raises but does not isolate:

1. **Selection cost model** — the paper's Eq. 23 treats the set point as
   fixed while varying the supply temperature, which overstates the
   marginal value of warm air on a real (here: simulated) unit whose set
   point must move together with the supply temperature.  How much energy
   does the "actuated" cost model (Eq. 10 composed with the fitted
   actuation map) recover, and how close is either to an oracle that
   evaluates the per-k champions on ground truth?
2. **Spatial diversity** — the paper expects "savings in larger systems
   will be more pronounced, as larger spatial diversity gives rise to more
   opportunities".  We sweep the rack's top-to-bottom vent-fraction spread
   and measure the optimal-vs-bottom-up gap.
3. **Knob isolation** — how much of the total saving comes from AC
   control alone vs consolidation alone (comparing the scenario pairs
   that isolate each knob).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.analysis.energy import average_power
from repro.core.optimizer import JointOptimizer
from repro.core.policies import scenario_by_number
from repro.experiments.common import (
    DEFAULT_LOAD_FRACTIONS,
    EvaluationContext,
    default_context,
    numbered_sweeps,
    sweep_scenario,
)
from repro.testbed.rack import TestbedConfig


@dataclass(frozen=True)
class CostModelAblation:
    """Average ground-truth power of each selection cost model."""

    paper_avg_watts: float
    actuated_avg_watts: float
    oracle_avg_watts: float

    def table(self) -> str:
        """Text rendering of the cost-model comparison."""
        return "\n".join(
            [
                "Cost-model ablation (average total power, #8-style policy):",
                f"  paper Eq. 23 selection:    {self.paper_avg_watts:9.1f} W",
                f"  actuated-map selection:    {self.actuated_avg_watts:9.1f} W",
                f"  ground-truth oracle:       {self.oracle_avg_watts:9.1f} W",
            ]
        )


def run_cost_model_ablation(
    context: EvaluationContext | None = None,
    load_fractions: Sequence[float] = DEFAULT_LOAD_FRACTIONS,
) -> CostModelAblation:
    """Compare the paper's selection cost model against the actuated
    variant and a ground-truth oracle (per-k champions evaluated on the
    simulator)."""
    ctx = context or default_context()
    model = ctx.model
    testbed = ctx.testbed
    capacity = testbed.total_capacity

    def evaluate_with(optimizer: JointOptimizer) -> float:
        powers = []
        scenario = scenario_by_number(8)
        for fraction in load_fractions:
            decision = scenario.decide(
                model, fraction * capacity, optimizer=optimizer
            )
            powers.append(testbed.evaluate(decision).total_power)
        return float(np.mean(powers))

    paper_avg = evaluate_with(JointOptimizer(model, cost_model="paper"))
    actuated_avg = evaluate_with(
        JointOptimizer(model, cost_model="actuated")
    )

    # Oracle: for each load, evaluate every per-k Dinkelbach champion on
    # the true simulator and keep the cheapest feasible one.
    from repro.core.closed_form import solve_closed_form
    from repro.core.select import select_subset

    oracle_powers = []
    for fraction in load_fractions:
        load = fraction * capacity
        best = None
        for k in range(1, model.node_count + 1):
            subset, _ = select_subset(model.ab_pairs(), k, load)
            if sum(model.capacities[i] for i in subset) + 1e-9 < load:
                continue
            try:
                solve_closed_form(model, subset, load)
            except Exception:
                continue
            record = testbed.evaluate(
                scenario_by_number(8)
                .decide(
                    model,
                    load,
                    optimizer=_FixedSetOptimizer(model, subset),
                )
            )
            if not record.temperature_violated and (
                best is None or record.total_power < best
            ):
                best = record.total_power
        oracle_powers.append(best)
    return CostModelAblation(
        paper_avg_watts=paper_avg,
        actuated_avg_watts=actuated_avg,
        oracle_avg_watts=float(np.mean(oracle_powers)),
    )


class _FixedSetOptimizer(JointOptimizer):
    """JointOptimizer that always selects a predetermined ON set."""

    def __init__(self, model, subset):
        super().__init__(model)
        self._subset = list(subset)

    def select_on_set(self, total_load, exclude=None):
        return list(self._subset)


@dataclass(frozen=True)
class DiversityPoint:
    """Optimal-vs-bottom-up savings at one vent-fraction spread."""

    top_fraction: float
    spread: float
    avg_savings_percent: float


def run_diversity_sweep(
    top_fractions: Sequence[float] = (0.90, 0.75, 0.55, 0.40),
    seed: int = 2012,
    load_fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8),
) -> list[DiversityPoint]:
    """Sweep rack thermal diversity; larger spread should widen the gap.

    Each point rebuilds and re-profiles a testbed whose top-of-rack vent
    fraction differs (the bottom stays at 0.95), then measures the
    average #8-vs-#7 savings.
    """
    points = []
    for top in top_fractions:
        config = TestbedConfig(supply_fraction_top=top)
        ctx = default_context(seed=seed, config=config)
        sweeps = numbered_sweeps(ctx, [7, 8], load_fractions)
        labels = list(sweeps)
        bottom, optimal = sweeps[labels[0]], sweeps[labels[1]]
        savings = [
            100.0 * (b.total_power - o.total_power) / b.total_power
            for b, o in zip(bottom, optimal)
        ]
        points.append(
            DiversityPoint(
                top_fraction=top,
                spread=0.95 - top,
                avg_savings_percent=float(np.mean(savings)),
            )
        )
    return points


@dataclass(frozen=True)
class NoisePoint:
    """Outcome of the full pipeline at one sensor-noise level."""

    noise_scale: float
    avg_savings_percent: float
    violations: int
    worst_overshoot_kelvin: float


def run_noise_robustness(
    scales: Sequence[float] = (0.0, 1.0, 3.0, 6.0),
    seed: int = 2012,
    load_fractions: Sequence[float] = (0.2, 0.4, 0.6, 0.8),
) -> list[NoisePoint]:
    """Profiling-robustness ablation: scale every sensor's noise.

    For each noise level the testbed is rebuilt and re-profiled from
    scratch, then the #8-vs-#7 comparison runs on ground truth.  Shows
    how much of the savings survives sloppy profiling, and whether the
    1 K guard band keeps the temperature constraint safe.
    """
    from repro.core.optimizer import JointOptimizer
    from repro.profiling.campaign import CampaignConfig
    from repro.testbed.rack import build_testbed

    points = []
    for scale in scales:
        testbed = build_testbed(seed=seed)
        profiling = testbed.profile(
            CampaignConfig(sensor_noise_scale=float(scale))
        )
        model = profiling.system_model
        optimizer = JointOptimizer(model)
        savings = []
        violations = 0
        overshoot = 0.0
        for fraction in load_fractions:
            load = fraction * testbed.total_capacity
            opt = testbed.evaluate(
                scenario_by_number(8).decide(model, load, optimizer=optimizer)
            )
            base = testbed.evaluate(
                scenario_by_number(7).decide(model, load, optimizer=optimizer)
            )
            savings.append(
                100.0
                * (base.total_power - opt.total_power)
                / base.total_power
            )
            for rec in (opt, base):
                if rec.temperature_violated:
                    violations += 1
                overshoot = max(
                    overshoot, rec.max_t_cpu - testbed.config.t_max
                )
        points.append(
            NoisePoint(
                noise_scale=float(scale),
                avg_savings_percent=float(np.mean(savings)),
                violations=violations,
                worst_overshoot_kelvin=float(overshoot),
            )
        )
    return points


@dataclass(frozen=True)
class KnobIsolation:
    """Average savings attributable to each knob in isolation."""

    ac_control_only_percent: float
    consolidation_only_percent: float
    both_percent: float

    def table(self) -> str:
        """Text rendering of the knob-isolation ablation."""
        return "\n".join(
            [
                "Knob isolation (average savings vs #2, bottom-up/no knobs):",
                f"  AC control only (#5):      {self.ac_control_only_percent:5.1f}%",
                f"  consolidation only (#3):   {self.consolidation_only_percent:5.1f}%",
                f"  both + optimal (#8):       {self.both_percent:5.1f}%",
            ]
        )


def run_knob_isolation(
    context: EvaluationContext | None = None,
) -> KnobIsolation:
    """Decompose the total saving into per-knob contributions."""
    ctx = context or default_context()
    sweeps = numbered_sweeps(ctx, [2, 3, 5, 8])
    labels = list(sweeps)
    base = average_power(sweeps[labels[0]])
    consol = average_power(sweeps[labels[1]])
    ac = average_power(sweeps[labels[2]])
    both = average_power(sweeps[labels[3]])
    return KnobIsolation(
        ac_control_only_percent=100.0 * (base - ac) / base,
        consolidation_only_percent=100.0 * (base - consol) / base,
        both_percent=100.0 * (base - both) / base,
    )
