"""Fig. 2 reproduction: measured vs predicted power consumption.

The paper steps one machine through 0/10/25/50/75% load (15 minutes per
level), measures power at 1 Hz with a Watts-up-Pro, smooths with a
low-pass filter, fits Eq. 9 and overlays the prediction — showing "the
model is quite accurate".  This driver regenerates the same trace from
the simulated testbed and reports the fit quality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.experiments.common import EvaluationContext, default_context
from repro.profiling.campaign import PowerTrace


@dataclass(frozen=True)
class Fig2Result:
    """Regenerated Fig. 2 data and accuracy numbers."""

    trace: PowerTrace
    w1: float
    w2: float
    rmse: float
    r_squared: float
    mean_relative_error_percent: float

    def table(self, points: int = 12) -> str:
        """Down-sampled text rendering of the measured/predicted trace."""
        idx = np.linspace(0, len(self.trace.time) - 1, points).astype(int)
        lines = [
            "Fig. 2: measured vs predicted power (one machine)",
            f"  fitted P = {self.w1:.3f} * L + {self.w2:.2f}   "
            f"(R^2 = {self.r_squared:.4f}, RMSE = {self.rmse:.2f} W)",
            f"  {'t(s)':>7} {'load':>7} {'meas(W)':>8} {'pred(W)':>8}",
        ]
        for i in idx:
            lines.append(
                f"  {self.trace.time[i]:>7.0f} {self.trace.load[i]:>7.2f} "
                f"{self.trace.filtered[i]:>8.2f} {self.trace.predicted[i]:>8.2f}"
            )
        return "\n".join(lines)


def run_fig2(context: EvaluationContext | None = None) -> Fig2Result:
    """Regenerate Fig. 2 from the (cached) default profiling campaign."""
    ctx = context or default_context()
    trace = ctx.profiling.power_trace
    report = ctx.profiling.power_report
    rel = np.abs(trace.predicted - trace.true_power) / np.maximum(
        trace.true_power, 1.0
    )
    return Fig2Result(
        trace=trace,
        w1=ctx.model.power.w1,
        w2=ctx.model.power.w2,
        rmse=report.rmse,
        r_squared=report.r_squared,
        mean_relative_error_percent=float(100.0 * np.mean(rel)),
    )
