"""Fig. 3 reproduction: predicted vs measured stable CPU temperature.

The paper sweeps one server across loads at several cooling set points,
waits ~200 s for the CPU temperature to stabilize, and shows the linear
model of Eq. 8 predicting the stable temperature "with a few percent
error".  This driver regenerates the sweep for a chosen machine and
reports the prediction error.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError
from repro.experiments.common import EvaluationContext, default_context
from repro.profiling.campaign import ThermalTrace


@dataclass(frozen=True)
class Fig3Result:
    """Regenerated Fig. 3 data and accuracy numbers for one machine."""

    trace: ThermalTrace
    alpha: float
    beta: float
    gamma: float
    rmse_kelvin: float
    max_error_kelvin: float
    mean_relative_error_percent: float

    def table(self) -> str:
        """Text rendering of the measured/predicted stable temperatures."""
        lines = [
            f"Fig. 3: stable CPU temperature, machine {self.trace.machine}",
            f"  fitted T_cpu = {self.alpha:.3f}*T_ac + {self.beta:.4f}*P "
            f"+ {self.gamma:.2f}   (RMSE = {self.rmse_kelvin:.2f} K)",
            f"  {'T_ac(K)':>8} {'P(W)':>7} {'meas(K)':>8} {'pred(K)':>8}",
        ]
        for i in range(len(self.trace.t_ac)):
            lines.append(
                f"  {self.trace.t_ac[i]:>8.2f} {self.trace.power[i]:>7.1f} "
                f"{self.trace.measured_t_cpu[i]:>8.2f} "
                f"{self.trace.predicted_t_cpu[i]:>8.2f}"
            )
        return "\n".join(lines)


def run_fig3(
    context: EvaluationContext | None = None, machine: int = 10
) -> Fig3Result:
    """Regenerate Fig. 3 for one machine of the profiled rack."""
    ctx = context or default_context()
    traces = ctx.profiling.thermal_traces
    if not 0 <= machine < len(traces):
        raise ConfigurationError(
            f"machine must be in [0, {len(traces) - 1}], got {machine}"
        )
    trace = traces[machine]
    node = ctx.model.nodes[machine]
    err = trace.predicted_t_cpu - trace.measured_t_cpu
    rel = np.abs(err) / trace.measured_t_cpu
    return Fig3Result(
        trace=trace,
        alpha=node.alpha,
        beta=node.beta,
        gamma=node.gamma,
        rmse_kelvin=float(np.sqrt(np.mean(err**2))),
        max_error_kelvin=float(np.max(np.abs(err))),
        mean_relative_error_percent=float(100.0 * np.mean(rel)),
    )
