"""Experiment drivers: one module per paper table/figure.

Each driver builds (or reuses) the default evaluation context — the
simulated 20-machine testbed, profiled exactly as in Section IV-A — and
returns the figure's data as structured series.  The benchmark harness in
``benchmarks/`` calls these drivers and prints the regenerated rows; the
test suite asserts the series *shapes* the paper claims.
"""

from repro.experiments.common import (
    EvaluationContext,
    default_context,
    scenario_sweeps,
    sweep_scenario,
)

__all__ = [
    "EvaluationContext",
    "default_context",
    "sweep_scenario",
    "scenario_sweeps",
]
