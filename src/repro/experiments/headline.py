"""Headline-claims reproduction.

The paper's summary numbers:

- "total savings in excess of 5% are possible, reaching as far as 18%
  ... over these baselines";
- "our solution saves 7% of the total energy consumption on average over
  all load scenarios and is able to save up to 18% in the best case
  compared to the next best baseline, method #7";
- the temperature constraint is never violated and throughput is
  unaffected.

This driver computes exactly those aggregates from the Fig. 6 sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.energy import SavingsSummary, savings_summary
from repro.experiments.common import (
    EvaluationContext,
    all_paper_sweeps,
    default_context,
)


@dataclass(frozen=True)
class HeadlineResult:
    """The paper's summary numbers, regenerated."""

    vs_next_best: SavingsSummary
    vs_best_baseline_avg_percent: float
    vs_best_baseline_max_percent: float
    any_temperature_violation: bool
    optimal_wins_everywhere: bool

    def table(self) -> str:
        """Text rendering of the headline comparison."""
        return "\n".join(
            [
                "Headline claims (paper: >=5% possible, up to 18%; 7% avg vs #7)",
                f"  {self.vs_next_best}",
                "  vs the per-load best of all other methods: "
                f"avg {self.vs_best_baseline_avg_percent:.1f}%, "
                f"max {self.vs_best_baseline_max_percent:.1f}%",
                f"  temperature constraint violated: "
                f"{self.any_temperature_violation}",
                f"  #8 is the cheapest method at every load: "
                f"{self.optimal_wins_everywhere}",
            ]
        )


def run_headline(context: EvaluationContext | None = None) -> HeadlineResult:
    """Regenerate the paper's headline savings numbers."""
    ctx = context or default_context()
    sweeps = all_paper_sweeps(ctx)
    labels = list(sweeps)
    optimal = sweeps[labels[7]]
    next_best = sweeps[labels[6]]  # method #7, cool job allocation
    others = [sweeps[label] for label in labels[:7]]
    best_other = [
        min(recs[i].total_power for recs in others)
        for i in range(len(optimal))
    ]
    savings = [
        100.0 * (b - o.total_power) / b
        for b, o in zip(best_other, optimal)
    ]
    violations = any(
        r.temperature_violated for recs in sweeps.values() for r in recs
    )
    wins = all(
        o.total_power <= b + 1e-6 for b, o in zip(best_other, optimal)
    )
    return HeadlineResult(
        vs_next_best=savings_summary(next_best, optimal),
        vs_best_baseline_avg_percent=float(np.mean(savings)),
        vs_best_baseline_max_percent=float(np.max(savings)),
        any_temperature_violation=violations,
        optimal_wins_everywhere=wins,
    )
