"""Seasonal weather sweep: siting the machine room under a real sky.

The paper's Eq. 10 prices heat removal at one lumped constant ``c``
fitted on the testbed's air-side unit.  A real facility sits behind a
chiller plant whose electrical cost per removed joule moves with the
outdoor wet-bulb (and collapses entirely when the economizer engages).
This experiment re-runs the joint optimization across a full seeded
year at several climate presets, re-linearizing ``c`` at each operating
point (:meth:`~repro.thermal.plant.ChillerPlant.linearized_model`), and
reports the facility-level scoreboard: PUE, economizer hours, mean COP,
water use (WUE) — plus a heat-wave stress day per site.

Artifact contract: :func:`run_weather_study` builds the
``cooling_plant.json`` document (kind ``cooling-plant``), validated by
:func:`repro.obs.export.validate_cooling_plant` and gated by
``repro bench-check`` against the committed baseline.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Sequence

from repro import obs, units
from repro.analysis.series import format_table
from repro.core.optimizer import JointOptimizer
from repro.core.policies import PolicyDecision
from repro.errors import ConfigurationError
from repro.thermal.plant import ChillerPlant, default_plant
from repro.workload.weather import (
    DAY,
    SITES,
    WeatherTrace,
    heat_wave,
    site_weather,
)

#: Wet-bulb quantization for memoized re-linearization, K.  Within one
#: step the optimizer's answer is treated as constant; the plant's
#: electrical price is still evaluated at the exact wet-bulb.
WETBULB_QUANTUM = 0.5

#: Exactness budget for the tangent linearization at its own operating
#: point — machine epsilon territory; anything larger means the Eq. 10
#: seam leaks (see ``tests/test_cooling_plant.py``).
LINEARIZATION_GAP_TOLERANCE = 1e-6


@dataclass(frozen=True)
class SiteYear:
    """One climate preset's year under the weather-aware optimizer."""

    site: str
    description: str
    buckets: int
    bucket_seconds: float
    it_energy_joules: float
    cooling_energy_joules: float
    water_liters: Optional[float]
    economizer_fraction: float
    mode_switches: int
    mean_cop: float
    linearization_gap: float

    @property
    def total_energy_joules(self) -> float:
        return self.it_energy_joules + self.cooling_energy_joules

    @property
    def pue(self) -> float:
        """Year-long power usage effectiveness (total over IT)."""
        return self.total_energy_joules / self.it_energy_joules

    @property
    def wue_l_per_kwh(self) -> Optional[float]:
        """Tower liters per IT kWh, ``None`` without a tower."""
        if self.water_liters is None:
            return None
        return self.water_liters / (self.it_energy_joules / 3.6e6)


@dataclass(frozen=True)
class HeatWaveDay:
    """A site's worst summer day, with and without the wave on top."""

    site: str
    amplitude_k: float
    baseline_pue: float
    wave_pue: float
    baseline_peak_w: float
    wave_peak_w: float

    @property
    def pue_penalty(self) -> float:
        return self.wave_pue - self.baseline_pue


@dataclass(frozen=True)
class WeatherStudyResult:
    """The whole multi-site study plus its artifact document."""

    sites: tuple[SiteYear, ...]
    heat_waves: tuple[HeatWaveDay, ...]
    seed: int
    machines: int
    load_fraction: float
    quick: bool

    def document(self) -> dict:
        """The ``cooling_plant.json`` document (kind ``cooling-plant``)."""
        entries = [
            {
                "site": s.site,
                "description": s.description,
                "buckets": s.buckets,
                "bucket_seconds": s.bucket_seconds,
                "it_energy_joules": s.it_energy_joules,
                "cooling_energy_joules": s.cooling_energy_joules,
                "total_energy_joules": s.total_energy_joules,
                "pue": s.pue,
                "water_liters": s.water_liters,
                "wue_l_per_kwh": s.wue_l_per_kwh,
                "economizer_fraction": s.economizer_fraction,
                "mode_switches": s.mode_switches,
                "mean_cop": s.mean_cop,
                "linearization_gap": s.linearization_gap,
            }
            for s in self.sites
        ]
        waves = [
            {
                "site": w.site,
                "amplitude_k": w.amplitude_k,
                "baseline_pue": w.baseline_pue,
                "wave_pue": w.wave_pue,
                "pue_penalty": w.pue_penalty,
                "baseline_peak_w": w.baseline_peak_w,
                "wave_peak_w": w.wave_peak_w,
            }
            for w in self.heat_waves
        ]
        return {
            "schema": 1,
            "kind": "cooling-plant",
            "seed": self.seed,
            "machines": self.machines,
            "load_fraction": self.load_fraction,
            "quick": self.quick,
            "entries": entries,
            "heat_wave": waves,
        }

    def table(self) -> str:
        """Human-readable site-comparison scoreboard."""
        rows = []
        waves = {w.site: w for w in self.heat_waves}
        for s in self.sites:
            wave = waves.get(s.site)
            rows.append(
                [
                    s.site,
                    f"{s.pue:.3f}",
                    f"{100.0 * s.economizer_fraction:.1f}",
                    f"{s.mean_cop:.2f}",
                    "-" if s.wue_l_per_kwh is None
                    else f"{s.wue_l_per_kwh:.2f}",
                    f"{s.total_energy_joules / 3.6e9:.1f}",
                    "-" if wave is None else f"+{wave.pue_penalty:.3f}",
                ]
            )
        return format_table(
            ["site", "PUE", "econ %", "mean COP", "WUE L/kWh",
             "MWh/yr", "heat-wave ΔPUE"],
            rows,
            title="Seasonal weather study: the same rack, four skies "
            "(Eq. 10 re-linearized per operating point)",
        )


def _operating_point(context, load_fraction: float) -> float:
    """Expected coil heat at the commanded load, W (Eq. 9 aggregate)."""
    model = context.model
    testbed = context.testbed
    total_load = load_fraction * testbed.total_capacity
    n = testbed.n_machines
    per_machine = testbed.total_capacity / n
    n_est = max(1, math.ceil(total_load / max(per_machine, 1e-9)))
    return max(model.power.w1 * total_load + model.power.w2 * n_est, 0.0)


class _PlantOptimizer:
    """Memoized (mode, quantized wet-bulb) -> solved operating point.

    Re-deriving Eq. 10's ``c`` at every bucket would mean thousands of
    optimizer builds for one year; within half a kelvin of wet-bulb the
    linearized model — and hence the whole decision — is unchanged, so
    the steady state is solved once per quantized key and only the
    plant's electrical pricing runs at the exact wet-bulb.
    """

    def __init__(self, context, plant: ChillerPlant, q_ref: float,
                 load_fraction: float) -> None:
        self.context = context
        self.plant = plant
        self.q_ref = q_ref
        self.total_load = load_fraction * context.testbed.total_capacity
        self._cache: dict = {}
        self.worst_gap = 0.0

    def solve(self, mode: str, t_wetbulb: float):
        key = (mode, round(t_wetbulb / WETBULB_QUANTUM))
        hit = self._cache.get(key)
        if hit is not None:
            return hit
        wb_q = key[1] * WETBULB_QUANTUM
        model2 = self.plant.linearized_model(
            self.context.model, wb_q, self.q_ref, mode=mode
        )
        result = JointOptimizer(model2).solve(self.total_load)
        decision = PolicyDecision(
            scenario=f"weather[{mode},{wb_q:.1f}K]",
            loads=result.loads,
            on_ids=result.on_ids,
            t_sp=result.t_sp,
            t_ac_target=result.t_ac,
        )
        record = self.context.testbed.evaluate(decision)
        # Exactness audit of the tangent at its own operating point:
        # the re-linearized CoolerModel must reproduce the plant's
        # watts at q_ref to machine precision (the Eq. 10 seam
        # contract, crossing linearize()'s c_f_ac/idle composition and
        # the delta-T round-trip).
        base = self.context.model.cooler
        lin = self.plant.linearize(base, wb_q, self.q_ref, mode=mode)
        dt0 = self.q_ref / (
            self.plant.cooling_unit.supply_flow * units.C_AIR
        )
        t_ac = 0.5 * (base.t_ac_min + base.t_ac_max)
        linear = lin.cooling_power(t_ac + dt0, t_ac) - base.idle_power
        exact = self.plant.chiller_power(self.q_ref, wb_q, mode=mode)
        gap = abs(linear - exact) / max(abs(exact), 1.0)
        self.worst_gap = max(self.worst_gap, gap)
        self._cache[key] = record
        return record


def _heat_removal(testbed, record) -> float:
    """Invert the air-side electrical draw back to coil heat, W."""
    cooler = testbed.cooler
    return max(
        0.0, (record.cooling_power - cooler.fan_power) * cooler.efficiency
    )


def _sweep(
    context,
    plant: ChillerPlant,
    trace: WeatherTrace,
    solver: _PlantOptimizer,
    dt: float,
    t0: float = 0.0,
    duration: Optional[float] = None,
):
    """March the plant through ``trace`` in ``dt`` buckets.

    Returns the accumulators ``(it_joules, cooling_joules, water_liters,
    economizer_buckets, mode_switches, sum_q, sum_chiller_power,
    buckets, peak_total_w)``.
    """
    testbed = context.testbed
    it_j = 0.0
    cool_j = 0.0
    water = 0.0 if plant.tower is not None else None
    econ = 0
    switches = 0
    sum_q = 0.0
    sum_chiller = 0.0
    peak = 0.0
    buckets = 0
    t = t0
    end = t0 + (trace.duration if duration is None else duration)
    while t < end - 1e-9:
        wb = trace.wetbulb_at(t)
        prev_mode = plant.mode
        plant.advance_mode(wb)
        if plant.mode != prev_mode:
            switches += 1
        if plant.mode == "economizer":
            econ += 1
        record = solver.solve(plant.mode, wb)
        q = _heat_removal(testbed, record)
        chiller_w = plant.chiller_power(q, wb)
        cooling_w = chiller_w + testbed.cooler.fan_power
        it_j += record.server_power * dt
        cool_j += cooling_w * dt
        sum_q += q
        sum_chiller += chiller_w
        peak = max(peak, record.server_power + cooling_w)
        rate = plant.water_rate(q, wb)
        if rate is not None and water is not None:
            water += rate * dt
        buckets += 1
        t += dt
    return it_j, cool_j, water, econ, switches, sum_q, sum_chiller, \
        buckets, peak


def run_weather_study(
    seed: int = 2012,
    n_machines: int = 20,
    *,
    quick: bool = False,
    sites: Optional[Sequence[str]] = None,
    load_fraction: float = 0.6,
    heat_wave_amplitude: float = 6.0,
    context=None,
) -> WeatherStudyResult:
    """Run the multi-site seasonal sweep; pure in ``(seed, knobs)``.

    ``quick`` coarsens the bucket width (24 h instead of 3 h) without
    changing the year's span or the workload shape, so quick and full
    artifacts stay bench-check comparable under the same
    ``(machines, load_fraction)`` context.
    """
    if not 0.0 < load_fraction <= 1.0:
        raise ConfigurationError(
            f"load_fraction must be in (0, 1], got {load_fraction}"
        )
    if context is None:
        from repro.experiments.common import default_context

        context = default_context(seed=seed, n_machines=n_machines)
    testbed = context.testbed
    names = list(sites) if sites is not None else list(SITES)
    unknown = [name for name in names if name not in SITES]
    if unknown:
        raise ConfigurationError(
            f"unknown weather sites {unknown}; have {sorted(SITES)}"
        )
    dt = DAY if quick else 3.0 * 3600.0
    q_ref = _operating_point(context, load_fraction)
    site_rows: list[SiteYear] = []
    wave_rows: list[HeatWaveDay] = []
    with obs.timed("experiments/weather_study"):
        for name in names:
            trace = site_weather(name, seed=seed)
            plant = default_plant(testbed.fresh_cooler())
            solver = _PlantOptimizer(
                context, plant, q_ref, load_fraction
            )
            (it_j, cool_j, water, econ, switches, sum_q, sum_chiller,
             buckets, _peak) = _sweep(context, plant, trace, solver, dt)
            site_rows.append(
                SiteYear(
                    site=name,
                    description=SITES[name].description,
                    buckets=buckets,
                    bucket_seconds=dt,
                    it_energy_joules=it_j,
                    cooling_energy_joules=cool_j,
                    water_liters=water,
                    economizer_fraction=econ / max(buckets, 1),
                    mode_switches=switches,
                    mean_cop=sum_q / max(sum_chiller, 1e-9),
                    linearization_gap=solver.worst_gap,
                )
            )
            wave_rows.append(
                _heat_wave_day(
                    context, trace, solver, name,
                    amplitude=heat_wave_amplitude,
                )
            )
        obs.set_span_attributes(
            sites=len(site_rows), buckets_per_site=buckets
        )
    return WeatherStudyResult(
        sites=tuple(site_rows),
        heat_waves=tuple(wave_rows),
        seed=seed,
        machines=testbed.n_machines,
        load_fraction=load_fraction,
        quick=quick,
    )


def _heat_wave_day(
    context,
    trace: WeatherTrace,
    solver: _PlantOptimizer,
    site: str,
    *,
    amplitude: float,
) -> HeatWaveDay:
    """Stress one midsummer day with a trapezoidal wet-bulb excursion.

    Midsummer for the seeded :func:`site_weather` presets sits at the
    ``warmest_day`` fraction of the year (0.55); the wave rides a full
    day centred there.  Both runs use hourly buckets and fresh plant
    mode state, so the comparison isolates the sky, not hysteresis
    history.
    """
    onset = 0.55 * trace.duration - 0.5 * DAY
    wave = heat_wave(
        trace, onset=onset, length=DAY, amplitude=amplitude
    )
    dt = 3600.0
    rows = []
    for sky in (trace, wave):
        plant = default_plant(context.testbed.fresh_cooler())
        it_j, cool_j, _w, _e, _s, _q, _c, _b, peak = _sweep(
            context, plant, sky, solver, dt, t0=onset, duration=DAY
        )
        rows.append(((it_j + cool_j) / it_j, peak))
    (base_pue, base_peak), (wave_pue, wave_peak) = rows
    return HeatWaveDay(
        site=site,
        amplitude_k=amplitude,
        baseline_pue=base_pue,
        wave_pue=wave_pue,
        baseline_peak_w=base_peak,
        wave_peak_w=wave_peak,
    )
