"""Multi-rack study: machine-level vs rack-level granularity.

Related work the paper contrasts itself with formulates thermal-aware
allocation at *rack* granularity, which "would stop at trivially
assigning all load to the same rack when only one rack is present" and,
with several racks, cannot exploit within-rack diversity.  This study
builds a three-rack room, implements the rack-granular baseline (fill
the coolest rack evenly, then the next, powering whole racks), and
measures what machine-level optimization (the paper's method) wins on
top of it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.series import format_table
from repro.core.model import SystemModel
from repro.core.optimizer import JointOptimizer
from repro.core.policies import PolicyDecision, scenario_by_number
from repro.errors import InfeasibleError
from repro.testbed.multirack import MultiRackConfig, build_multirack_testbed


def rack_coolness_order(
    model: SystemModel, config: MultiRackConfig
) -> list[int]:
    """Racks sorted coolest-first by mean fitted idle CPU temperature."""
    t_ref = 0.5 * (model.cooler.t_ac_min + model.cooler.t_ac_max)
    idle = model.power.w2

    def rack_temp(rack: int) -> float:
        members = config.rack_members(rack)
        return float(
            np.mean(
                [
                    model.nodes[i].cpu_temperature(t_ref, idle)
                    for i in members
                ]
            )
        )

    return sorted(range(config.n_racks), key=lambda r: (rack_temp(r), r))


def rack_granular_decision(
    model: SystemModel,
    config: MultiRackConfig,
    total_load: float,
) -> PolicyDecision:
    """The rack-level baseline: whole racks on, even split inside.

    Racks are powered coolest-first until capacity covers the load; each
    powered rack's share is spread evenly over its machines (rack-level
    schedulers do not differentiate within a rack).  The set point is
    then pushed as high as the allocation allows (AC control), like the
    stronger baselines in the paper's matrix.
    """
    order = rack_coolness_order(model, config)
    loads = np.zeros(model.node_count)
    on_ids: list[int] = []
    remaining = total_load
    for rack in order:
        if remaining <= 1e-12:
            break
        members = config.rack_members(rack)
        on_ids.extend(members)
        rack_capacity = sum(model.capacities[i] for i in members)
        take = min(rack_capacity, remaining)
        share = take / len(members)
        for i in members:
            loads[i] = share
        remaining -= take
    if remaining > 1e-9:
        raise InfeasibleError(
            f"load {total_load:.1f} exceeds room capacity"
        )
    t_ac = model.cooler.clamp_t_ac(
        model.max_feasible_t_ac(loads, on_ids)
    )
    total_power = sum(model.power.power(float(loads[i])) for i in on_ids)
    return PolicyDecision(
        loads=loads,
        on_ids=tuple(sorted(on_ids)),
        t_sp=model.cooler.set_point_for(t_ac, total_power),
        t_ac_target=t_ac,
        scenario="rack-granular+AC+consolidation",
    )


@dataclass(frozen=True)
class MultiRackResult:
    """The regenerated rack-vs-machine granularity comparison."""

    load_percent: tuple[float, ...]
    rack_granular_watts: tuple[float, ...]
    bottom_up_watts: tuple[float, ...]
    optimal_watts: tuple[float, ...]

    def savings_vs_rack_granular(self) -> list[float]:
        """Percent saved by the machine-level optimum at each load."""
        return [
            100.0 * (r - o) / r
            for r, o in zip(self.rack_granular_watts, self.optimal_watts)
        ]

    def table(self) -> str:
        """Text rendering of the study."""
        rows = []
        for i, x in enumerate(self.load_percent):
            rows.append(
                [
                    f"{x:.0f}",
                    f"{self.rack_granular_watts[i]:.1f}",
                    f"{self.bottom_up_watts[i]:.1f}",
                    f"{self.optimal_watts[i]:.1f}",
                    f"{self.savings_vs_rack_granular()[i]:.1f}",
                ]
            )
        return format_table(
            [
                "load %",
                "rack-granular (W)",
                "bottom-up #7 (W)",
                "optimal #8 (W)",
                "#8 vs rack (%)",
            ],
            rows,
            title="Multi-rack study: allocation granularity "
            "(3 racks x 10 machines)",
        )


def run_multirack_study(
    config: MultiRackConfig | None = None,
    seed: int = 2012,
    load_fractions: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
) -> MultiRackResult:
    """Profile a multi-rack room and compare allocation granularities."""
    cfg = config or MultiRackConfig()
    testbed = build_multirack_testbed(cfg, seed=seed)
    model = testbed.profile().system_model
    optimizer = JointOptimizer(model)
    capacity = testbed.total_capacity
    rack_w, bottom_w, optimal_w = [], [], []
    for fraction in load_fractions:
        load = fraction * capacity
        rack_w.append(
            testbed.evaluate(
                rack_granular_decision(model, cfg, load)
            ).total_power
        )
        bottom_w.append(
            testbed.evaluate(
                scenario_by_number(7).decide(model, load, optimizer=optimizer)
            ).total_power
        )
        optimal_w.append(
            testbed.evaluate(
                scenario_by_number(8).decide(model, load, optimizer=optimizer)
            ).total_power
        )
    return MultiRackResult(
        load_percent=tuple(100.0 * f for f in load_fractions),
        rack_granular_watts=tuple(rack_w),
        bottom_up_watts=tuple(bottom_w),
        optimal_watts=tuple(optimal_w),
    )
