"""Section III-B algorithm study: optimality and scaling.

Regenerates the paper's algorithmic claims as measurements:

- the footnote-1 heuristics are suboptimal on the paper's own
  counterexample (and on random instances);
- the event-based index (Algorithms 1-2) and the Dinkelbach scan agree
  with brute force on every instance small enough to enumerate;
- pre-processing grows ~n^3 log n while the online query stays
  logarithmic (microseconds), matching the complexity table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.obs import timed

from repro.core.consolidation import ConsolidationIndex
from repro.core.heuristics import (
    PAPER_COUNTEREXAMPLE,
    greedy_heuristic,
    ratio_sort_heuristic,
)
from repro.core.select import (
    Pair,
    brute_force_subset,
    optimal_subset,
    ratio,
    select_subset,
)


def random_instance(
    rng: np.random.Generator, n: int
) -> list[Pair]:
    """A random consolidation instance with positive ``a`` and ``b``."""
    a = rng.uniform(50.0, 500.0, size=n)
    b = rng.uniform(0.5, 5.0, size=n)
    return list(zip(a.tolist(), b.tolist()))


@dataclass(frozen=True)
class HeuristicGap:
    """How far a heuristic lands from the exact ratio optimum."""

    name: str
    instances: int
    suboptimal_instances: int
    worst_relative_gap_percent: float


def heuristic_study(
    rng: np.random.Generator,
    instances: int = 50,
    n: int = 8,
) -> list[HeuristicGap]:
    """Quantify the footnote-1 heuristics' optimality gap on random
    instances (k and L randomized per instance)."""
    stats = {
        "ratio-sort": [0, 0.0],
        "greedy": [0, 0.0],
    }
    for _ in range(instances):
        pairs = random_instance(rng, n)
        k = int(rng.integers(2, n))
        load = float(rng.uniform(0.0, 0.5 * sum(a for a, _ in pairs)))
        _, t_opt = select_subset(pairs, k, load)
        for name, subset in (
            ("ratio-sort", ratio_sort_heuristic(pairs, k)),
            ("greedy", greedy_heuristic(pairs, k, load)),
        ):
            t_h = ratio(pairs, subset, load)
            if t_h < t_opt - 1e-9:
                stats[name][0] += 1
                gap = 100.0 * (t_opt - t_h) / max(abs(t_opt), 1e-12)
                stats[name][1] = max(stats[name][1], gap)
    return [
        HeuristicGap(
            name=name,
            instances=instances,
            suboptimal_instances=int(count),
            worst_relative_gap_percent=float(worst),
        )
        for name, (count, worst) in stats.items()
    ]


@dataclass(frozen=True)
class AgreementResult:
    """Cross-validation of the three exact solvers."""

    instances: int
    index_matches_brute: int
    exact_matches_brute: int


def agreement_study(
    rng: np.random.Generator, instances: int = 25, n: int = 9
) -> AgreementResult:
    """Check Algorithms 1-2 and the Dinkelbach scan against brute force.

    Uses the full consolidation objective (Eq. 23 with random cost
    coefficients); "matches" means the chosen subset has the same
    predicted power within tolerance (distinct subsets can tie).
    """
    idx_ok = 0
    exact_ok = 0
    for _ in range(instances):
        pairs = random_instance(rng, n)
        w2 = float(rng.uniform(10.0, 80.0))
        rho = float(rng.uniform(50.0, 500.0))
        load = float(rng.uniform(0.1, 0.7) * sum(a for a, _ in pairs))
        brute, brute_power = brute_force_subset(
            pairs, load, w2=w2, rho=rho, theta=0.0
        )
        index = ConsolidationIndex(pairs, w2=w2, rho=rho)
        chosen = index.query_refined(load)
        power_idx = len(chosen) * w2 - rho * ratio(pairs, chosen, load)
        if power_idx <= brute_power + 1e-6:
            idx_ok += 1
        exact, _ = optimal_subset(pairs, load, w2=w2, rho=rho, theta=0.0)
        power_exact = len(exact) * w2 - rho * ratio(pairs, exact, load)
        if power_exact <= brute_power + 1e-6:
            exact_ok += 1
    return AgreementResult(
        instances=instances,
        index_matches_brute=idx_ok,
        exact_matches_brute=exact_ok,
    )


@dataclass(frozen=True)
class ScalingPoint:
    """Timing of the index at one cluster size."""

    n: int
    events: int
    statuses: int
    preprocess_seconds: float
    query_microseconds: float


def scaling_study(
    rng: np.random.Generator, sizes: Sequence[int] = (10, 20, 40, 60)
) -> list[ScalingPoint]:
    """Measure Algorithm 1 pre-processing and Algorithm 2 query times."""
    points = []
    for n in sizes:
        pairs = random_instance(rng, n)
        with timed("algorithms/preprocess") as preprocess:
            index = ConsolidationIndex(pairs, w2=38.0, rho=9000.0)
        loads = rng.uniform(
            0.05, 0.8, size=200
        ) * sum(a for a, _ in pairs)
        with timed("algorithms/queries") as queries:
            for load in loads:
                index.query(float(load))
        points.append(
            ScalingPoint(
                n=n,
                events=index.event_count,
                statuses=index.status_count,
                preprocess_seconds=preprocess.duration,
                query_microseconds=queries.duration / len(loads) * 1e6,
            )
        )
    return points


@dataclass(frozen=True)
class AlgorithmStudyResult:
    """Everything the algorithm study produces."""

    paper_example_ratio_sort_fails: bool
    heuristic_gaps: list[HeuristicGap]
    agreement: AgreementResult
    scaling: list[ScalingPoint]

    def table(self) -> str:
        """Text rendering of the study."""
        lines = [
            "Algorithm study (Section III-B)",
            "  paper counterexample defeats ratio-sort heuristic: "
            f"{self.paper_example_ratio_sort_fails}",
        ]
        for gap in self.heuristic_gaps:
            lines.append(
                f"  {gap.name}: suboptimal on "
                f"{gap.suboptimal_instances}/{gap.instances} random "
                f"instances (worst gap {gap.worst_relative_gap_percent:.1f}%)"
            )
        lines.append(
            f"  agreement with brute force: index "
            f"{self.agreement.index_matches_brute}/{self.agreement.instances}, "
            f"exact {self.agreement.exact_matches_brute}/"
            f"{self.agreement.instances}"
        )
        lines.append(
            f"  {'n':>4} {'events':>7} {'statuses':>9} "
            f"{'preprocess(s)':>14} {'query(us)':>10}"
        )
        for p in self.scaling:
            lines.append(
                f"  {p.n:>4} {p.events:>7} {p.statuses:>9} "
                f"{p.preprocess_seconds:>14.4f} {p.query_microseconds:>10.1f}"
            )
        return "\n".join(lines)


def run_algorithm_study(seed: int = 7) -> AlgorithmStudyResult:
    """Run the full algorithm study."""
    rng = np.random.default_rng(seed)
    # The paper's own counterexample: ratio-sort picks {0, 1} at L = 0,
    # but {0, 3} achieves a higher ratio.
    k, load = 2, 0.0
    _, t_opt = select_subset(PAPER_COUNTEREXAMPLE, k, load)
    t_sort = ratio(
        PAPER_COUNTEREXAMPLE,
        ratio_sort_heuristic(PAPER_COUNTEREXAMPLE, k),
        load,
    )
    return AlgorithmStudyResult(
        paper_example_ratio_sort_fails=bool(t_sort < t_opt - 1e-9),
        heuristic_gaps=heuristic_study(rng),
        agreement=agreement_study(rng),
        scaling=scaling_study(rng),
    )
