"""Fig. 9 reproduction: bottom-up vs optimal, head to head.

The paper singles out the state-of-the-art cool-job-allocation method
(#7) against its own full solution (#8) across the load axis.  This is
the comparison behind the headline claim (7% average / 18% best-case
savings over the next best baseline).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.energy import SavingsSummary, savings_summary
from repro.analysis.series import FigureSeries, records_to_series
from repro.experiments.common import (
    EvaluationContext,
    default_context,
    numbered_sweeps,
)


@dataclass(frozen=True)
class Fig9Result:
    """Regenerated Fig. 9 data."""

    series: FigureSeries
    savings: SavingsSummary

    def table(self) -> str:
        """Text rendering plus the savings summary line."""
        return self.series.table() + "\n\n" + str(self.savings)


def run_fig9(context: EvaluationContext | None = None) -> Fig9Result:
    """Regenerate Fig. 9 (#7 vs #8 across load)."""
    ctx = context or default_context()
    sweeps = numbered_sweeps(ctx, [7, 8])
    series = records_to_series(
        "fig9", "Bottom-up and optimal (consolidated, AC-controlled)", sweeps
    )
    labels = list(sweeps)
    return Fig9Result(
        series=series,
        savings=savings_summary(sweeps[labels[0]], sweeps[labels[1]]),
    )
