"""Shared evaluation context for all figure reproductions.

Building the context is the expensive part (profiling campaign plus the
consolidation pre-processing), so it is memoized per configuration: every
bench in a session reuses the same profiled testbed, exactly as the
paper's experiments share one profiled rack.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from repro.core.model import SystemModel
from repro.core.optimizer import JointOptimizer
from repro.core.policies import Scenario, paper_scenarios, scenario_by_number
from repro.errors import ConfigurationError
from repro.profiling.campaign import ProfilingResult
from repro.testbed.experiment import ExperimentRecord, Testbed
from repro.testbed.rack import TestbedConfig, build_testbed

#: The load axis of the paper's Figs. 5-10: 10% to 100% of capacity.
DEFAULT_LOAD_FRACTIONS: tuple[float, ...] = tuple(
    round(0.1 * i, 2) for i in range(1, 11)
)


@dataclass(frozen=True)
class EvaluationContext:
    """A profiled testbed ready for policy evaluation."""

    testbed: Testbed
    profiling: ProfilingResult
    optimizer: JointOptimizer

    @property
    def model(self) -> SystemModel:
        """The fitted system model the policies operate on."""
        return self.profiling.system_model


_CONTEXT_CACHE: dict[tuple, EvaluationContext] = {}


def default_context(
    seed: int = 2012,
    n_machines: int = 20,
    config: Optional[TestbedConfig] = None,
    sim_engine: str = "numpy",
) -> EvaluationContext:
    """Build (or fetch from cache) the standard evaluation context."""
    key = (seed, n_machines, config, sim_engine)
    if key not in _CONTEXT_CACHE:
        cfg = config or TestbedConfig(n_machines=n_machines)
        testbed = build_testbed(cfg, seed=seed, sim_engine=sim_engine)
        profiling = testbed.profile()
        optimizer = JointOptimizer(profiling.system_model)
        _CONTEXT_CACHE[key] = EvaluationContext(
            testbed=testbed, profiling=profiling, optimizer=optimizer
        )
    return _CONTEXT_CACHE[key]


def sweep_scenario(
    context: EvaluationContext,
    scenario: Scenario,
    load_fractions: Sequence[float] = DEFAULT_LOAD_FRACTIONS,
) -> list[ExperimentRecord]:
    """Evaluate one scenario across the load axis (ground-truth power)."""
    capacity = context.testbed.total_capacity
    decisions = []
    for fraction in load_fractions:
        if not 0.0 < fraction <= 1.0:
            raise ConfigurationError(
                f"load fraction must be in (0, 1], got {fraction}"
            )
        decisions.append(
            scenario.decide(
                context.model, fraction * capacity, optimizer=context.optimizer
            )
        )
    # One vectorized steady-state solve for the whole load axis
    # (bit-identical to per-decision evaluate calls).
    return context.testbed.evaluate_many(decisions)


def scenario_sweeps(
    context: EvaluationContext,
    scenarios: Sequence[Scenario],
    load_fractions: Sequence[float] = DEFAULT_LOAD_FRACTIONS,
) -> dict[str, list[ExperimentRecord]]:
    """Evaluate several scenarios; keys are the scenario names."""
    return {
        s.name: sweep_scenario(context, s, load_fractions) for s in scenarios
    }


def numbered_sweeps(
    context: EvaluationContext,
    numbers: Sequence[int],
    load_fractions: Sequence[float] = DEFAULT_LOAD_FRACTIONS,
) -> dict[str, list[ExperimentRecord]]:
    """Evaluate the given Fig. 4 scenario numbers."""
    return scenario_sweeps(
        context,
        [scenario_by_number(n) for n in numbers],
        load_fractions,
    )


def all_paper_sweeps(
    context: EvaluationContext,
    load_fractions: Sequence[float] = DEFAULT_LOAD_FRACTIONS,
) -> dict[str, list[ExperimentRecord]]:
    """Evaluate all eight numbered scenarios."""
    return scenario_sweeps(context, paper_scenarios(), load_fractions)
