"""Model-robustness experiment on the stratified (zonal) substrate.

The paper: "it is not our goal to determine the most faithful model ...
we aim to check whether a simplified model is sufficient to arrive at a
solution that achieves a non-trivial improvement in energy savings."

The default testbed bakes the paper's Eq. 7 structure into the ground
truth, so good fits there are partly tautological.  This experiment
replaces the air model with the stratified zonal substrate — where inlet
temperatures emerge from advection and mixing, and a machine's
temperature depends on the *whole* load vector through its zone — and
re-runs the entire methodology: profile with the same campaign, optimize
with the same closed form, evaluate on the zonal ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.series import format_table
from repro.core.optimizer import JointOptimizer
from repro.core.policies import scenario_by_number
from repro.testbed.zonal_build import ZonalConfig, build_zonal_testbed


@dataclass(frozen=True)
class ZonalRobustnessResult:
    """Outcome of the full methodology on the zonal ground truth."""

    fit_rmse_max_kelvin: float
    fit_r2_min: float
    load_percent: tuple[float, ...]
    bottom_up_watts: tuple[float, ...]
    optimal_watts: tuple[float, ...]
    violations: int
    worst_cpu_margin_kelvin: float

    def savings_percent(self) -> list[float]:
        """Per-load #8-vs-#7 savings on the zonal substrate."""
        return [
            100.0 * (b - o) / b
            for b, o in zip(self.bottom_up_watts, self.optimal_watts)
        ]

    def table(self) -> str:
        """Text rendering."""
        rows = [
            [
                f"{x:.0f}",
                f"{b:.1f}",
                f"{o:.1f}",
                f"{s:.1f}",
            ]
            for x, b, o, s in zip(
                self.load_percent,
                self.bottom_up_watts,
                self.optimal_watts,
                self.savings_percent(),
            )
        ]
        header = format_table(
            ["load %", "bottom-up #7 (W)", "optimal #8 (W)", "savings (%)"],
            rows,
            title="Zonal-substrate robustness: the paper's method on a "
            "stratified ground truth",
        )
        return header + (
            f"\nfit quality: worst node RMSE {self.fit_rmse_max_kelvin:.2f} K,"
            f" min R^2 {self.fit_r2_min:.4f};"
            f" T_max violations: {self.violations};"
            f" worst CPU margin {self.worst_cpu_margin_kelvin:.2f} K"
        )


def run_zonal_robustness(
    config: ZonalConfig | None = None,
    seed: int = 2012,
    load_fractions: Sequence[float] = (0.1, 0.3, 0.5, 0.7, 0.9),
) -> ZonalRobustnessResult:
    """Profile and evaluate the paper's method on the zonal substrate."""
    testbed = build_zonal_testbed(config, seed=seed)
    profiling = testbed.profile()
    model = profiling.system_model
    optimizer = JointOptimizer(model)
    capacity = testbed.total_capacity
    bottom_w, optimal_w = [], []
    violations = 0
    margin = float("inf")
    for fraction in load_fractions:
        load = fraction * capacity
        for scenario, sink in ((7, bottom_w), (8, optimal_w)):
            record = testbed.evaluate(
                scenario_by_number(scenario).decide(
                    model, load, optimizer=optimizer
                )
            )
            sink.append(record.total_power)
            if record.temperature_violated:
                violations += 1
            margin = min(
                margin, testbed.config.t_max - record.max_t_cpu
            )
    return ZonalRobustnessResult(
        fit_rmse_max_kelvin=max(r.rmse for r in profiling.node_reports),
        fit_r2_min=min(r.r_squared for r in profiling.node_reports),
        load_percent=tuple(100.0 * f for f in load_fractions),
        bottom_up_watts=tuple(bottom_w),
        optimal_watts=tuple(optimal_w),
        violations=violations,
        worst_cpu_margin_kelvin=margin,
    )
