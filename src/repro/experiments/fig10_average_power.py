"""Fig. 10 reproduction: average power of all methods.

The paper aggregates each method's power across the load scenarios into
one average (its Fig. 10 / "Average Power of All Method").  The expected
ordering: the holistic solution (#8) is cheapest, followed by #7; the
no-knob baselines (#1, #2) are the most expensive.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.energy import average_power
from repro.analysis.series import format_table
from repro.experiments.common import (
    EvaluationContext,
    all_paper_sweeps,
    default_context,
)


@dataclass(frozen=True)
class Fig10Result:
    """Regenerated Fig. 10 data: one average per method, ranked."""

    averages: dict[str, float]

    def ranking(self) -> list[tuple[str, float]]:
        """Methods sorted cheapest first."""
        return sorted(self.averages.items(), key=lambda kv: kv[1])

    def table(self) -> str:
        """Text rendering of the ranked averages."""
        rows = [
            [name, f"{power:.1f}"] for name, power in self.ranking()
        ]
        return format_table(
            ["method", "avg power (W)"],
            rows,
            title="fig10: average power of all methods (over 10-100% load)",
        )


def run_fig10(context: EvaluationContext | None = None) -> Fig10Result:
    """Regenerate Fig. 10 (per-method average over the load axis)."""
    ctx = context or default_context()
    sweeps = all_paper_sweeps(ctx)
    return Fig10Result(
        averages={name: average_power(recs) for name, recs in sweeps.items()}
    )
