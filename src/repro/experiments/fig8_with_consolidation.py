"""Fig. 8 reproduction: load distribution strategies with consolidation.

With AC control and consolidation, the paper compares the distribution
strategies and finds "with optimal load allocation, 5% saving in total
energy consumption is possible", relatively consistent across loads.

The numbered Fig. 4 matrix contains only Bottom-up (#7) and Optimal (#8)
in this cell, but the paper's Fig. 8 legend also shows an Even series; we
include the supplementary even+consolidation variant for completeness and
mark it as such.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.series import FigureSeries, records_to_series
from repro.core.policies import extra_scenarios
from repro.experiments.common import (
    EvaluationContext,
    default_context,
    numbered_sweeps,
    scenario_sweeps,
)


@dataclass(frozen=True)
class Fig8Result:
    """Regenerated Fig. 8 data."""

    series: FigureSeries
    optimal_vs_bottom_up_per_load: tuple[float, ...]

    def table(self) -> str:
        """Text rendering plus per-load optimal-vs-bottom-up savings."""
        per_load = ", ".join(
            f"{s:.1f}%" for s in self.optimal_vs_bottom_up_per_load
        )
        return (
            self.series.table()
            + "\n\noptimal vs bottom-up savings per load: "
            + per_load
        )


def run_fig8(context: EvaluationContext | None = None) -> Fig8Result:
    """Regenerate Fig. 8 (#7 vs #8, plus supplementary even+consol)."""
    ctx = context or default_context()
    sweeps = numbered_sweeps(ctx, [7, 8])
    even_consol = extra_scenarios()[0]  # even + AC + consolidation
    sweeps.update(scenario_sweeps(ctx, [even_consol]))
    series = records_to_series(
        "fig8",
        "AC control, consolidation: different load distribution strategies",
        sweeps,
    )
    labels = list(sweeps)
    bottom, optimal = sweeps[labels[0]], sweeps[labels[1]]
    savings = tuple(
        100.0 * (b.total_power - o.total_power) / b.total_power
        for b, o in zip(bottom, optimal)
    )
    return Fig8Result(series=series, optimal_vs_bottom_up_per_load=savings)
