"""Server power-draw models (ground truth for the simulated testbed)."""

from repro.power.server import ServerPowerModel

__all__ = ["ServerPowerModel"]
