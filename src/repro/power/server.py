"""Ground-truth server power model.

The paper (Eq. 9, after Heath et al. [8]) models per-server power as an
affine function of load::

    P_i = w1 * L_i + w2

where ``L_i`` is the load on server *i* (tasks/s in our workload model) and
``w1``, ``w2`` are fitted coefficients shared by all machines of the same
hardware configuration.  The simulated testbed uses this same affine law as
*ground truth*, optionally perturbed by a small load-dependent curvature term
so the profiling regression has realistic residuals to contend with, exactly
like the real Watts-up-Pro traces in the paper's Fig. 2.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class ServerPowerModel:
    """Affine load-to-power law for one server (paper Eq. 9).

    Parameters
    ----------
    w1:
        Marginal power per unit load, W/(task/s).  Must be positive: more
        work always costs more energy on this hardware.
    w2:
        Load-independent (idle) power draw, W.  Must be non-negative.
    curvature:
        Optional quadratic perturbation coefficient.  The true testbed
        hardware is not perfectly linear; a small positive value bends the
        power curve slightly so that fitted ``(w1, w2)`` differ from the
        ground truth by a realistic amount.  Expressed as W/(task/s)^2.
    capacity:
        The maximum sustainable load of the machine, tasks/s.  Used to
        validate load inputs and to express loads as utilization fractions.
    """

    w1: float
    w2: float
    curvature: float = 0.0
    capacity: float = 40.0

    def __post_init__(self) -> None:
        if self.w1 <= 0.0:
            raise ConfigurationError(f"w1 must be positive, got {self.w1}")
        if self.w2 < 0.0:
            raise ConfigurationError(f"w2 must be non-negative, got {self.w2}")
        if self.capacity <= 0.0:
            raise ConfigurationError(
                f"capacity must be positive, got {self.capacity}"
            )

    def power(self, load: float) -> float:
        """Instantaneous power draw (W) at ``load`` tasks/s.

        Raises
        ------
        ConfigurationError
            If ``load`` is negative.  Loads slightly above capacity are
            clamped (a saturated server cannot do more work than its
            capacity, so it cannot draw more dynamic power either).
        """
        if load < 0.0:
            raise ConfigurationError(f"load must be non-negative, got {load}")
        effective = min(load, self.capacity)
        return self.w2 + self.w1 * effective + self.curvature * effective**2

    def power_at_utilization(self, utilization: float) -> float:
        """Power draw at a utilization fraction in ``[0, 1]``."""
        if not 0.0 <= utilization <= 1.0:
            raise ConfigurationError(
                f"utilization must be in [0, 1], got {utilization}"
            )
        return self.power(utilization * self.capacity)

    @property
    def peak_power(self) -> float:
        """Power draw at full load (W)."""
        return self.power(self.capacity)

    def load_for_power(self, power: float) -> float:
        """Invert the affine law: the load that would draw ``power`` watts.

        Only meaningful for the linear part of the model (``curvature`` is
        ignored); used by tests and by the analytic optimizer, which works
        with the fitted linear model anyway.
        """
        return (power - self.w2) / self.w1
