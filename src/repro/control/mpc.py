"""Receding-horizon MPC over the linearized thermal plant.

The reactive :class:`~repro.core.controller.RuntimeController` re-plans
*after* the offered load moves; with a demand forecast the controller
can do better, because the room has thermal capacitance: cold air
banked before a surge keeps CPU temperatures under ``T_max`` through
the transient the reactive plan overshoots.  :class:`MPCController`
adds exactly that lookahead:

1. **Allocation (on-set size + throughput).**  The demand over the next
   ``preprovision_steps`` control intervals is folded into the planning
   target, so machines are powered on *before* a forecast surge arrives
   and the throughput constraint (served load = offered load, capped at
   surviving capacity) holds through it.  Allocation still flows
   through the reactive machinery — hysteresis, minimum dwell, failure
   exclusion — so MPC inherits every safety behavior of the base
   controller.
2. **Cooling (set-point trajectory).**  Over an ``H``-step horizon the
   per-step allocations fix the per-node power vectors; CPU-temperature
   trajectories are then *affine* in the supply-temperature sequence
   ``u_1..u_H`` through the exact linear plant
   (:class:`~repro.control.plant.LinearizedPlant`).  Minimizing total
   cooling energy (Eq. 10: ``P_ac = c_f_ac * (T_SP - T_ac)`` with
   ``T_SP`` affine in ``u`` via the actuation map) subject to the
   thermal cap ``T_cpu <= T_max - margin`` at every step is a linear
   program, solved with :func:`scipy.optimize.linprog` (HiGHS) and a
   pure-numpy coordinate-sweep fallback when scipy is unavailable or
   the solver errors out.
3. **Warm start + graceful degradation.**  The previous horizon's
   trajectory, shifted one step, seeds the sweep solver and serves as
   the first fallback when the LP fails; if no trajectory is feasible
   the controller keeps the reactive closed-form plan — it never drops
   a valid plan on solver failure.

Every solve emits ``mpc.*`` observability events and counters, and the
commanded pre-cooling (supply colder than the closed-form optimum)
is individually traceable (``mpc.precool``).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Callable, Optional

import numpy as np

from repro import obs
from repro.control.plant import LinearizedPlant
from repro.core.controller import RuntimeController
from repro.core.optimizer import JointOptimizer, OptimizationResult
from repro.errors import ConfigurationError, InfeasibleError

try:  # pragma: no cover - exercised via the fallback tests
    from scipy.optimize import linprog as _linprog
except Exception:  # pragma: no cover - scipy is available in CI
    _linprog = None


@dataclass(frozen=True)
class HorizonSolution:
    """One solved H-step lookahead (kept for introspection/tests)."""

    time: float
    t_ac: np.ndarray        # (H,) supply-temperature trajectory
    objective: float        # modeled cooling energy over the horizon, J
    solver: str             # "linprog" | "sweep" | "warm"
    relaxed: bool           # True when the margin had to be dropped


class MPCController(RuntimeController):
    """Receding-horizon controller over trace-driven demand.

    Parameters
    ----------
    optimizer:
        The joint optimizer (allocation layer, as for the base class).
    plant:
        The :class:`LinearizedPlant` prediction model.  Its ``dt`` is
        the control interval the horizon steps over.
    forecast:
        Demand forecast ``f(t) -> tasks/s`` (e.g. the replayed trace's
        ``load_at``).  Without one the controller degenerates to the
        reactive baseline: no pre-provisioning, no horizon solve.
    horizon:
        Lookahead depth ``H`` in control intervals.  ``H = 1`` disables
        pre-provisioning and constrains only the next step — the
        allocation decisions match the reactive controller exactly.
    margin:
        Thermal-cap back-off, K: the horizon enforces
        ``T_cpu <= T_max - margin`` (absorbs linear-model vs actuation
        mismatch).  On an infeasible horizon the margin is dropped to 0
        before falling back.
    preprovision_steps:
        How many forecast steps feed the allocation target (default
        ``min(2, horizon - 1)``).
    """

    def __init__(
        self,
        optimizer: JointOptimizer,
        plant: LinearizedPlant,
        forecast: Optional[Callable[[float], float]] = None,
        horizon: int = 6,
        margin: float = 0.5,
        preprovision_steps: Optional[int] = None,
        hysteresis: float = 0.15,
        min_dwell: float = 600.0,
        headroom: Optional[float] = None,
    ) -> None:
        super().__init__(
            optimizer,
            hysteresis=hysteresis,
            min_dwell=min_dwell,
            headroom=headroom,
        )
        if horizon < 1:
            raise ConfigurationError(
                f"horizon must be >= 1, got {horizon}"
            )
        if margin < 0.0:
            raise ConfigurationError(
                f"margin must be non-negative, got {margin}"
            )
        if plant.n != optimizer.model.node_count:
            raise ConfigurationError(
                f"plant has {plant.n} nodes but the model has "
                f"{optimizer.model.node_count}"
            )
        if preprovision_steps is None:
            preprovision_steps = min(2, horizon - 1)
        if not 0 <= preprovision_steps < max(horizon, 1) + 1:
            raise ConfigurationError(
                f"preprovision_steps must be in [0, horizon], got "
                f"{preprovision_steps}"
            )
        self.plant = plant
        self.forecast = forecast
        self.horizon = int(horizon)
        self.margin = float(margin)
        self.preprovision_steps = int(preprovision_steps)
        self.control_dt = plant.dt
        # Counters the campaign and tests read.
        self.horizon_solves = 0
        self.fallbacks = 0
        self.warm_reuses = 0
        self.precools = 0
        self.last_horizon: Optional[HorizonSolution] = None
        self._state: Optional[np.ndarray] = None
        self._warm: Optional[np.ndarray] = None
        self._allocation_memo: OrderedDict = OrderedDict()

    # ------------------------------------------------------------------ #
    # Sensing
    # ------------------------------------------------------------------ #

    def observe_thermal_state(
        self,
        time: float,
        t_cpu: np.ndarray,
        t_box: np.ndarray,
        t_room: float,
    ) -> None:
        """Feed the measured thermal state (room instrumentation).

        The horizon solve predicts forward from this state; without at
        least one observation the controller stays purely reactive.
        """
        self._state = LinearizedPlant.pack_state(t_cpu, t_box, t_room)

    # ------------------------------------------------------------------ #
    # Control step
    # ------------------------------------------------------------------ #

    def observe(
        self, time: float, load: float
    ) -> Optional[OptimizationResult]:
        """One control step: allocation first, then the horizon solve."""
        demand = load
        capacity = self.surviving_capacity()
        if self.forecast is not None and self.preprovision_steps > 0:
            ahead = max(
                float(self.forecast(time + h * self.control_dt))
                for h in range(1, self.preprovision_steps + 1)
            )
            # Forecast beyond capacity must not raise: the headroom
            # divisor keeps the pre-provisioning target within
            # surviving capacity.
            demand = max(load, min(ahead, capacity / self.headroom))
        # Admission control: a flash crowd beyond surviving capacity is
        # served at capacity (the surplus is shed at the balancer), so
        # the horizon keeps planning — and pre-cooling — through the
        # overload instead of freezing on an infeasible target.  The
        # purely reactive base class raises InfeasibleError here and
        # rides out the surge on its stale plan.
        demand = min(demand, capacity)
        result = super().observe(time, demand)
        if (
            self._plan is not None
            and self._state is not None
            and self.forecast is not None
        ):
            solved = self._optimize_horizon(time, load)
            if solved is not None:
                return self._plan
        return result if result is None else self._plan

    # ------------------------------------------------------------------ #
    # Horizon assembly
    # ------------------------------------------------------------------ #

    def _allocation_for(self, target: float) -> Optional[OptimizationResult]:
        """Memoized optimizer solve for a horizon-step target."""
        key = (round(float(target), 3), frozenset(self.failed))
        if key in self._allocation_memo:
            self._allocation_memo.move_to_end(key)
            return self._allocation_memo[key]
        try:
            plan = self.optimizer.solve(
                float(target), exclude=sorted(self.failed)
            )
        except InfeasibleError:
            plan = None
        self._allocation_memo[key] = plan
        if len(self._allocation_memo) > 512:
            self._allocation_memo.popitem(last=False)
        return plan

    def _plan_inputs(
        self, plan: OptimizationResult
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """(mask, fitted per-node powers, total server power) of a plan."""
        model = self.optimizer.model
        n = model.node_count
        mask = np.zeros(n, dtype=bool)
        powers = np.zeros(n)
        for i in plan.on_ids:
            mask[i] = True
            powers[i] = model.power.power(float(plan.loads[i]))
        return mask, powers, float(powers.sum())

    def _optimize_horizon(
        self, time: float, load: float
    ) -> Optional[HorizonSolution]:
        """Solve the H-step supply-temperature LP and adopt step one.

        Returns the solution, or ``None`` when every path (LP, relaxed
        LP, warm-shifted trajectory, coordinate sweep) failed — in which
        case the reactive closed-form plan stays in force untouched.
        """
        model = self.optimizer.model
        cooler = model.cooler
        horizon = self.horizon
        capacity = self.surviving_capacity()
        with obs.timed("control/mpc_horizon"):
            # Per-step allocations: the live plan covers step 1 (that is
            # what will actually be commanded); forecast solves cover
            # the rest.  An infeasible forecast step reuses the previous
            # step's allocation rather than aborting the horizon.
            plans = [self._plan]
            for h in range(2, horizon + 1):
                f = float(self.forecast(time + h * self.control_dt))
                target = min(max(f, load) * self.headroom, capacity)
                step_plan = self._allocation_for(max(target, 1e-6))
                plans.append(step_plan if step_plan is not None else plans[-1])
            masks, power_vecs, totals = [], [], []
            for plan in plans:
                mask, powers, total = self._plan_inputs(plan)
                masks.append(mask)
                power_vecs.append(powers)
                totals.append(total)
            rows, bounds_gap = self._constraint_rows(
                masks, power_vecs
            )
            lo, hi = cooler.t_ac_min, cooler.t_ac_max
            # Cost: per-step cooling power c_f_ac * (T_SP - u) with
            # T_SP = offset + a_t * u + a_p * P  =>  the only u-dependent
            # term is c_f_ac * (a_t - 1) * u, identical across steps.
            coeff = cooler.c_f_ac * (cooler.actuation_t_ac - 1.0)
            cost = np.full(horizon, coeff * self.control_dt)
            solution: Optional[np.ndarray] = None
            solver = "linprog"
            relaxed = False
            for slack in (0.0, self.margin):
                trajectory = self._solve_lp(
                    cost, rows, bounds_gap + slack, lo, hi
                )
                if trajectory is not None:
                    solution = trajectory
                    relaxed = slack > 0.0
                    break
            if solution is None and self._warm is not None:
                shifted = np.append(self._warm[1:], self._warm[-1])
                if self._feasible(rows, bounds_gap + self.margin, shifted):
                    solution = shifted
                    solver = "warm"
                    self.warm_reuses += 1
                    obs.count("mpc.warm_start_reuse")
            if solution is None:
                self.fallbacks += 1
                obs.count("mpc.fallbacks")
                obs.add_event(
                    "mpc.fallback", time=time, offered_load=load,
                    horizon=horizon,
                )
                return None
            objective = float(
                sum(
                    cooler.cooling_power(
                        cooler.set_point_for(float(u), totals[h]), float(u)
                    ) * self.control_dt
                    for h, u in enumerate(solution)
                )
            )
            self._warm = np.asarray(solution, dtype=float)
            self.horizon_solves += 1
            obs.count("mpc.horizon_solves")
            result = HorizonSolution(
                time=time,
                t_ac=self._warm.copy(),
                objective=objective,
                solver=solver,
                relaxed=relaxed,
            )
            self.last_horizon = result
            self._adopt_supply(time, float(solution[0]), totals[0])
            obs.set_span_attributes(
                horizon=horizon, solver=solver, relaxed=relaxed,
                t_ac_next=float(solution[0]),
            )
            obs.add_event(
                "mpc.solve", time=time, solver=solver,
                t_ac_next=float(solution[0]), horizon=horizon,
            )
        return result

    def _constraint_rows(
        self, masks, power_vecs
    ) -> tuple[list[tuple[np.ndarray, int]], np.ndarray]:
        """Affine thermal-cap rows of the horizon.

        Propagates ``x_h = base_h + sum_j S_hj u_j`` through the
        per-step plant matrices and collects, for every step ``h`` and
        every powered-on CPU ``i``, the row ``(coeffs over u, gap)``
        with the constraint ``coeffs @ u <= gap`` where
        ``gap = T_max - margin - base_h[i]``.

        Returns ``(rows, gaps)`` with rows as a dense array pair:
        ``rows[k]`` is the coefficient vector, ``gaps[k]`` its bound.
        """
        model = self.optimizer.model
        horizon = len(masks)
        cap = model.t_max - self.margin
        base = self._state.copy()
        cols: list[np.ndarray] = []
        coeff_rows: list[np.ndarray] = []
        gaps: list[float] = []
        for h in range(horizon):
            mats = self.plant.matrices(masks[h])
            base = mats.a @ base + mats.b_power @ power_vecs[h] + mats.offset
            for j in range(len(cols)):
                cols[j] = mats.a @ cols[j]
            cols.append(mats.b_supply.copy())
            for i in np.flatnonzero(masks[h]):
                row = np.zeros(horizon)
                for j in range(h + 1):
                    row[j] = cols[j][i]
                coeff_rows.append(row)
                gaps.append(cap - base[i])
        if not coeff_rows:
            return [], np.zeros(0)
        return (
            list(np.asarray(coeff_rows)),
            np.asarray(gaps, dtype=float),
        )

    # ------------------------------------------------------------------ #
    # Solvers
    # ------------------------------------------------------------------ #

    def _solve_lp(
        self,
        cost: np.ndarray,
        rows,
        gaps: np.ndarray,
        lo: float,
        hi: float,
    ) -> Optional[np.ndarray]:
        """The horizon LP via scipy (HiGHS), else the coordinate sweep."""
        horizon = len(cost)
        if _linprog is not None:
            try:
                a_ub = np.asarray(rows) if len(rows) else None
                b_ub = gaps if len(rows) else None
                solved = _linprog(
                    cost, A_ub=a_ub, b_ub=b_ub,
                    bounds=[(lo, hi)] * horizon, method="highs",
                )
            except Exception:
                solved = None
            if solved is not None and solved.success:
                return np.asarray(solved.x, dtype=float)
            if solved is not None and not solved.success:
                return self._solve_sweep(rows, gaps, lo, hi)
            return self._solve_sweep(rows, gaps, lo, hi)
        return self._solve_sweep(rows, gaps, lo, hi)

    def _solve_sweep(
        self, rows, gaps: np.ndarray, lo: float, hi: float
    ) -> Optional[np.ndarray]:
        """Pure-numpy fallback: coordinate sweeps toward the warmest
        feasible trajectory (optimal when warmer supply is cheaper,
        which Eq. 10 with an increasing actuation slope < 1 implies;
        merely feasible otherwise)."""
        horizon = self.horizon
        start = (
            np.append(self._warm[1:], self._warm[-1])
            if self._warm is not None and len(self._warm) == horizon
            else np.full(horizon, hi)
        )
        u = np.clip(start, lo, hi)
        if not rows:
            return u
        a = np.asarray(rows)
        for _ in range(3):
            for j in range(horizon):
                others = a @ u - a[:, j] * u[j]
                upper, lower = hi, lo
                for r in range(a.shape[0]):
                    c = a[r, j]
                    if abs(c) < 1e-12:
                        continue
                    limit = (gaps[r] - others[r]) / c
                    if c > 0.0:
                        upper = min(upper, limit)
                    else:
                        lower = max(lower, limit)
                if lower > upper + 1e-9:
                    return None
                u[j] = min(max(upper, lo), hi)
                if u[j] < lower - 1e-9:
                    return None
        if np.all(a @ u <= gaps + 1e-6):
            return u
        return None

    @staticmethod
    def _feasible(rows, gaps: np.ndarray, u: np.ndarray) -> bool:
        if not rows:
            return True
        return bool(np.all(np.asarray(rows) @ u <= gaps + 1e-6))

    # ------------------------------------------------------------------ #
    # Plan adoption
    # ------------------------------------------------------------------ #

    def _adopt_supply(
        self, time: float, t_ac: float, server_power: float
    ) -> None:
        """Swap the horizon's step-one supply temperature into the
        active plan (allocation untouched)."""
        cooler = self.optimizer.model.cooler
        t_ac = cooler.clamp_t_ac(t_ac)
        plan = self._plan
        if abs(t_ac - plan.t_ac) <= 1e-9:
            return
        if t_ac < plan.t_ac - 0.05:
            # Colder than the steady-state optimum: banking cold air
            # ahead of a forecast surge.
            self.precools += 1
            obs.count("mpc.precools")
            obs.add_event(
                "mpc.precool", time=time,
                t_ac=t_ac, t_ac_steady=plan.t_ac,
            )
        t_sp = cooler.set_point_for(t_ac, server_power)
        self._plan = replace(plan, t_ac=t_ac, t_sp=t_sp)
