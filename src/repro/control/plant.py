"""Discrete-time linear thermal plant extracted from the RK4 engine.

The transient room model (:class:`repro.thermal.simulation.RoomSimulation`)
integrates, for a *fixed* on-mask, dynamics that are exactly linear in
the stacked state ``x = [t_cpu, t_box, t_room]`` and the inputs (per-node
powers and the supply-air temperature): every term of the derivative —
conductive exchange, fan streams, bypass flow, envelope losses — is
affine (see Eq. 6/7 of the paper; the cooler side is the linear Eq. 10).
Composing RK4 substeps of a linear system is itself a linear map, so the
discrete step over one control interval has the exact form

    ``x+ = A x + B_power p + b_supply * t_ac + offset``

and finite differences against the engine recover ``A``, ``B_power``,
``b_supply`` and ``offset`` *exactly* (to floating-point roundoff) — no
truncation error, because there is no higher-order term to truncate.
:class:`LinearizedPlant` performs that extraction by probing the
engine's own ``_advance_numpy`` stepper with basis states/inputs, so the
linear model inherits the integrator bit for bit, and memoizes the
matrices per on-mask (the mask changes the flow topology: an off node
couples to the room through a weak passive conductance instead of its
fan stream).

This is the prediction model the receding-horizon controller
(:mod:`repro.control.mpc`) optimizes over: CPU-temperature trajectories
become affine functions of the supply-temperature trajectory, which
turns the H-step lookahead into a linear program.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import ConfigurationError
from repro.thermal.simulation import RoomSimulation


@dataclass(frozen=True)
class PlantMatrices:
    """The exact discrete-time linear map of one control interval.

    ``next_state = a @ x + b_power @ p + b_supply * t_ac + offset`` where
    ``x = [t_cpu (n), t_box (n), t_room]`` (length ``2n + 1``), ``p`` is
    the per-node electrical power vector (entries of off nodes are
    ignored: their columns are zero), and ``t_ac`` the supply-air
    temperature held over the interval.
    """

    a: np.ndarray          # (m, m)
    b_power: np.ndarray    # (m, n)
    b_supply: np.ndarray   # (m,)
    offset: np.ndarray     # (m,)
    on_mask: np.ndarray    # (n,) bool — the mask this map was built for
    dt: float

    @property
    def state_dim(self) -> int:
        return int(self.a.shape[0])


class LinearizedPlant:
    """Extract and cache per-mask discrete-time linear thermal models.

    Parameters
    ----------
    room, cooler:
        The ground-truth room and cooling unit (the same objects a
        :class:`RoomSimulation` is built from).  The cooler is only
        needed to construct the probe simulation; the PI loop is
        bypassed — the supply temperature is an *input* of the linear
        model, matching how the MPC commands it through the actuation
        map (Eq. 10's ``T_SP``/``T_ac`` relation).
    dt:
        Control interval the discrete map spans, s.
    rk_dt:
        RK4 substep; the interval is covered by
        ``ceil(dt / rk_dt)`` equal substeps (so the probe uses the same
        integrator cadence as the closed-loop simulation).
    max_cached_masks:
        LRU capacity of the per-mask matrix cache.
    """

    def __init__(
        self,
        room,
        cooler,
        dt: float = 60.0,
        rk_dt: float = 2.0,
        max_cached_masks: int = 16,
    ) -> None:
        if dt <= 0.0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        if rk_dt <= 0.0 or rk_dt > dt:
            raise ConfigurationError(
                f"need 0 < rk_dt <= dt, got rk_dt={rk_dt}, dt={dt}"
            )
        if max_cached_masks < 1:
            raise ConfigurationError(
                f"max_cached_masks must be >= 1, got {max_cached_masks}"
            )
        self.dt = float(dt)
        self.substeps = max(1, int(np.ceil(dt / rk_dt - 1e-9)))
        self.rk_dt = self.dt / self.substeps
        self._probe = RoomSimulation(room, cooler, engine="numpy")
        self.n = room.node_count
        self.max_cached_masks = max_cached_masks
        self._cache: OrderedDict[bytes, PlantMatrices] = OrderedDict()

    @classmethod
    def from_testbed(
        cls, testbed, dt: float = 60.0, rk_dt: float = 2.0, **kwargs
    ) -> "LinearizedPlant":
        """Build a plant around a testbed's ground-truth room/cooler."""
        return cls(testbed.room, testbed.cooler, dt=dt, rk_dt=rk_dt, **kwargs)

    @property
    def state_dim(self) -> int:
        """Stacked state length ``2n + 1``."""
        return 2 * self.n + 1

    # ------------------------------------------------------------------ #
    # State packing
    # ------------------------------------------------------------------ #

    @staticmethod
    def pack_state(
        t_cpu: np.ndarray, t_box: np.ndarray, t_room: float
    ) -> np.ndarray:
        """Stack ``(t_cpu, t_box, t_room)`` into one state vector."""
        return np.concatenate(
            [np.asarray(t_cpu, dtype=float),
             np.asarray(t_box, dtype=float),
             [float(t_room)]]
        )

    @staticmethod
    def unpack_state(
        state: np.ndarray, n: int
    ) -> tuple[np.ndarray, np.ndarray, float]:
        """Inverse of :meth:`pack_state`."""
        state = np.asarray(state, dtype=float)
        return state[:n], state[n: 2 * n], float(state[2 * n])

    @classmethod
    def state_of(cls, sim: RoomSimulation) -> np.ndarray:
        """The packed thermal state of a live simulation."""
        return cls.pack_state(sim.t_cpu, sim.t_box, sim.t_room)

    # ------------------------------------------------------------------ #
    # Extraction
    # ------------------------------------------------------------------ #

    def _rollout(
        self, state: np.ndarray, powers: np.ndarray, t_ac: float
    ) -> np.ndarray:
        """One control interval of the RK4 engine from ``state``.

        The probe's mask must already be set; the cooler PI loop is
        bypassed (``t_ac`` is held constant over the interval).
        """
        probe = self._probe
        n = self.n
        probe.t_cpu = np.array(state[:n], dtype=float)
        probe.t_box = np.array(state[n: 2 * n], dtype=float)
        probe.t_room = float(state[2 * n])
        probe.powers = np.asarray(powers, dtype=float)
        for _ in range(self.substeps):
            probe._advance_numpy(self.rk_dt, t_ac)
        return self.pack_state(probe.t_cpu, probe.t_box, probe.t_room)

    def matrices(self, on_mask) -> PlantMatrices:
        """The discrete linear map for ``on_mask`` (memoized, LRU).

        Extraction probes the engine with basis states and inputs: the
        zero rollout gives ``offset`` (envelope drift), each unit state
        gives a column of ``A``, each unit power a column of
        ``B_power``, and a unit supply temperature gives ``b_supply``.
        Because the dynamics are linear for a fixed mask, superposition
        makes these probes *exact* — validated against the transient
        engine in ``tests/test_control_plant.py``.
        """
        mask = np.asarray(on_mask, dtype=bool)
        if mask.shape != (self.n,):
            raise ConfigurationError(
                f"expected mask of shape ({self.n},), got {mask.shape}"
            )
        key = mask.tobytes()
        cached = self._cache.get(key)
        if cached is not None:
            self._cache.move_to_end(key)
            obs.count("mpc.plant_cache_hits")
            return cached
        with obs.timed("control/linearize"):
            m = self.state_dim
            n = self.n
            self._probe.on_mask = mask
            zeros_m = np.zeros(m)
            zeros_n = np.zeros(n)
            offset = self._rollout(zeros_m, zeros_n, 0.0)
            a = np.empty((m, m))
            basis = np.zeros(m)
            for j in range(m):
                basis[j] = 1.0
                a[:, j] = self._rollout(basis, zeros_n, 0.0) - offset
                basis[j] = 0.0
            b_power = np.zeros((m, n))
            unit_p = np.zeros(n)
            for i in range(n):
                if not mask[i]:
                    continue  # an off node's power never enters the map
                unit_p[i] = 1.0
                b_power[:, i] = self._rollout(zeros_m, unit_p, 0.0) - offset
                unit_p[i] = 0.0
            b_supply = self._rollout(zeros_m, zeros_n, 1.0) - offset
            obs.set_span_attributes(
                machines_on=int(mask.sum()), dt=self.dt,
                substeps=self.substeps,
            )
        result = PlantMatrices(
            a=a, b_power=b_power, b_supply=b_supply, offset=offset,
            on_mask=mask.copy(), dt=self.dt,
        )
        self._cache[key] = result
        if len(self._cache) > self.max_cached_masks:
            self._cache.popitem(last=False)
        obs.count("mpc.plant_linearizations")
        return result

    # ------------------------------------------------------------------ #
    # Prediction
    # ------------------------------------------------------------------ #

    def step(
        self,
        state: np.ndarray,
        powers: np.ndarray,
        t_ac: float,
        on_mask,
    ) -> np.ndarray:
        """Predict the state one control interval ahead."""
        mats = self.matrices(on_mask)
        return (
            mats.a @ np.asarray(state, dtype=float)
            + mats.b_power @ np.asarray(powers, dtype=float)
            + mats.b_supply * float(t_ac)
            + mats.offset
        )

    def predict(
        self,
        state: np.ndarray,
        powers_seq,
        t_ac_seq,
        masks,
    ) -> np.ndarray:
        """Roll the linear model over a horizon.

        Returns the ``(H + 1, state_dim)`` trajectory including the
        initial state as row 0.
        """
        powers_seq = [np.asarray(p, dtype=float) for p in powers_seq]
        t_ac_seq = [float(u) for u in t_ac_seq]
        masks = list(masks)
        if not len(powers_seq) == len(t_ac_seq) == len(masks):
            raise ConfigurationError(
                "powers_seq, t_ac_seq and masks must have equal length, "
                f"got {len(powers_seq)}, {len(t_ac_seq)}, {len(masks)}"
            )
        trajectory = np.empty((len(masks) + 1, self.state_dim))
        trajectory[0] = np.asarray(state, dtype=float)
        for h, (p, u, mask) in enumerate(zip(powers_seq, t_ac_seq, masks)):
            trajectory[h + 1] = self.step(trajectory[h], p, u, mask)
        return trajectory
