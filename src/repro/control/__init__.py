"""Receding-horizon control layer (extension beyond the paper).

The paper's optimizer is open-loop for a steady throughput target and
its runtime wrapper (:mod:`repro.core.controller`) is purely reactive:
it re-plans *after* the load moves.  This subsystem closes the gap for
time-varying demand:

- :mod:`repro.control.plant` — :class:`LinearizedPlant`, the exact
  discrete-time linear thermal model ``x+ = A x + B u + c`` extracted
  from the RK4 transient engine by finite differences (the dynamics are
  linear for a fixed on-mask, so the extraction is exact to roundoff);
- :mod:`repro.control.mpc` — :class:`MPCController`, a receding-horizon
  controller that solves an H-step lookahead LP over supply-air
  temperatures (and pre-provisions the on-set from the demand forecast),
  pre-cooling the room before surges the reactive controller can only
  chase;
- :mod:`repro.control.campaign` — the ``repro mpc`` campaign comparing
  reactive vs MPC vs a clairvoyant oracle over diurnal, flash-crowd,
  and derate scenarios, scored on energy, violation-seconds, and
  reconfigurations.
"""

from repro.control.campaign import (
    MPC_CONTROLLERS,
    DemandScenario,
    DemandLoopResult,
    demand_scenarios,
    run_demand_loop,
    run_mpc_campaign,
)
from repro.control.mpc import HorizonSolution, MPCController
from repro.control.plant import LinearizedPlant, PlantMatrices

__all__ = [
    "LinearizedPlant",
    "PlantMatrices",
    "MPCController",
    "HorizonSolution",
    "DemandScenario",
    "DemandLoopResult",
    "MPC_CONTROLLERS",
    "demand_scenarios",
    "run_demand_loop",
    "run_mpc_campaign",
]
