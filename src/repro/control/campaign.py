"""MPC campaign: reactive vs MPC vs oracle over time-varying demand.

The fault campaign (:mod:`repro.faults.campaign`) scores controllers
against disturbances at a *steady* operating point; this campaign scores
them against *moving demand* — the regime the paper defers.  Four
controllers replay each demand scenario against the ground-truth
transient simulation:

``reactive``
    The plain :class:`~repro.core.controller.RuntimeController` — the
    paper's replanner driven by the instantaneous load alone.  A flash
    crowd beyond total capacity leaves it with no feasible target: it
    freezes on the pre-surge plan while the balancer saturates the
    stale on-set under pre-surge cooling, and CPU temperatures ride
    through ``T_max`` until the surge decays back inside capacity.
``resilient``
    The :class:`~repro.faults.resilience.ResilientController`
    (production baseline from PR 4): its shed-retry ladder always finds
    a feasible target, so it stays thermally safe — by serving less,
    with its thermal guard priced in as extra cooling energy.
``mpc``
    The :class:`~repro.control.mpc.MPCController` with the replayed
    trace as its demand forecast: pre-provisions machines and pre-cools
    the room before surges it can see coming, and saturates its
    admission target at capacity instead of freezing.
``oracle``
    The clairvoyant steady-state planner from the fault campaign —
    plans from the injector's ground truth at every step; the energy
    floor the others are scored against.

Scoring: violation-seconds (hottest powered-on CPU above ``T_max``),
energy (J), served/shed task-seconds, on-set changes (machines actually
cycled), and the MPC solver counters.  :func:`run_mpc_campaign` builds
the schema-validated document written to
``benchmarks/results/mpc.json`` by ``repro mpc`` (see
:func:`repro.obs.export.validate_mpc`); its ``dominance`` section is
the acceptance gate — MPC must strictly dominate the reactive
controller on at least one flash-crowd scenario (fewer
violation-seconds at equal-or-lower energy).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional, Sequence

import numpy as np

from repro import obs
from repro.control.mpc import MPCController
from repro.control.plant import LinearizedPlant
from repro.core.controller import RuntimeController
from repro.errors import ConfigurationError, InfeasibleError
from repro.faults.campaign import _SENSOR_SPAWN_KEY, _OracleController
from repro.faults.injection import FaultInjector
from repro.faults.resilience import ResilientController
from repro.faults.scenario import FaultScenario, FaultSpec
from repro.thermal.plant import ChillerPlant, default_plant
from repro.thermal.sensors import TemperatureSensor
from repro.thermal.simulation import RoomSimulation
from repro.workload.traces import (
    LoadTrace,
    constant_trace,
    diurnal_trace,
    flash_crowd_trace,
    noisy_trace,
    overlay_traces,
)
from repro.workload.weather import WeatherTrace, diurnal_wetbulb, heat_wave

#: Controllers every MPC campaign runs, in report order.
MPC_CONTROLLERS: tuple[str, ...] = (
    "reactive", "resilient", "mpc", "oracle"
)


def _empty_faults(name: str, seed: int, duration: float) -> FaultScenario:
    return FaultScenario(
        name=f"{name}-faults", seed=seed, faults=(), duration=duration
    )


@dataclass(frozen=True)
class DemandScenario:
    """One campaign entry: a demand trace plus an optional fault overlay."""

    name: str
    trace: LoadTrace
    faults: FaultScenario
    description: str = ""
    flash_crowd: bool = False  # eligible for the dominance gate
    weather: Optional[WeatherTrace] = None  # overrides the campaign trace

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario needs a non-empty name")


@dataclass(frozen=True)
class DemandLoopResult:
    """Scored outcome of one controller riding one demand scenario."""

    scenario: str
    controller: str
    duration: float
    violation_seconds: float
    energy_joules: float
    offered_task_seconds: float
    served_task_seconds: float
    shed_task_seconds: float
    reconfigurations: int
    suppressed: int
    on_set_changes: int
    max_t_cpu: float
    horizon_solves: int = 0
    fallbacks: int = 0
    precools: int = 0
    server_energy_joules: float = 0.0
    water_liters: Optional[float] = None

    @property
    def pue(self) -> Optional[float]:
        """Power usage effectiveness: total energy over IT (server)
        energy.  ``None`` when no server energy was drawn."""
        if self.server_energy_joules <= 0.0:
            return None
        return self.energy_joules / self.server_energy_joules

    @property
    def wue_l_per_kwh(self) -> Optional[float]:
        """Water usage effectiveness: tower liters per IT kWh.  ``None``
        without a cooling tower in the loop."""
        if self.water_liters is None or self.server_energy_joules <= 0.0:
            return None
        return self.water_liters / (self.server_energy_joules / 3.6e6)

    def to_dict(self) -> dict:
        return {
            "violation_seconds": self.violation_seconds,
            "energy_joules": self.energy_joules,
            "server_energy_joules": self.server_energy_joules,
            "pue": self.pue,
            "water_liters": self.water_liters,
            "wue_l_per_kwh": self.wue_l_per_kwh,
            "offered_task_seconds": self.offered_task_seconds,
            "served_task_seconds": self.served_task_seconds,
            "shed_task_seconds": self.shed_task_seconds,
            "reconfigurations": self.reconfigurations,
            "suppressed": self.suppressed,
            "on_set_changes": self.on_set_changes,
            "max_t_cpu": self.max_t_cpu,
            "horizon_solves": self.horizon_solves,
            "fallbacks": self.fallbacks,
            "precools": self.precools,
        }


def demand_scenarios(
    capacity: float, seed: int = 2012, quick: bool = False
) -> list[DemandScenario]:
    """The built-in demand scenarios, scaled to a cluster's capacity.

    ``flash-crowd`` is the acceptance reference: a sudden surge the
    reactive controller only sees when it arrives but the forecast-fed
    MPC can pre-cool for.  ``quick=True`` compresses every window for
    the CI smoke job (same shapes, shorter replay).
    """
    if capacity <= 0.0:
        raise ConfigurationError(
            f"capacity must be positive, got {capacity}"
        )
    scale = 0.4 if quick else 1.0
    diurnal_len = 7200.0 * scale
    flash_len = 5400.0 * scale
    onset = 2400.0 * scale
    # The decay constant is floored rather than fully compressed in
    # quick mode: the room's thermal time constant does not scale, and
    # the overload window (decay * ln(spike / (capacity - base))) must
    # stay longer than the CPU-temperature climb time for the frozen
    # reactive plan to actually breach T_max.
    decay = max(600.0, 900.0 * scale)
    diurnal = noisy_trace(
        diurnal_trace(
            base=0.35 * capacity,
            peak=0.8 * capacity,
            duration=diurnal_len,
            period=diurnal_len,
            peak_time=0.5 * diurnal_len,
        ),
        noise_std=0.01 * capacity,
        seed=seed,
    )
    # The spike tops out *above* total capacity: the reactive planner
    # has no feasible target, freezes on its pre-surge plan, and rides
    # the saturated on-set hot, while the forecast-fed MPC saturates
    # its admission target at capacity and pre-cools for the surge.
    flash = overlay_traces(
        constant_trace(0.55 * capacity, duration=flash_len),
        flash_crowd_trace(
            base=0.0,
            spike=0.75 * capacity,
            onset=onset,
            duration=flash_len,
            decay=decay,
            rise=60.0 * scale,
        ),
    )
    derate_surge = overlay_traces(
        constant_trace(0.4 * capacity, duration=flash_len),
        flash_crowd_trace(
            base=0.0,
            spike=0.3 * capacity,
            onset=onset,
            duration=flash_len,
            decay=decay,
            rise=60.0,
        ),
    )
    return [
        DemandScenario(
            name="diurnal",
            trace=diurnal,
            faults=_empty_faults("diurnal", seed, diurnal_len),
            description="compressed day curve with seeded jitter",
        ),
        DemandScenario(
            name="flash-crowd",
            trace=flash,
            faults=_empty_faults("flash-crowd", seed, flash_len),
            description=(
                "sudden-onset surge with exponential decay over a "
                "steady base"
            ),
            flash_crowd=True,
        ),
        DemandScenario(
            name="derate-surge",
            trace=derate_surge,
            faults=FaultScenario(
                name="derate-surge-faults",
                seed=seed,
                duration=flash_len,
                faults=(
                    # q_max is heavily oversized for this room; only a
                    # deep derate (compare the fault campaign's 0.04)
                    # actually squeezes the heat path.
                    FaultSpec(
                        kind="ac_derate",
                        at=onset - 300.0 * scale,
                        until=onset + 2.0 * decay,
                        magnitude=0.06,
                    ),
                ),
            ),
            description=(
                "a flash crowd landing while the AC has lost almost "
                "half its capacity"
            ),
        ),
    ]


def heat_wave_scenario(
    capacity: float,
    seed: int = 2012,
    quick: bool = False,
    base_wetbulb: float = 295.15,
    amplitude: float = 8.0,
) -> DemandScenario:
    """An afternoon demand peak landing under a wet-bulb heat wave.

    The stress case weather-aware control exists for: the chiller's COP
    collapses (wet-bulb up ``amplitude`` K) exactly while demand crests,
    so cooling is at its most expensive when the room needs it most.
    The scenario carries its own wet-bulb trace
    (:attr:`DemandScenario.weather`), overriding the campaign-level one.
    """
    scale = 0.4 if quick else 1.0
    length = 7200.0 * scale
    demand = noisy_trace(
        diurnal_trace(
            base=0.4 * capacity,
            peak=0.85 * capacity,
            duration=length,
            period=length,
            peak_time=0.55 * length,
        ),
        noise_std=0.01 * capacity,
        seed=seed,
    )
    wave = heat_wave(
        diurnal_wetbulb(
            mean=base_wetbulb,
            swing=3.0,
            duration=length,
            period=length,
            warmest_time=0.55 * length,
            noise_std=0.3,
            seed=seed,
        ),
        onset=0.25 * length,
        length=0.6 * length,
        amplitude=amplitude,
    )
    return DemandScenario(
        name="heat-wave",
        trace=demand,
        faults=_empty_faults("heat-wave", seed, length),
        description=(
            "afternoon demand peak under a wet-bulb heat wave: COP "
            "collapses exactly when the room runs hottest"
        ),
        weather=wave,
    )


# --------------------------------------------------------------------- #
# Closed-loop demand harness
# --------------------------------------------------------------------- #


def _serve(
    offered: float,
    plan_loads: np.ndarray,
    caps: np.ndarray,
    mask: np.ndarray,
) -> np.ndarray:
    """Demand-following load balancer over the live on-set.

    Offered load at or below the planned total scales the plan's
    allocation down proportionally; offered load above it waterfills the
    surplus into each on machine's remaining capacity headroom.  Demand
    beyond the on-set's total capacity is shed.
    """
    loads = np.zeros_like(plan_loads)
    if offered <= 0.0 or not mask.any():
        return loads
    plan_total = float(plan_loads[mask].sum())
    if plan_total <= 0.0:
        # Degenerate plan: split by capacity alone.
        cap_on = float(caps[mask].sum())
        if cap_on <= 0.0:
            return loads
        frac = min(offered / cap_on, 1.0)
        loads[mask] = frac * caps[mask]
        return loads
    if offered <= plan_total:
        loads[mask] = plan_loads[mask] * (offered / plan_total)
        return loads
    headroom = np.where(mask, caps - plan_loads, 0.0)
    headroom = np.maximum(headroom, 0.0)
    total_headroom = float(headroom.sum())
    surplus = offered - plan_total
    if total_headroom <= 0.0 or surplus >= total_headroom:
        loads[mask] = caps[mask]  # saturated: shed the rest
        return loads
    loads[mask] = (
        plan_loads[mask] + headroom[mask] * (surplus / total_headroom)
    )
    return loads


def _node_powers(testbed, loads: np.ndarray, mask: np.ndarray) -> np.ndarray:
    """Electrical power drawn by each node serving ``loads``."""
    powers = np.zeros_like(loads)
    for i in np.flatnonzero(mask):
        powers[i] = testbed.power_models[int(i)].power(float(loads[i]))
    return powers


def run_demand_loop(
    testbed,
    controller,
    scenario: DemandScenario,
    *,
    injector: Optional[FaultInjector] = None,
    control_dt: float = 60.0,
    sim_dt: float = 2.0,
    attach_injector: bool = False,
    feed_readings: bool = False,
    feed_state: bool = False,
    controller_name: str = "controller",
    sim_engine: str = "numpy",
    plant: Optional[ChillerPlant] = None,
    weather: Optional[WeatherTrace] = None,
) -> DemandLoopResult:
    """Drive one controller through one demand scenario, ground truth on.

    Mirrors :func:`repro.faults.campaign.run_closed_loop` with a
    time-varying offered load from the scenario's trace.  ``feed_state``
    streams the simulation's exact thermal state into the controller's
    ``observe_thermal_state`` hook (room instrumentation — the MPC's
    prediction anchor); it starts one control step late, after the
    simulation has been warm-started at the first plan's steady state,
    so every controller boots from the same settled room.

    Serving is *demand-following*: the controller decides the on-set and
    the cooling once per ``control_dt``, but the machines track the
    offered load at simulator resolution — demand below the planned
    total scales the planned allocation down, demand above it waterfills
    the surplus into the on-set's remaining capacity headroom (anything
    beyond that is shed).  A surge landing between control decisions
    therefore heats the live on-set under the *old* supply temperature
    until the next replan — the transient window pre-provisioning and
    pre-cooling exist to cover.

    With a ``plant`` and ``weather`` (a scenario-level
    ``scenario.weather`` overrides the argument), the cooling
    *electrical* draw is re-priced each substep through the chiller
    plant's weather-dependent COP and hysteretic economizer — the
    air-side thermals are untouched — and the result carries PUE plus
    (with a cooling tower) water use and WUE.
    """
    if control_dt <= 0.0 or sim_dt <= 0.0 or sim_dt > control_dt:
        raise ConfigurationError(
            f"need 0 < sim_dt <= control_dt, got {sim_dt}, {control_dt}"
        )
    wx = scenario.weather if scenario.weather is not None else weather
    if plant is not None and wx is None:
        raise ConfigurationError(
            "a chiller plant needs a weather trace (wet-bulb drives "
            "its COP and economizer)"
        )
    if wx is not None and plant is None:
        raise ConfigurationError(
            "a weather trace needs a chiller plant to act on"
        )
    trace = scenario.trace
    total = trace.duration
    t_max = testbed.config.t_max
    inj = injector if injector is not None else FaultInjector(scenario.faults)
    # Auto-reset on scenario start: a fresh cooler copy (set point kept,
    # PI state zeroed) so back-to-back scenarios can never leak integral
    # state between runs.
    cooler = testbed.fresh_cooler()
    sim = RoomSimulation(testbed.room, cooler, engine=sim_engine)
    # Per-run plant copy: mode machine starts mechanical and acts on
    # this run's cooler, so scenarios can't leak hysteresis state.
    run_plant = (
        replace(plant, cooling_unit=cooler, _mode="mechanical")
        if plant is not None
        else None
    )
    inj.attach_simulation(sim)
    if attach_injector:
        controller.attach_fault_injector(inj)
    sensor = TemperatureSensor(
        rng=np.random.default_rng(
            np.random.SeedSequence(
                entropy=scenario.faults.seed,
                spawn_key=(_SENSOR_SPAWN_KEY,),
            )
        ),
        noise_std=0.02,
        resolution=0.01,
    )
    n = testbed.n_machines
    caps = np.array(
        [pm.capacity for pm in testbed.power_models], dtype=float
    )
    substeps = max(1, int(round(control_dt / sim_dt)))
    energy = 0.0
    server_energy = 0.0
    water: Optional[float] = (
        0.0 if run_plant is not None and run_plant.tower is not None
        else None
    )
    violation = 0.0
    offered_ts = 0.0
    served_ts = 0.0
    max_t = -math.inf
    on_set_changes = 0
    prev_on: Optional[frozenset] = None
    warm_started = False
    t = 0.0
    with obs.record_run(
        "control.demand_loop",
        inputs={
            "scenario": scenario.name,
            "controller": controller_name,
            "duration": total,
        },
    ) as rec:
        while t < total - 1e-9:
            inj.advance(t)
            offered = inj.offered_load(trace.load_at(t))
            if feed_readings:
                readings = inj.filter_readings(
                    t, sensor.read_many(sim.t_cpu)
                )
                controller.observe_readings(t, readings)
            if feed_state and warm_started:
                controller.observe_thermal_state(
                    t, sim.t_cpu.copy(), sim.t_box.copy(), sim.t_room
                )
            try:
                controller.observe(t, offered)
            except InfeasibleError:
                pass  # beyond-capacity demand: hold the current plan
            plan = controller.plan
            failed = inj.failed_machines
            plan_loads = np.zeros(n)
            mask = np.zeros(n, dtype=bool)
            if plan is not None:
                for i in plan.on_ids:
                    if i in failed:
                        continue
                    plan_loads[i] = float(plan.loads[i])
                    mask[i] = True
            current_on = frozenset(
                int(i) for i in np.flatnonzero(mask)
            )
            if prev_on is not None and current_on != prev_on:
                on_set_changes += 1
            prev_on = current_on
            loads = _serve(offered, plan_loads, caps, mask)
            powers = _node_powers(testbed, loads, mask)
            sim.set_node_powers(powers, on_mask=mask)
            if plan is not None:
                sim.set_set_point(plan.t_sp)
            if not warm_started:
                # Start settled: the interesting dynamics are the demand
                # transients, not the cold-room boot.
                state = sim.steady_state(
                    powers=powers, on_mask=mask,
                    set_point=sim.cooler.set_point,
                )
                sim.t_cpu = state.t_cpu.copy()
                sim.t_box = state.t_box.copy()
                sim.t_room = float(state.t_room)
                sim.t_ac = float(state.t_ac)
                warm_started = True
            on_idx = np.flatnonzero(mask)
            for k in range(substeps):
                t_sub = t + k * sim_dt
                offered_sub = inj.offered_load(trace.load_at(t_sub))
                loads = _serve(offered_sub, plan_loads, caps, mask)
                powers = _node_powers(testbed, loads, mask)
                sim.set_node_powers(powers, on_mask=mask)
                sim.step(sim_dt)
                servers = float(powers.sum())
                server_energy += servers * sim_dt
                if run_plant is None:
                    energy += sim.total_power * sim_dt
                else:
                    # Same heat removal, weather-priced electricity:
                    # the coil's q_cool is what the room physics
                    # settled on; the plant converts it to watts at
                    # this wet-bulb in the hysteretic mode in force.
                    t_wb = wx.wetbulb_at(t_sub)
                    run_plant.advance_mode(t_wb)
                    energy += (
                        servers
                        + run_plant.electrical_power(cooler.q_cool, t_wb)
                    ) * sim_dt
                    rate = run_plant.water_rate(cooler.q_cool, t_wb)
                    if rate is not None and water is not None:
                        water += rate * sim_dt
                hottest = (
                    float(np.max(sim.t_cpu[on_idx]))
                    if on_idx.size
                    else float(sim.t_room)
                )
                max_t = max(max_t, hottest)
                if hottest > t_max + 1e-6:
                    violation += sim_dt
                offered_ts += offered_sub * sim_dt
                served_ts += float(loads.sum()) * sim_dt
            t += control_dt
        result = DemandLoopResult(
            scenario=scenario.name,
            controller=controller_name,
            duration=total,
            violation_seconds=violation,
            energy_joules=energy,
            offered_task_seconds=offered_ts,
            served_task_seconds=served_ts,
            shed_task_seconds=max(0.0, offered_ts - served_ts),
            reconfigurations=int(
                getattr(controller, "reconfigurations", 0)
            ),
            suppressed=int(getattr(controller, "suppressed", 0)),
            on_set_changes=on_set_changes,
            max_t_cpu=max_t,
            horizon_solves=int(getattr(controller, "horizon_solves", 0)),
            fallbacks=int(getattr(controller, "fallbacks", 0)),
            precools=int(getattr(controller, "precools", 0)),
            server_energy_joules=server_energy,
            water_liters=water,
        )
        if rec is not None:
            rec.outcome.update(
                violation_seconds=violation,
                energy_joules=energy,
                on_set_changes=on_set_changes,
            )
    return result


# --------------------------------------------------------------------- #
# Campaign sweep and document
# --------------------------------------------------------------------- #


def _build_controller(
    name: str,
    context,
    scenario: DemandScenario,
    injector: FaultInjector,
    *,
    horizon: int,
    control_dt: float,
    plant: LinearizedPlant,
):
    """(controller, attach_injector, feed_readings, feed_state)."""
    if name == "reactive":
        return RuntimeController(context.optimizer), True, False, False
    if name == "resilient":
        return ResilientController(context.optimizer), True, True, False
    if name == "mpc":
        controller = MPCController(
            context.optimizer,
            plant,
            forecast=scenario.trace.load_at,
            horizon=horizon,
        )
        return controller, True, False, True
    if name == "oracle":
        return (
            _OracleController(
                context.testbed, context.optimizer, injector
            ),
            False,
            False,
            False,
        )
    raise ConfigurationError(f"unknown campaign controller {name!r}")


def _weather_context(
    context,
    scenario: DemandScenario,
    chiller: Optional[ChillerPlant],
    weather: Optional[WeatherTrace],
    control_dt: float,
):
    """Context whose optimizer prices cooling at this scenario's weather.

    Re-derives the paper's lumped cooling constant ``c`` (Eq. 10) as a
    local linearization of the chiller plant at the scenario's mean
    wet-bulb and expected cooling load, then rebuilds the optimizer on
    the re-linearized model.  Without weather the context passes through
    unchanged.
    """
    if chiller is None or weather is None:
        return context
    import dataclasses

    from repro.core.optimizer import JointOptimizer

    wx = scenario.weather if scenario.weather is not None else weather
    wb = wx.mean(dt=control_dt)
    probe = replace(chiller, _mode="mechanical")
    probe.advance_mode(wb)
    # Expected heat to remove: the fitted power law at the scenario's
    # mean demand, with a machine count big enough to carry it.
    model = context.model
    mean_load = float(np.mean(scenario.trace.sample(control_dt)))
    capacity = context.testbed.total_capacity
    n = context.testbed.n_machines
    n_est = max(1, math.ceil(mean_load / max(capacity / n, 1e-9)))
    q_ref = max(model.power.w1 * mean_load + model.power.w2 * n_est, 0.0)
    model2 = chiller.linearized_model(
        model, wb, q_ref, mode=probe.mode
    )
    return dataclasses.replace(
        context, optimizer=JointOptimizer(model2)
    )


def run_mpc_campaign(
    seed: int = 2012,
    n_machines: int = 6,
    *,
    quick: bool = False,
    horizon: int = 6,
    scenarios: Optional[Sequence[DemandScenario]] = None,
    control_dt: float = 60.0,
    sim_dt: float = 2.0,
    context=None,
    sim_engine: str = "numpy",
    chiller: Optional[ChillerPlant] = None,
    weather: Optional[WeatherTrace] = None,
) -> tuple[dict, dict]:
    """Sweep demand scenarios over the reactive/MPC/oracle controllers.

    Returns ``(results, document)``: the raw per-run
    :class:`DemandLoopResult` objects keyed ``results[scenario][name]``,
    and the ``mpc.json`` document (schema:
    :func:`repro.obs.export.validate_mpc`).  The whole campaign is a
    pure function of ``(seed, n_machines, scenarios, horizon)``.

    With ``weather`` (and optionally an explicit ``chiller``), the
    campaign turns weather-aware: every run is re-priced through the
    chiller plant, a ``heat-wave`` scenario joins the built-in set, and
    each scenario's optimizer operates on the fitted model re-linearized
    at that scenario's mean wet-bulb and expected cooling load
    (:meth:`~repro.thermal.plant.ChillerPlant.linearized_model`) — the
    Eq. 10 seam: the closed form, the MPC LP, and the subset scorer run
    structurally unchanged per operating point.
    """
    if context is None:
        from repro.experiments.common import default_context

        context = default_context(
            seed=seed, n_machines=n_machines, sim_engine=sim_engine
        )
    testbed = context.testbed
    if chiller is not None and weather is None:
        raise ConfigurationError(
            "a chiller plant needs a weather trace (wet-bulb drives "
            "its COP and economizer)"
        )
    if weather is not None and chiller is None:
        chiller = default_plant(testbed.fresh_cooler())
    entries = (
        list(scenarios)
        if scenarios is not None
        else demand_scenarios(
            testbed.total_capacity, seed=seed, quick=quick
        )
    )
    if weather is not None and scenarios is None:
        entries.append(
            heat_wave_scenario(
                testbed.total_capacity,
                seed=seed,
                quick=quick,
                base_wetbulb=weather.mean(dt=3600.0),
            )
        )
    plant = LinearizedPlant.from_testbed(testbed, dt=control_dt)
    results: dict = {}
    with obs.timed("control/mpc_campaign"):
        for scenario in entries:
            scenario_context = _weather_context(
                context, scenario, chiller, weather, control_dt
            )
            runs: dict = {}
            for name in MPC_CONTROLLERS:
                injector = FaultInjector(scenario.faults)
                controller, attach, readings, state = _build_controller(
                    name, scenario_context, scenario, injector,
                    horizon=horizon, control_dt=control_dt, plant=plant,
                )
                runs[name] = run_demand_loop(
                    testbed,
                    controller,
                    scenario,
                    injector=injector,
                    control_dt=control_dt,
                    sim_dt=sim_dt,
                    attach_injector=attach,
                    feed_readings=readings,
                    feed_state=state,
                    controller_name=name,
                    sim_engine=sim_engine,
                    plant=chiller,
                    weather=weather,
                )
            results[scenario.name] = runs
        obs.set_span_attributes(
            scenarios=len(entries), horizon=horizon
        )
    document = _campaign_document(
        entries,
        results,
        seed=seed,
        n_machines=testbed.n_machines,
        horizon=horizon,
        control_dt=control_dt,
        sim_dt=sim_dt,
        capacity=testbed.total_capacity,
    )
    if weather is not None:
        document["weather"] = {
            "mean_wetbulb_k": weather.mean(dt=3600.0),
            "economizer": chiller.economizer is not None,
            "cooling_tower": chiller.tower is not None,
        }
    return results, document


def _campaign_document(
    scenarios: Sequence[DemandScenario],
    results: dict,
    *,
    seed: int,
    n_machines: int,
    horizon: int,
    control_dt: float,
    sim_dt: float,
    capacity: float,
) -> dict:
    entry_rows = []
    scenario_rows = []
    dominance = []
    for scenario in scenarios:
        runs = results[scenario.name]
        oracle_energy = runs["oracle"].energy_joules
        controllers = {}
        for name in MPC_CONTROLLERS:
            run = runs[name]
            row = run.to_dict()
            row["energy_overhead_vs_oracle"] = (
                (run.energy_joules - oracle_energy) / oracle_energy
                if oracle_energy > 0.0
                else None
            )
            controllers[name] = row
            entry_rows.append(
                {"scenario": scenario.name, "controller": name, **row}
            )
        mpc_run = runs["mpc"]
        reactive_run = runs["reactive"]
        dominance.append(
            {
                "scenario": scenario.name,
                "flash_crowd": scenario.flash_crowd,
                "mpc_violation_seconds": mpc_run.violation_seconds,
                "reactive_violation_seconds":
                    reactive_run.violation_seconds,
                "mpc_energy_joules": mpc_run.energy_joules,
                "reactive_energy_joules": reactive_run.energy_joules,
                "dominates": bool(
                    mpc_run.violation_seconds
                    < reactive_run.violation_seconds
                    and mpc_run.energy_joules
                    <= reactive_run.energy_joules
                ),
            }
        )
        scenario_rows.append(
            {
                "name": scenario.name,
                "description": scenario.description,
                "flash_crowd": scenario.flash_crowd,
                "duration": mpc_run.duration,
                "peak_load_fraction": (
                    scenario.trace.peak(dt=control_dt) / capacity
                    if capacity > 0.0
                    else None
                ),
                "controllers": controllers,
            }
        )
    return {
        "schema": 1,
        "kind": "mpc",
        "seed": seed,
        "machines": n_machines,
        "horizon": horizon,
        "control_dt": control_dt,
        "sim_dt": sim_dt,
        "entries": entry_rows,
        "scenarios": scenario_rows,
        "dominance": dominance,
    }
