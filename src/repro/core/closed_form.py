"""Closed-form optimal load distribution (paper Section III-A).

For a fixed set ``ON`` of powered machines, the Lagrangian analysis of the
paper yields (all sums over ``ON``):

- optimal cooling-air temperature (Eq. 21)::

      T_ac = (sum(K_i) - L) * w1 / sum(alpha_i / beta_i)

- optimal per-machine load (Eq. 22)::

      L_i = K_i - (sum(K_j) - L) * (alpha_i / beta_i) / sum(alpha_j / beta_j)

with ``K_i = (T_max - beta_i * w2 - gamma_i) / (beta_i * w1)`` (Eq. 19).
Because the Lagrange multipliers are strictly positive (Eqs. 15-16), every
machine runs exactly at ``T_max`` at the optimum (Eq. 17).

Two practical complications the paper glosses over are handled explicitly
and reported on the returned solution:

- **Actuator limits.**  The cooler cannot supply arbitrarily cold or warm
  air.  When Eq. 21 lands outside the achievable band, the supply
  temperature is clamped and loads are re-derived for the clamped value by
  solving the *common-temperature* generalization of Eq. 18: find the
  temperature ``T <= T_max`` that all active machines share such that loads
  sum to ``L``.  (Eq. 18/22 is the special case ``T == T_max``.)
- **Non-negativity.**  At low loads Eq. 22 can assign negative load to
  thermally disadvantaged machines.  An active-set loop pins those machines
  at zero load (idle) and re-solves over the rest, exactly what adding
  ``L_i >= 0`` multipliers to the KKT system would do.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro import obs
from repro.obs import trace as _trace
from repro.obs import watchdog as _watchdog
from repro.errors import ConfigurationError, InfeasibleError
from repro.core.model import SystemModel

#: Numerical slack used for feasibility comparisons (K and tasks/s).
_TOL = 1e-9


@dataclass(frozen=True)
class ClosedFormSolution:
    """Result of the closed-form optimization for a fixed ON set.

    Attributes
    ----------
    loads:
        Dense per-machine loads (tasks/s); zero for machines that are off
        or pinned idle by the active-set repair.
    on_ids:
        Machines drawing power (the input ON set, sorted).
    active_ids:
        Machines actually carrying load (subset of ``on_ids``).
    t_ac:
        Supply-air temperature after clamping, K.
    t_ac_unclamped:
        Raw Eq. 21 value before the cooler's limits, K.
    t_sp:
        Set point to command so the loop settles at ``t_ac`` (via the
        fitted actuation map), K.
    common_temperature:
        The CPU temperature shared by all active machines, K.  Equals
        ``T_max`` whenever Eq. 21 was not clamped.
    predicted_t_cpu:
        Model-predicted CPU temperature for every machine (Eq. 8); room
        temperature is not modelled for off machines, reported as NaN.
    predicted_server_power:
        Model-predicted per-machine power, W (Eq. 9; zero when off).
    predicted_cooling_power:
        Model-predicted cooler draw, W (Eq. 10).
    clamped:
        Whether the cooler band clipped Eq. 21.
    repaired:
        Whether the active-set loop had to pin any machine at zero load.
    """

    loads: np.ndarray
    on_ids: tuple[int, ...]
    active_ids: tuple[int, ...]
    t_ac: float
    t_ac_unclamped: float
    t_sp: float
    common_temperature: float
    predicted_t_cpu: np.ndarray
    predicted_server_power: np.ndarray
    predicted_cooling_power: float
    clamped: bool
    repaired: bool

    @property
    def total_load(self) -> float:
        """Sum of assigned loads, tasks/s."""
        return float(np.sum(self.loads))

    @property
    def predicted_total_power(self) -> float:
        """Model-predicted room power: servers plus cooling, W."""
        return float(
            np.sum(self.predicted_server_power) + self.predicted_cooling_power
        )


def optimal_supply_temperature(
    model: SystemModel, on_ids: Sequence[int], total_load: float
) -> float:
    """Raw Eq. 21: the unconstrained optimal ``T_ac`` for ``on_ids``.

    May fall outside the cooler's achievable band; see
    :func:`solve_closed_form` for the clamped, load-consistent solution.
    """
    _validate(model, on_ids, total_load)
    k_sum = float(model.k_values(on_ids).sum())
    b_sum = sum(
        model.nodes[i].alpha / model.nodes[i].beta for i in on_ids
    )
    return (k_sum - total_load) * model.power.w1 / b_sum


def paper_loads(
    model: SystemModel, on_ids: Sequence[int], total_load: float
) -> np.ndarray:
    """Raw Eq. 22 loads (dense array), without clamping or repair.

    This is the paper's formula verbatim; it can produce negative entries
    at low loads.  :func:`solve_closed_form` is the production entry point.
    """
    _validate(model, on_ids, total_load)
    k = model.k_values(on_ids)
    b = np.array(
        [model.nodes[i].alpha / model.nodes[i].beta for i in on_ids]
    )
    deficit = float(k.sum()) - total_load
    loads = np.zeros(model.node_count)
    loads[list(on_ids)] = k - deficit * b / float(b.sum())
    return loads


def solve_closed_form(
    model: SystemModel,
    on_ids: Sequence[int],
    total_load: float,
    enforce_capacity: bool = True,
) -> ClosedFormSolution:
    """Optimal loads and cooling temperature for a fixed ON set.

    Implements Eqs. 18-22 with actuator clamping, non-negativity repair
    and (optionally) per-machine capacity limits.

    Raises
    ------
    InfeasibleError
        If the ON set cannot carry ``total_load`` within capacity, or no
        achievable supply temperature keeps every CPU at or below
        ``T_max``.
    """
    with obs.timed("closed_form"):
        on = _validate(model, on_ids, total_load)
        if enforce_capacity:
            cap = sum(model.capacities[i] for i in on)
            if total_load > cap + _TOL:
                raise InfeasibleError(
                    f"load {total_load:.3f} exceeds ON-set capacity {cap:.3f}"
                )

        t_ac_raw = optimal_supply_temperature(model, on, total_load)
        t_ac = model.cooler.clamp_t_ac(t_ac_raw)
        clamped = abs(t_ac - t_ac_raw) > _TOL

        loads, common_t, active = _active_set_loads(
            model, on, total_load, t_ac, enforce_capacity
        )
        if common_t > model.t_max + 1e-6:
            # Capacity pinning (or an upward clamp of Eq. 21) concentrated
            # load on the remaining machines beyond T_max; the supply air
            # must run colder than Eq. 21 suggests.  The shared temperature
            # is monotone increasing in t_ac, so bisect.
            t_ac = _backoff_supply_temperature(
                model, on, total_load, t_ac, enforce_capacity
            )
            loads, common_t, active = _active_set_loads(
                model, on, total_load, t_ac, enforce_capacity
            )
            clamped = True
        repaired = len(active) < len(on) or clamped

        if common_t > model.t_max + 1e-6:
            raise InfeasibleError(
                f"even at T_ac={t_ac:.2f} K the shared CPU temperature "
                f"would be {common_t:.2f} K > T_max={model.t_max:.2f} K"
            )
        # Idle-but-on machines must also respect T_max.
        for i in on:
            idle_limit = model.nodes[i].max_supply_temperature(
                0.0, model.t_max, model.power
            )
            if loads[i] <= _TOL and t_ac > idle_limit + 1e-6:
                raise InfeasibleError(
                    f"idle machine {i} would exceed T_max at "
                    f"T_ac={t_ac:.2f} K"
                )

    with obs.timed("actuation"):
        server_power = np.zeros(model.node_count)
        t_cpu = np.full(model.node_count, np.nan)
        for i in on:
            server_power[i] = model.power.power(float(loads[i]))
            t_cpu[i] = model.nodes[i].cpu_temperature(t_ac, server_power[i])
        total_server = float(server_power.sum())
        t_sp = model.cooler.set_point_for(t_ac, total_server)
        cooling = model.cooler.cooling_power(t_sp, t_ac)

    solution = ClosedFormSolution(
        loads=loads,
        on_ids=tuple(on),
        active_ids=tuple(active),
        t_ac=t_ac,
        t_ac_unclamped=t_ac_raw,
        t_sp=t_sp,
        common_temperature=common_t,
        predicted_t_cpu=t_cpu,
        predicted_server_power=server_power,
        predicted_cooling_power=cooling,
        clamped=clamped,
        repaired=repaired,
    )
    wd = _watchdog._active
    if wd is not None:
        wd.check_solution(model, solution, total_load)
    return solution


def _validate(
    model: SystemModel, on_ids: Sequence[int], total_load: float
) -> list[int]:
    on = sorted(set(int(i) for i in on_ids))
    if len(on) != len(list(on_ids)):
        raise ConfigurationError(f"duplicate ids in ON set: {list(on_ids)}")
    if not on:
        raise ConfigurationError("ON set must not be empty")
    if on[0] < 0 or on[-1] >= model.node_count:
        raise ConfigurationError(
            f"ON set {on} out of range for {model.node_count} machines"
        )
    if total_load < 0.0:
        raise ConfigurationError(f"total load must be >= 0, got {total_load}")
    return on


def _common_temperature_loads(
    model: SystemModel,
    active: Sequence[int],
    total_load: float,
    t_ac: float,
) -> tuple[np.ndarray, float]:
    """Loads making every machine in ``active`` share one CPU temperature.

    Solving ``T = alpha_i * t_ac + beta_i * (w1 * L_i + w2) + gamma_i`` for
    ``L_i`` and imposing ``sum(L_i) == total_load`` gives a single linear
    equation for the shared temperature ``T``.
    """
    w1, w2 = model.power.w1, model.power.w2
    inv = np.array([1.0 / (model.nodes[i].beta * w1) for i in active])
    base = np.array(
        [
            (model.nodes[i].alpha * t_ac + model.nodes[i].gamma)
            / (model.nodes[i].beta * w1)
            + w2 / w1
            for i in active
        ]
    )
    common_t = (total_load + float(base.sum())) / float(inv.sum())
    loads = common_t * inv - base
    return loads, common_t


def _active_set_loads(
    model: SystemModel,
    on: Sequence[int],
    total_load: float,
    t_ac: float,
    enforce_capacity: bool,
) -> tuple[np.ndarray, float, list[int]]:
    """Active-set loop: pin negative loads at zero (and, optionally,
    over-capacity loads at capacity), re-solving the common-temperature
    system over the remainder."""
    active = list(on)
    pinned_at_cap: dict[int, float] = {}
    remaining = total_load
    for _ in range(2 * len(on) + 1):
        obs.count("closed_form.active_set_rounds")
        if _trace._tracing:
            _trace.add_event(
                "closed_form.active_set_round",
                active=len(active),
                pinned=len(pinned_at_cap),
                remaining=remaining,
            )
        if not active:
            if remaining > _TOL:
                raise InfeasibleError(
                    "no machine can accept the remaining load within T_max"
                )
            loads = np.zeros(model.node_count)
            for i, cap_load in pinned_at_cap.items():
                loads[i] = cap_load
            hottest = max(
                model.nodes[i].cpu_temperature(
                    t_ac, model.power.power(cap_load)
                )
                for i, cap_load in pinned_at_cap.items()
            ) if pinned_at_cap else -np.inf
            return loads, hottest, []
        partial, common_t = _common_temperature_loads(
            model, active, remaining, t_ac
        )
        most_negative = int(np.argmin(partial))
        if partial[most_negative] < -_TOL:
            del active[most_negative]
            continue
        if enforce_capacity:
            over = [
                j
                for j, i in enumerate(active)
                if partial[j] > model.capacities[i] + _TOL
            ]
            if over:
                worst = max(
                    over, key=lambda j: partial[j] - model.capacities[active[j]]
                )
                machine = active[worst]
                pinned_at_cap[machine] = model.capacities[machine]
                remaining -= model.capacities[machine]
                del active[worst]
                continue
        loads = np.zeros(model.node_count)
        for j, i in enumerate(active):
            loads[i] = max(0.0, float(partial[j]))
        for i, cap_load in pinned_at_cap.items():
            loads[i] = cap_load
        if pinned_at_cap:
            common_t = max(
                common_t,
                max(
                    model.nodes[i].cpu_temperature(
                        t_ac, model.power.power(l)
                    )
                    for i, l in pinned_at_cap.items()
                ),
            )
        return loads, common_t, sorted(active + list(pinned_at_cap))
    raise InfeasibleError("active-set repair failed to converge")


def _backoff_supply_temperature(
    model: SystemModel,
    on: Sequence[int],
    total_load: float,
    t_ac_high: float,
    enforce_capacity: bool,
) -> float:
    """Bisect the largest ``t_ac`` whose repaired loads respect ``T_max``."""
    lo = model.cooler.t_ac_min
    _, common_lo, _ = _active_set_loads(
        model, on, total_load, lo, enforce_capacity
    )
    if common_lo > model.t_max + 1e-6:
        raise InfeasibleError(
            f"load {total_load:.3f} cannot be served within T_max even at "
            f"the coldest supply temperature {lo:.2f} K"
        )
    hi = t_ac_high
    for _ in range(80):
        obs.count("closed_form.backoff_bisections")
        mid = 0.5 * (lo + hi)
        _, common_mid, _ = _active_set_loads(
            model, on, total_load, mid, enforce_capacity
        )
        if common_mid > model.t_max:
            hi = mid
        else:
            lo = mid
        if hi - lo < 1e-9:
            break
    return lo


def kkt_multipliers(
    model: SystemModel, on_ids: Sequence[int]
) -> tuple[float, np.ndarray]:
    """The Lagrange multipliers of the paper's KKT system (Eqs. 15-16).

    Returns ``(lambda, mu)`` where ``mu[j]`` corresponds to ``on_ids[j]``.
    Both are strictly positive, which is the paper's argument that the
    temperature constraints are active at the optimum (Eq. 17).
    """
    on = _validate(model, on_ids, 0.0)
    b_sum = sum(model.nodes[i].alpha / model.nodes[i].beta for i in on)
    lam = model.cooler.c_f_ac * model.power.w1 / b_sum
    mu = np.array(
        [lam / (model.nodes[i].beta * model.power.w1) for i in on]
    )
    return lam, mu
