"""End-to-end joint optimizer: the package's primary public entry point.

:class:`JointOptimizer` wires together the pieces of Section III: given the
fitted :class:`~repro.core.model.SystemModel` and a total load ``L``, it

1. chooses the set of machines to power on (Section III-B) — via the
   paper's event-based :class:`~repro.core.consolidation.ConsolidationIndex`
   (default), the exact Dinkelbach scan, or brute force;
2. computes the closed-form optimal load split and cooling-air temperature
   for that set (Section III-A, Eqs. 18-22);
3. translates the desired supply temperature into the set point to command
   on the cooling unit, using the empirically fitted actuation map
   (Section IV-B).

Because the pre-processing of Algorithm 1 is load-independent, one
:class:`JointOptimizer` amortizes it across any number of
:meth:`~JointOptimizer.solve` queries — the on-line cost per query is
O(log n) for the selection plus O(n) for the closed form, matching the
paper's complexity claims.
"""

from __future__ import annotations

import pathlib
from collections import OrderedDict
from dataclasses import dataclass
from typing import Literal, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.errors import ConfigurationError, InfeasibleError
from repro.core.closed_form import ClosedFormSolution, solve_closed_form
from repro.core.consolidation import (
    ConsolidationIndex,
    consolidation_cache_key,
)
from repro.core.model import SystemModel
from repro.core.select import brute_force_subset, optimal_subset
from repro.core.sharding import PodShardedIndex

SelectionMethod = Literal["index", "sharded", "exact", "brute"]
CostModel = Literal["paper", "actuated"]

#: Interior grid points probed in one batch to shrink the ``maxL``
#: bisection bracket before the sequential refinement loop.
_BRACKET_PROBES = 14


@dataclass(frozen=True)
class OptimizationResult:
    """Complete output of one :meth:`JointOptimizer.solve` call.

    Attributes
    ----------
    loads:
        Dense per-machine loads, tasks/s (zeros for off machines).
    on_ids:
        Machines to power on.
    t_ac:
        Supply-air temperature to aim for, K.
    t_sp:
        Set point to command on the cooling unit, K.
    solution:
        Full closed-form record (predicted temperatures and powers).
    method:
        Selection method that produced the ON set ("all" when
        consolidation was disabled).
    """

    loads: np.ndarray
    on_ids: tuple[int, ...]
    t_ac: float
    t_sp: float
    solution: ClosedFormSolution
    method: str

    @property
    def predicted_total_power(self) -> float:
        """Model-predicted room power, W."""
        return self.solution.predicted_total_power


class JointOptimizer:
    """Holistic computing + cooling optimizer over a fitted system model.

    Parameters
    ----------
    model:
        Fitted coefficients of the machine room (from profiling).
    selection:
        How to pick the ON set when consolidating: ``"index"`` uses the
        paper's Algorithms 1-2 (with the exact re-scoring window),
        ``"sharded"`` the pod-partitioned
        :class:`~repro.core.sharding.PodShardedIndex` (thousands of
        machines; the monolithic pre-processing walls out near n = 500),
        ``"exact"`` the Dinkelbach per-``k`` scan, ``"brute"`` exhaustive
        search (small n only).
    cost_model:
        Cost coefficients used during subset selection.  ``"paper"``
        follows Eq. 23 verbatim (``rho = c*f_ac*w1``, set point treated as
        fixed).  ``"actuated"`` composes Eq. 10 with the fitted actuation
        map, which accounts for the set point moving together with the
        supply temperature; exposed for the ablation study.
    index_cache_dir:
        Optional directory of persisted Algorithm-1 indexes.  When set,
        the lazy :attr:`index` build first looks for a ``.npz`` named by
        the parameters' content hash and loads it instead of re-running
        the O(n^3 log n) pre-processing; a fresh build is written back
        for the next run.  Stale or corrupt files are rebuilt, never
        trusted.  With ``selection="sharded"`` the same directory holds
        the per-pod documents.
    pods:
        Pod count for ``selection="sharded"`` (default: sized so each
        pod holds about
        :data:`~repro.core.sharding.DEFAULT_POD_MACHINES` machines).
        Rejected with any other selection method — it would silently do
        nothing.
    """

    def __init__(
        self,
        model: SystemModel,
        selection: SelectionMethod = "index",
        cost_model: CostModel = "paper",
        index_cache_dir: Optional[Union[str, pathlib.Path]] = None,
        pods: Optional[int] = None,
    ) -> None:
        if selection not in ("index", "sharded", "exact", "brute"):
            raise ConfigurationError(f"unknown selection method {selection!r}")
        if cost_model not in ("paper", "actuated"):
            raise ConfigurationError(f"unknown cost model {cost_model!r}")
        if pods is not None and selection != "sharded":
            raise ConfigurationError(
                f'pods={pods} only applies to selection="sharded" '
                f"(got selection={selection!r})"
            )
        self.model = model
        self.selection = selection
        self.cost_model = cost_model
        self.pods = None if pods is None else int(pods)
        self.index_cache_dir = (
            None if index_cache_dir is None else pathlib.Path(index_cache_dir)
        )
        self._index: Optional[ConsolidationIndex] = None
        self._sharded_index: Optional[PodShardedIndex] = None
        self._survivor_indexes: OrderedDict[
            frozenset, tuple[PodShardedIndex, list[int]]
        ] = OrderedDict()

    # ------------------------------------------------------------------ #
    # Cost coefficients of the subset-selection reduction (Eq. 23)
    # ------------------------------------------------------------------ #

    def _cost_coefficients(self) -> tuple[float, float]:
        """``(w2_eff, rho)`` for the selection problem.

        The load-dependent part of ``theta`` is identical for every subset
        and never affects the argmin, so it is dropped (the paper notes the
        same).
        """
        m = self.model
        if self.cost_model == "paper":
            return m.power.w2, m.cooler.c_f_ac * m.power.w1
        # "actuated": P_ac = c_f_ac * (T_SP - T_ac) with
        # T_SP = e0 + e1*T_ac + e2*sum(P).  Substituting and collecting the
        # k- and t-dependent terms of Eq. 23 gives effective coefficients.
        c = m.cooler.c_f_ac
        e1 = m.cooler.actuation_t_ac
        e2 = m.cooler.actuation_power
        slope = c * (1.0 - e1)
        if slope <= 0.0:
            raise ConfigurationError(
                "actuated cost model needs actuation_t_ac < 1 "
                f"(got {e1}); the supply knob would not save energy"
            )
        w2_eff = m.power.w2 * (1.0 + c * e2)
        rho_eff = slope * m.power.w1
        return w2_eff, rho_eff

    def _t_bounds(self) -> tuple[float, float]:
        """Particle-time bounds implied by the cooler band (t = T_ac/w1)."""
        w1 = self.model.power.w1
        return self.model.cooler.t_ac_min / w1, self.model.cooler.t_ac_max / w1

    @property
    def index(self) -> ConsolidationIndex:
        """The lazily built Algorithm-1 structure (shared across queries).

        With ``index_cache_dir`` set, a persisted index for the same
        parameters is loaded instead of rebuilt, and fresh builds are
        written back to the cache.
        """
        if self._index is None:
            w2_eff, rho = self._cost_coefficients()
            t_min, t_max = self._t_bounds()
            kwargs = dict(
                pairs=self.model.ab_pairs(),
                w2=w2_eff,
                rho=rho,
                t_min=t_min,
                t_max=t_max,
                capacities=self.model.capacities,
            )
            if self.index_cache_dir is not None:
                self._index = self._cached_index(kwargs)
            else:
                obs.count("optimizer.index_builds")
                self._index = ConsolidationIndex(**kwargs)
        return self._index

    def _cached_index(self, kwargs: dict) -> ConsolidationIndex:
        from repro.core.serialization import (
            load_consolidation_index,
            save_consolidation_index,
        )

        key = consolidation_cache_key(
            kwargs["pairs"],
            w2=kwargs["w2"],
            rho=kwargs["rho"],
            t_min=kwargs["t_min"],
            t_max=kwargs["t_max"],
            capacities=kwargs["capacities"],
        )
        path = self.index_cache_dir / f"consolidation-{key[:24]}.npz"
        if path.exists():
            try:
                index = load_consolidation_index(path, expected_key=key)
                obs.count("optimizer.index_cache_hits")
                return index
            except ConfigurationError:
                obs.count("optimizer.index_cache_invalid")
        obs.count("optimizer.index_cache_misses")
        obs.count("optimizer.index_builds")
        index = ConsolidationIndex(**kwargs)
        self.index_cache_dir.mkdir(parents=True, exist_ok=True)
        save_consolidation_index(index, path)
        return index

    @property
    def sharded_index(self) -> PodShardedIndex:
        """The lazily built pod-sharded structure (shared across queries).

        Pod tables go through the same ``.npz`` cache directory as the
        monolithic index when ``index_cache_dir`` is set — each pod is
        keyed by its own content hash, so pods are reused across runs
        (and across optimizers over the same machine subsets).
        """
        if self._sharded_index is None:
            w2_eff, rho = self._cost_coefficients()
            t_min, t_max = self._t_bounds()
            obs.count("optimizer.sharded_index_builds")
            self._sharded_index = PodShardedIndex(
                pairs=self.model.ab_pairs(),
                w2=w2_eff,
                rho=rho,
                t_min=t_min,
                t_max=t_max,
                capacities=self.model.capacities,
                pods=self.pods,
                cache_dir=self.index_cache_dir,
            )
        return self._sharded_index

    @property
    def query_index(self):
        """The index answering this optimizer's batched/selection queries.

        ``selection="sharded"`` routes to :attr:`sharded_index`; every
        other method uses the monolithic :attr:`index`.  The serving
        daemon warms and queries through this property so a sharded
        optimizer serves n = 5000 rooms without further wiring.
        """
        if self.selection == "sharded":
            return self.sharded_index
        return self.index

    def _survivor_index(
        self, excluded: frozenset
    ) -> tuple[PodShardedIndex, list[int]]:
        """A pod-sharded index over the surviving (non-excluded) machines.

        Exclusions invalidate the pre-computed global tables (they are
        prefix-based), but fault-campaign replans re-probe the same
        degraded room many times — so the survivors get their own
        sharded index, memoized per exclusion set.  Sharded builds are
        ``sum_p m_p^3``, cheap enough to amortize within a single
        bracketing pass even at n = 500 (a monolithic survivor rebuild
        would cost more than the sequential solves it replaces).

        Returns ``(index, survivors)`` where ``survivors[j]`` maps the
        index's local machine ``j`` back to the global id.
        """
        cached = self._survivor_indexes.get(excluded)
        if cached is not None:
            self._survivor_indexes.move_to_end(excluded)
            return cached
        survivors = [
            i for i in range(self.model.node_count) if i not in excluded
        ]
        w2_eff, rho = self._cost_coefficients()
        t_min, t_max = self._t_bounds()
        pods = self.pods
        if pods is not None:
            pods = max(1, min(pods, len(survivors)))
        obs.count("optimizer.survivor_index_builds")
        index = PodShardedIndex(
            pairs=[self.model.ab_pairs()[i] for i in survivors],
            w2=w2_eff,
            rho=rho,
            t_min=t_min,
            t_max=t_max,
            capacities=[self.model.capacities[i] for i in survivors],
            pods=pods,
            cache_dir=self.index_cache_dir,
        )
        while len(self._survivor_indexes) >= 4:
            self._survivor_indexes.popitem(last=False)
        self._survivor_indexes[excluded] = (index, survivors)
        return index, survivors

    # ------------------------------------------------------------------ #
    # Public API
    # ------------------------------------------------------------------ #

    def select_on_set(
        self,
        total_load: float,
        exclude: Optional[Sequence[int]] = None,
    ) -> list[int]:
        """Choose which machines to power on for ``total_load`` tasks/s.

        ``exclude`` removes machines from consideration (failed hardware,
        maintenance).  Exclusions invalidate the pre-computed index:
        ``selection="index"`` falls back to the exact per-query scan
        over the surviving machines (polynomial, exactly optimal), while
        ``selection="sharded"`` re-shards the survivors (memoized per
        exclusion set) so degraded queries stay fast at n = 5000.
        """
        if total_load <= 0.0:
            raise ConfigurationError(
                f"total load must be positive to select machines, got {total_load}"
            )
        excluded = set(int(i) for i in exclude) if exclude else set()
        unknown = excluded - set(range(self.model.node_count))
        if unknown:
            raise ConfigurationError(
                f"cannot exclude unknown machines: {sorted(unknown)}"
            )
        survivors = [
            i for i in range(self.model.node_count) if i not in excluded
        ]
        if not survivors:
            raise InfeasibleError("every machine is excluded")
        capacity = sum(self.model.capacities[i] for i in survivors)
        if total_load > capacity + 1e-9:
            raise InfeasibleError(
                f"load {total_load:.3f} exceeds surviving capacity "
                f"{capacity:.3f}"
            )
        if self.selection in ("index", "sharded") and not excluded:
            return self.query_index.query_refined(total_load)
        if self.selection == "sharded":
            index, survivor_ids = self._survivor_index(frozenset(excluded))
            return sorted(
                survivor_ids[j] for j in index.query_refined(total_load)
            )
        w2_eff, rho = self._cost_coefficients()
        t_min, t_max = self._t_bounds()
        pairs = [self.model.ab_pairs()[i] for i in survivors]
        capacities = [self.model.capacities[i] for i in survivors]
        solver = (
            brute_force_subset if self.selection == "brute" else optimal_subset
        )
        best, _ = solver(
            pairs,
            total_load,
            w2=w2_eff,
            rho=rho,
            theta=0.0,
            t_min=t_min,
            t_max=t_max,
            capacities=capacities,
        )
        return sorted(survivors[j] for j in best)

    def max_load_under_budget(
        self,
        power_budget: float,
        tolerance: float = 1e-4,
        exclude: Optional[Sequence[int]] = None,
    ) -> tuple[float, OptimizationResult]:
        """The paper's ``maxL`` question, answered end to end.

        Section III-B builds its algorithm around the dual problem: "with
        a given power budget P_b ... find the maximum load Lmax that the
        cluster can serve without violating P_b".  Related work (Gandhi
        et al., TAPA) optimizes this direction exclusively.  Because the
        model-predicted optimal power is monotone increasing in the load
        ("Lmax increases monotonously with P_b"), a bisection on the load
        against :meth:`solve` answers it exactly.

        Returns ``(max_load, result_at_max_load)``.

        Raises
        ------
        InfeasibleError
            If even the smallest feasible configuration exceeds the
            budget.
        """
        if power_budget <= 0.0:
            raise ConfigurationError(
                f"power budget must be positive, got {power_budget}"
            )
        excluded = set(int(i) for i in exclude) if exclude else set()
        capacity = sum(
            c
            for i, c in enumerate(self.model.capacities)
            if i not in excluded
        )

        def predicted(load: float) -> float:
            obs.count("optimizer.max_load_probes")
            return self.solve(
                load, exclude=sorted(excluded)
            ).predicted_total_power

        def predicted_many(loads: Sequence[float]) -> list[float]:
            """Batched probes for the bracketing grid.

            On the index paths one ``query_many`` answers every
            selection at once (amortizing the binary searches and
            warming the query memo for the sequential refinement);
            budget-infeasible probes report infinite power, which the
            monotone bracket treats as "over budget".  With a non-empty
            ``exclude`` the probes run against the memoized survivor
            index of :meth:`_survivor_index` — the bracket stays
            batched on exactly the path every fault-campaign replan
            takes (this used to bail to one sequential ``solve`` per
            probe; ``optimizer.max_load_fallback_solves`` counts the
            remaining non-index fallbacks so any regression here is
            observable).  The grid only steers the bracket: the final
            answer still comes from the exact sequential refinement.
            """
            loads = [float(v) for v in loads]
            obs.count("optimizer.max_load_probes", len(loads))
            if self.selection not in ("index", "sharded"):
                obs.count("optimizer.max_load_fallback_solves", len(loads))
                powers = []
                for load in loads:
                    try:
                        powers.append(
                            self.solve(
                                load, exclude=sorted(excluded)
                            ).predicted_total_power
                        )
                    except InfeasibleError:
                        powers.append(float("inf"))
                return powers
            if excluded:
                index, survivor_ids = self._survivor_index(
                    frozenset(excluded)
                )
            else:
                index, survivor_ids = self.query_index, None
            obs.count("optimizer.max_load_batched_probes", len(loads))
            on_sets = index.query_many(loads, skip_infeasible=True)
            powers = []
            for load, chosen in zip(loads, on_sets):
                if chosen is None:
                    powers.append(float("inf"))
                    continue
                if survivor_ids is not None:
                    chosen = [survivor_ids[j] for j in chosen]
                try:
                    solution = solve_closed_form(self.model, chosen, load)
                except InfeasibleError:
                    powers.append(float("inf"))
                    continue
                powers.append(solution.predicted_total_power)
            return powers

        with obs.record_run(
            "optimizer.max_load",
            inputs={"power_budget": float(power_budget)},
            method=self.selection,
        ) as rec:
            lo = 1e-6 * capacity
            if predicted(lo) > power_budget:
                raise InfeasibleError(
                    f"budget {power_budget:.1f} W cannot power even an "
                    "idle minimal configuration"
                )
            hi = capacity
            if predicted(hi) <= power_budget:
                result = self.solve(hi, exclude=sorted(excluded))
                max_load = hi
            else:
                # One batched grid pass shrinks the bracket by
                # ~(_BRACKET_PROBES + 1)x before the bisection refines it;
                # predicted power is monotone in the load, so the first
                # over-budget grid point bounds the answer from above.
                grid = np.linspace(lo, hi, _BRACKET_PROBES + 2)[1:-1]
                for load, power in zip(grid, predicted_many(grid)):
                    if power <= power_budget:
                        lo = float(load)
                    else:
                        hi = float(load)
                        break
                while hi - lo > tolerance * capacity:
                    mid = 0.5 * (lo + hi)
                    if predicted(mid) <= power_budget:
                        lo = mid
                    else:
                        hi = mid
                result = self.solve(lo, exclude=sorted(excluded))
                max_load = lo
            if rec is not None:
                rec.outcome.update(
                    max_load=max_load,
                    predicted_total_power=result.predicted_total_power,
                )
        return max_load, result

    def solve(
        self,
        total_load: float,
        consolidate: bool = True,
        on_ids: Optional[Sequence[int]] = None,
        exclude: Optional[Sequence[int]] = None,
    ) -> OptimizationResult:
        """Jointly optimal loads, ON set, and cooling temperature.

        Parameters
        ----------
        total_load:
            Total cluster load ``L``, tasks/s.
        consolidate:
            If false, keep every machine powered (method #6 of the paper's
            evaluation); if true, pick the optimal subset (method #8).
        on_ids:
            Explicit ON set override (used by the policy layer and by
            what-if analyses); supersedes ``consolidate``.
        exclude:
            Machines unavailable to any solution (failures/maintenance).
        """
        with obs.record_run(
            "optimizer.solve", inputs={"total_load": float(total_load)}
        ) as rec:
            excluded = set(int(i) for i in exclude) if exclude else set()
            with obs.timed("selection"):
                if on_ids is not None:
                    chosen = sorted(int(i) for i in on_ids)
                    overlap = excluded & set(chosen)
                    if overlap:
                        raise ConfigurationError(
                            f"explicit ON set includes excluded machines: "
                            f"{sorted(overlap)}"
                        )
                    method = "explicit"
                elif consolidate:
                    chosen = self.select_on_set(total_load, exclude=exclude)
                    method = self.selection
                else:
                    chosen = [
                        i
                        for i in range(self.model.node_count)
                        if i not in excluded
                    ]
                    method = "all"
            solution = solve_closed_form(self.model, chosen, total_load)
            obs.set_span_attributes(
                method=method,
                machines_on=len(solution.on_ids),
                t_ac=solution.t_ac,
                t_sp=solution.t_sp,
                clamped=solution.clamped,
                repaired=solution.repaired,
            )
            if rec is not None:
                rec.method = method
                rec.outcome.update(
                    machines_on=len(solution.on_ids),
                    t_ac=solution.t_ac,
                    t_sp=solution.t_sp,
                    predicted_total_power=solution.predicted_total_power,
                    clamped=solution.clamped,
                    repaired=solution.repaired,
                )
        return OptimizationResult(
            loads=solution.loads,
            on_ids=solution.on_ids,
            t_ac=solution.t_ac,
            t_sp=solution.t_sp,
            solution=solution,
            method=method,
        )
