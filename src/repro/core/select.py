"""Subset-selection problems of Section III-B.

The consolidation question — which machines to keep on — reduces (Eq. 23)
to the following abstraction.  With ``a_i = K_i`` and
``b_i = alpha_i / beta_i``, the model-predicted total power of running the
load ``L`` on a subset ``S`` of exactly ``k`` machines is::

    P_total(S) = k * w2 - rho * t(S) + theta
    t(S)       = (sum_{i in S} a_i - L) / sum_{i in S} b_i
    rho        = c * f_ac * w1
    theta      = c * f_ac * T_SP + w1 * L

so for each cardinality ``k`` the best subset maximizes the ratio ``t(S)``
(the paper's ``select(A, k, L)`` problem), and the overall optimum is found
by comparing the ``n`` per-``k`` champions.  Physically, ``t(S)`` is the
optimal supply temperature of Eq. 21 divided by ``w1``: the best subset is
the one that lets the cooler run warmest.

This module provides:

- :func:`max_load` — the paper's ``maxL(A, P_b, k)``: the largest load a
  power budget can serve on ``k`` machines (top-k particles at time ``t``);
- :func:`select_subset` — exact ``select(A, k, L)`` via Dinkelbach's
  algorithm for fractional programming (provably optimal, converges in a
  finite number of iterations because each step's subset is drawn from a
  finite family);
- :func:`optimal_subset` — the full consolidation optimum by scanning
  ``k``;
- :func:`brute_force_subset` — exponential reference used by the tests.

The event-based Algorithms 1-2 from the paper live in
:mod:`repro.core.consolidation`; they answer the same question with an
O(log n) online query after O(n^3 log n) pre-processing.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, InfeasibleError

#: Pair type of the abstraction: (a_i, b_i) with b_i > 0.
Pair = tuple[float, float]


def _validate_pairs(pairs: Sequence[Pair]) -> list[Pair]:
    if not pairs:
        raise ConfigurationError("need at least one (a, b) pair")
    out = []
    for a, b in pairs:
        if b <= 0.0:
            raise ConfigurationError(f"b must be positive, got pair ({a}, {b})")
        out.append((float(a), float(b)))
    return out


def coordinates_at(pairs: Sequence[Pair], t: float) -> np.ndarray:
    """Particle coordinates ``x_i(t) = a_i - t * b_i`` (Eq. 26)."""
    arr = np.asarray(pairs, dtype=float)
    return arr[:, 0] - t * arr[:, 1]


def top_k_at(pairs: Sequence[Pair], t: float, k: int) -> list[int]:
    """Indices of the ``k`` largest coordinates at time ``t``.

    Ties break toward the lower index, making results deterministic.
    """
    if not 1 <= k <= len(pairs):
        raise ConfigurationError(
            f"k must be in [1, {len(pairs)}], got {k}"
        )
    x = coordinates_at(pairs, t)
    # Stable argsort on the negated coordinates == descending order with
    # ties broken toward the lower index (same contract as the previous
    # Python sort, at numpy speed: this sits inside the Dinkelbach loop).
    order = np.argsort(-x, kind="stable")
    return sorted(int(i) for i in order[:k])


def max_load(pairs: Sequence[Pair], t: float, k: int) -> float:
    """The paper's ``maxL``: the largest load servable at particle time
    ``t`` using exactly ``k`` machines — the sum of the k largest
    coordinates (Eq. 26)."""
    chosen = top_k_at(pairs, t, k)
    x = coordinates_at(pairs, t)
    return float(sum(x[i] for i in chosen))


def ratio(pairs: Sequence[Pair], subset: Sequence[int], load: float) -> float:
    """The objective ``t(S) = (sum a - L) / sum b`` for a subset."""
    if not subset:
        raise ConfigurationError("subset must not be empty")
    a = sum(pairs[i][0] for i in subset)
    b = sum(pairs[i][1] for i in subset)
    return (a - load) / b


def select_subset(
    pairs: Sequence[Pair], k: int, load: float
) -> tuple[list[int], float]:
    """Exact ``select(A, k, L)``: the size-``k`` subset maximizing
    ``(sum a - L) / sum b``, via Dinkelbach iteration.

    Starting from any subset, repeatedly (1) evaluate its ratio ``t`` and
    (2) re-select the top-``k`` particles at time ``t``.  Each step weakly
    increases the ratio and the subset family is finite, so the iteration
    reaches a fixpoint, which is the global maximizer (standard fractional
    programming argument: ``max_S sum_{i in S}(a_i - t b_i) >= L - ...``
    changes sign exactly at the optimal ratio).

    Returns ``(subset, t_star)`` with the subset sorted.
    """
    ps = _validate_pairs(pairs)
    if not 1 <= k <= len(ps):
        raise ConfigurationError(f"k must be in [1, {len(ps)}], got {k}")
    subset = top_k_at(ps, 0.0, k)
    t = ratio(ps, subset, load)
    for _ in range(len(ps) * len(ps) + 2):
        candidate = top_k_at(ps, t, k)
        t_new = ratio(ps, candidate, load)
        if t_new <= t + 1e-15:
            return sorted(subset), t
        subset, t = candidate, t_new
    raise InfeasibleError("Dinkelbach iteration failed to converge")


@dataclass(frozen=True)
class SubsetChoice:
    """Outcome of the consolidation scan for one cardinality ``k``."""

    k: int
    subset: tuple[int, ...]
    t_star: float
    t_clamped: float
    predicted_power: float
    feasible: bool


def optimal_subset(
    pairs: Sequence[Pair],
    load: float,
    w2: float,
    rho: float,
    theta: float,
    t_min: Optional[float] = None,
    t_max: Optional[float] = None,
    capacities: Optional[Sequence[float]] = None,
) -> tuple[list[int], list[SubsetChoice]]:
    """Full consolidation optimum: scan ``k`` and compare champions.

    Parameters
    ----------
    pairs, load:
        The ``(a_i, b_i)`` abstraction and the total load ``L``.
    w2, rho, theta:
        Cost coefficients of Eq. 23 (``P = k*w2 - rho*t + theta``).
    t_min, t_max:
        Optional particle-time bounds corresponding to the cooler's
        achievable supply band (``t = T_ac / w1``).  A champion whose
        ``t*`` falls below ``t_min`` cannot serve the load within the
        temperature constraint and is marked infeasible; one above
        ``t_max`` is clamped (the cooler simply runs at its warmest and
        the machines sit below ``T_max``).
    capacities:
        Optional per-machine capacities in load units; a subset whose
        total capacity is below ``load`` is infeasible regardless of its
        ratio.

    Returns
    -------
    (best_subset, per_k_choices):
        The overall optimal ON set and the full scan record (useful for
        diagnostics and the benches).

    Raises
    ------
    InfeasibleError
        If no cardinality yields a feasible subset.
    """
    ps = _validate_pairs(pairs)
    if rho <= 0.0:
        raise ConfigurationError(f"rho must be positive, got {rho}")
    choices: list[SubsetChoice] = []
    for k in range(1, len(ps) + 1):
        subset, t_star = select_subset(ps, k, load)
        feasible = True
        if capacities is not None:
            cap = sum(capacities[i] for i in subset)
            feasible = cap + 1e-9 >= load
        if t_min is not None and t_star < t_min - 1e-12:
            feasible = False
        t_clamped = t_star if t_max is None else min(t_star, t_max)
        power = k * w2 - rho * t_clamped + theta
        choices.append(
            SubsetChoice(
                k=k,
                subset=tuple(subset),
                t_star=t_star,
                t_clamped=t_clamped,
                predicted_power=power,
                feasible=feasible,
            )
        )
    feasible_choices = [c for c in choices if c.feasible]
    if not feasible_choices:
        raise InfeasibleError(
            f"no subset of any size can serve load {load} within constraints"
        )
    best = min(feasible_choices, key=lambda c: (c.predicted_power, c.k))
    return list(best.subset), choices


def brute_force_subset(
    pairs: Sequence[Pair],
    load: float,
    w2: float,
    rho: float,
    theta: float,
    t_min: Optional[float] = None,
    t_max: Optional[float] = None,
    capacities: Optional[Sequence[float]] = None,
) -> tuple[list[int], float]:
    """Exhaustive reference solver (O(n * 2^n)); tests only.

    Returns the optimal subset and its predicted power.
    """
    ps = _validate_pairs(pairs)
    n = len(ps)
    if n > 22:
        raise ConfigurationError(
            f"brute force limited to 22 machines, got {n}"
        )
    best_subset: Optional[tuple[int, ...]] = None
    best_power = math.inf
    for k in range(1, n + 1):
        for combo in itertools.combinations(range(n), k):
            if capacities is not None:
                if sum(capacities[i] for i in combo) + 1e-9 < load:
                    continue
            t = ratio(ps, combo, load)
            if t_min is not None and t < t_min - 1e-12:
                continue
            t_eff = t if t_max is None else min(t, t_max)
            power = k * w2 - rho * t_eff + theta
            if power < best_power - 1e-12 or (
                abs(power - best_power) <= 1e-12
                and (best_subset is None or combo < best_subset)
            ):
                best_power = power
                best_subset = combo
    if best_subset is None:
        raise InfeasibleError(
            f"no subset of any size can serve load {load} within constraints"
        )
    return list(best_subset), best_power
