"""The eight evaluation scenarios of the paper's Fig. 4.

An energy-control policy decides three things (Section IV-B): how load is
distributed, whether the AC temperature is tuned, and whether unused
machines are turned off.  The paper's scenario matrix:

====  ============  ==========  =============
#     distribution  AC control  consolidation
====  ============  ==========  =============
1     Even          no          no
2     Bottom-up     no          no
3     Bottom-up     no          yes
4     Even          yes         no
5     Bottom-up     yes         no
6     Optimal       yes         no
7     Bottom-up     yes         yes
8     Optimal       yes         yes
====  ============  ==========  =============

- **Even** — the standard load-balancing practice: equal share per machine.
- **Bottom-up** — "cool job allocation" (Bash & Forman [1]): fill machines
  up, coolest first.  On our simulated rack the coolest spots are at the
  bottom (index 0), but the ordering here is derived from the *fitted*
  thermal coefficients, not from positions, exactly as an operator without
  ground truth would have to do.
- **Optimal** — the paper's closed-form solution (Section III).
- **AC control** — the set point is pushed as high as the ``T_max``
  constraint allows for the chosen allocation; without AC control it stays
  at the conservative value that is safe even with every machine at full
  load.
- **Consolidation** — machines with no load are switched off instead of
  idling.

``extra_scenarios`` additionally provides *Even + consolidation* variants
(the paper's Fig. 8 legend shows an "Even" series in the consolidated
setting although the Fig. 4 matrix does not number one); they are marked
supplementary and excluded from the numbered reproduction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError, InfeasibleError
from repro.core.model import SystemModel
from repro.core.optimizer import JointOptimizer

Distribution = Literal["even", "bottom_up", "optimal"]


@dataclass(frozen=True)
class PolicyDecision:
    """What a policy commands: loads, power states, and the set point."""

    loads: np.ndarray
    on_ids: tuple[int, ...]
    t_sp: float
    t_ac_target: float
    scenario: str

    @property
    def total_load(self) -> float:
        """Sum of commanded loads, tasks/s."""
        return float(np.sum(self.loads))

    @property
    def machines_on(self) -> int:
        """Number of machines drawing power under this decision."""
        return len(self.on_ids)


def coolness_order(model: SystemModel) -> list[int]:
    """Machines sorted coolest-first from the fitted coefficients.

    Uses the predicted *idle* CPU temperature at the middle of the cooler
    band as the coolness proxy — the information an operator has after
    profiling, without access to ground-truth airflow.
    """
    t_ref = 0.5 * (model.cooler.t_ac_min + model.cooler.t_ac_max)
    idle = model.power.w2

    def idle_temp(i: int) -> float:
        return model.nodes[i].cpu_temperature(t_ref, idle)

    return sorted(range(model.node_count), key=lambda i: (idle_temp(i), i))


def even_loads(
    model: SystemModel, on_ids: Sequence[int], total_load: float
) -> np.ndarray:
    """Equal share per powered machine, spilling over at capacity.

    With homogeneous capacities (the testbed case) this is the plain
    ``L / n`` split; the spill loop only engages for heterogeneous racks.
    """
    on = sorted(on_ids)
    cap = sum(model.capacities[i] for i in on)
    if total_load > cap + 1e-9:
        raise InfeasibleError(
            f"even policy: load {total_load:.3f} exceeds capacity {cap:.3f}"
        )
    loads = np.zeros(model.node_count)
    remaining = total_load
    open_set = list(on)
    while open_set and remaining > 1e-12:
        share = remaining / len(open_set)
        saturated = [i for i in open_set if model.capacities[i] < share]
        if not saturated:
            for i in open_set:
                loads[i] += share
            remaining = 0.0
            break
        for i in saturated:
            loads[i] = model.capacities[i]
            remaining -= model.capacities[i]
            open_set.remove(i)
    return loads


def bottom_up_loads(
    model: SystemModel, on_ids: Sequence[int], total_load: float
) -> np.ndarray:
    """Cool job allocation [1]: fill machines to capacity, coolest first."""
    on = set(on_ids)
    cap = sum(model.capacities[i] for i in on)
    if total_load > cap + 1e-9:
        raise InfeasibleError(
            f"bottom-up policy: load {total_load:.3f} exceeds capacity {cap:.3f}"
        )
    loads = np.zeros(model.node_count)
    remaining = total_load
    for i in coolness_order(model):
        if i not in on or remaining <= 1e-12:
            continue
        take = min(model.capacities[i], remaining)
        loads[i] = take
        remaining -= take
    return loads


def minimal_on_set(model: SystemModel, total_load: float) -> list[int]:
    """Fewest machines (coolest first) whose capacity covers the load."""
    chosen: list[int] = []
    cap = 0.0
    for i in coolness_order(model):
        chosen.append(i)
        cap += model.capacities[i]
        if cap + 1e-9 >= total_load:
            return sorted(chosen)
    raise InfeasibleError(
        f"load {total_load:.3f} exceeds cluster capacity {cap:.3f}"
    )


def conservative_set_point(model: SystemModel) -> tuple[float, float]:
    """The no-AC-control setting: ``(t_sp, t_ac)`` safe at full cluster load.

    The paper chooses "the highest temperature that (empirically) satisfies
    CPU temperature constraints when all machines run at full load".
    """
    full = list(model.capacities)
    t_ac = model.cooler.clamp_t_ac(
        model.max_feasible_t_ac(full, range(model.node_count))
    )
    total_power = sum(model.power.power(c) for c in model.capacities)
    return model.cooler.set_point_for(t_ac, total_power), t_ac


@dataclass(frozen=True)
class Scenario:
    """One cell of the Fig. 4 matrix (or a supplementary variant)."""

    number: int
    distribution: Distribution
    ac_control: bool
    consolidation: bool
    supplementary: bool = False

    @property
    def name(self) -> str:
        """Human-readable label, e.g. ``#8 optimal+AC+consolidation``."""
        parts = [self.distribution.replace("_", "-")]
        parts.append("AC" if self.ac_control else "fixedAC")
        parts.append("consolidation" if self.consolidation else "all-on")
        prefix = f"#{self.number}" if not self.supplementary else "supp"
        return f"{prefix} " + "+".join(parts)

    def decide(
        self,
        model: SystemModel,
        total_load: float,
        optimizer: Optional[JointOptimizer] = None,
    ) -> PolicyDecision:
        """Produce the loads / ON set / set point this scenario commands."""
        if total_load <= 0.0:
            raise ConfigurationError(
                f"total load must be positive, got {total_load}"
            )
        if self.distribution == "optimal":
            return self._decide_optimal(model, total_load, optimizer)
        if self.consolidation:
            on_ids = minimal_on_set(model, total_load)
        else:
            on_ids = list(range(model.node_count))
        if self.distribution == "even":
            loads = even_loads(model, on_ids, total_load)
        else:
            loads = bottom_up_loads(model, on_ids, total_load)
        t_sp, t_ac = self._set_point_for(model, loads, on_ids)
        return PolicyDecision(
            loads=loads,
            on_ids=tuple(sorted(on_ids)),
            t_sp=t_sp,
            t_ac_target=t_ac,
            scenario=self.name,
        )

    def _decide_optimal(
        self,
        model: SystemModel,
        total_load: float,
        optimizer: Optional[JointOptimizer],
    ) -> PolicyDecision:
        if not self.ac_control:
            raise ConfigurationError(
                "the paper's matrix has no optimal-without-AC-control cell"
            )
        if optimizer is None:
            optimizer = JointOptimizer(model)
        result = optimizer.solve(total_load, consolidate=self.consolidation)
        return PolicyDecision(
            loads=result.loads,
            on_ids=result.on_ids,
            t_sp=result.t_sp,
            t_ac_target=result.t_ac,
            scenario=self.name,
        )

    def _set_point_for(
        self,
        model: SystemModel,
        loads: np.ndarray,
        on_ids: Sequence[int],
    ) -> tuple[float, float]:
        if self.ac_control:
            t_ac = model.cooler.clamp_t_ac(
                model.max_feasible_t_ac(loads, on_ids)
            )
            total_power = sum(
                model.power.power(float(loads[i])) for i in on_ids
            )
            return model.cooler.set_point_for(t_ac, total_power), t_ac
        t_sp, t_ac = conservative_set_point(model)
        return t_sp, t_ac


def paper_scenarios() -> tuple[Scenario, ...]:
    """The eight numbered scenarios of Fig. 4, in order."""
    return (
        Scenario(1, "even", ac_control=False, consolidation=False),
        Scenario(2, "bottom_up", ac_control=False, consolidation=False),
        Scenario(3, "bottom_up", ac_control=False, consolidation=True),
        Scenario(4, "even", ac_control=True, consolidation=False),
        Scenario(5, "bottom_up", ac_control=True, consolidation=False),
        Scenario(6, "optimal", ac_control=True, consolidation=False),
        Scenario(7, "bottom_up", ac_control=True, consolidation=True),
        Scenario(8, "optimal", ac_control=True, consolidation=True),
    )


def extra_scenarios() -> tuple[Scenario, ...]:
    """Supplementary variants outside the numbered matrix."""
    return (
        Scenario(
            9, "even", ac_control=True, consolidation=True, supplementary=True
        ),
        Scenario(
            10, "even", ac_control=False, consolidation=True, supplementary=True
        ),
    )


def scenario_by_number(number: int) -> Scenario:
    """Look up a numbered scenario (1-8) of the Fig. 4 matrix."""
    for scenario in paper_scenarios():
        if scenario.number == number:
            return scenario
    raise ConfigurationError(f"no paper scenario numbered {number}")
