"""Serialization of fitted models.

Profiling a room takes hours of wall-clock time on real hardware (15
minutes per power level alone), so a production deployment profiles once
and reuses the coefficients.  This module round-trips a fitted
:class:`~repro.core.model.SystemModel` through a versioned JSON document.

The format is deliberately flat and explicit — every coefficient appears
under its paper name — so a saved model doubles as a human-readable
profiling report.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Union

from repro.core.model import (
    CoolerModel,
    NodeCoefficients,
    PowerModel,
    SystemModel,
)
from repro.errors import ConfigurationError

#: Format version written into every document.
FORMAT_VERSION = 1


def system_model_to_dict(model: SystemModel) -> dict[str, Any]:
    """The JSON-ready dictionary form of a fitted system model."""
    return {
        "format": "repro-system-model",
        "version": FORMAT_VERSION,
        "t_max": model.t_max,
        "power": {"w1": model.power.w1, "w2": model.power.w2},
        "cooler": {
            "c_f_ac": model.cooler.c_f_ac,
            "actuation_offset": model.cooler.actuation_offset,
            "actuation_t_ac": model.cooler.actuation_t_ac,
            "actuation_power": model.cooler.actuation_power,
            "t_ac_min": model.cooler.t_ac_min,
            "t_ac_max": model.cooler.t_ac_max,
            "idle_power": model.cooler.idle_power,
        },
        "nodes": [
            {
                "alpha": node.alpha,
                "beta": node.beta,
                "gamma": node.gamma,
                "capacity": capacity,
            }
            for node, capacity in zip(model.nodes, model.capacities)
        ],
    }


def system_model_from_dict(data: dict[str, Any]) -> SystemModel:
    """Rebuild a fitted system model from its dictionary form.

    Raises
    ------
    ConfigurationError
        On wrong format tags, unsupported versions, or missing fields —
        a clear error beats a half-loaded model.
    """
    if not isinstance(data, dict):
        raise ConfigurationError("model document must be a JSON object")
    if data.get("format") != "repro-system-model":
        raise ConfigurationError(
            f"not a repro system model (format={data.get('format')!r})"
        )
    if data.get("version") != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported model version {data.get('version')!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    try:
        power = PowerModel(**data["power"])
        cooler = CoolerModel(**data["cooler"])
        nodes = tuple(
            NodeCoefficients(
                alpha=entry["alpha"],
                beta=entry["beta"],
                gamma=entry["gamma"],
            )
            for entry in data["nodes"]
        )
        capacities = tuple(entry["capacity"] for entry in data["nodes"])
        t_max = float(data["t_max"])
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(f"malformed model document: {exc}") from exc
    return SystemModel(
        power=power,
        nodes=nodes,
        cooler=cooler,
        t_max=t_max,
        capacities=capacities,
    )


def save_system_model(
    model: SystemModel, path: Union[str, pathlib.Path]
) -> None:
    """Write a fitted model to ``path`` as JSON."""
    document = json.dumps(system_model_to_dict(model), indent=2)
    pathlib.Path(path).write_text(document + "\n")


def load_system_model(path: Union[str, pathlib.Path]) -> SystemModel:
    """Read a fitted model previously written by :func:`save_system_model`."""
    file = pathlib.Path(path)
    if not file.exists():
        raise ConfigurationError(f"model file not found: {file}")
    try:
        data = json.loads(file.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"model file {file} is not valid JSON: {exc}"
        ) from exc
    return system_model_from_dict(data)
