"""Serialization of fitted models and pre-processed indexes.

Profiling a room takes hours of wall-clock time on real hardware (15
minutes per power level alone), so a production deployment profiles once
and reuses the coefficients.  This module round-trips a fitted
:class:`~repro.core.model.SystemModel` through a versioned JSON document.

The format is deliberately flat and explicit — every coefficient appears
under its paper name — so a saved model doubles as a human-readable
profiling report.

The consolidation pre-processing (Algorithm 1) is the other expensive
once-per-deployment artifact: O(n^3 log n) offline work that is pure
function of ``(pairs, w2, rho, theta0, t_min, t_max, capacities)``.
:func:`save_consolidation_index` / :func:`load_consolidation_index`
round-trip the column-oriented status tables through a compressed
``.npz`` document stamped with a format tag, a version, and the
parameters' content hash (:func:`repro.core.consolidation.consolidation_cache_key`),
so a loaded index is verifiably the one its parameters would rebuild.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Optional, Union

import numpy as np

from repro.core.model import (
    CoolerModel,
    NodeCoefficients,
    PowerModel,
    SystemModel,
)
from repro.errors import ConfigurationError

#: Format version written into every document.
FORMAT_VERSION = 1

#: Format tag/version stamped into every persisted consolidation index.
INDEX_FORMAT = "repro-consolidation-index"
INDEX_FORMAT_VERSION = 1


def system_model_to_dict(model: SystemModel) -> dict[str, Any]:
    """The JSON-ready dictionary form of a fitted system model."""
    return {
        "format": "repro-system-model",
        "version": FORMAT_VERSION,
        "t_max": model.t_max,
        "power": {"w1": model.power.w1, "w2": model.power.w2},
        "cooler": {
            "c_f_ac": model.cooler.c_f_ac,
            "actuation_offset": model.cooler.actuation_offset,
            "actuation_t_ac": model.cooler.actuation_t_ac,
            "actuation_power": model.cooler.actuation_power,
            "t_ac_min": model.cooler.t_ac_min,
            "t_ac_max": model.cooler.t_ac_max,
            "idle_power": model.cooler.idle_power,
        },
        "nodes": [
            {
                "alpha": node.alpha,
                "beta": node.beta,
                "gamma": node.gamma,
                "capacity": capacity,
            }
            for node, capacity in zip(model.nodes, model.capacities)
        ],
    }


def system_model_from_dict(data: dict[str, Any]) -> SystemModel:
    """Rebuild a fitted system model from its dictionary form.

    Raises
    ------
    ConfigurationError
        On wrong format tags, unsupported versions, or missing fields —
        a clear error beats a half-loaded model.
    """
    if not isinstance(data, dict):
        raise ConfigurationError("model document must be a JSON object")
    if data.get("format") != "repro-system-model":
        raise ConfigurationError(
            f"not a repro system model (format={data.get('format')!r})"
        )
    if data.get("version") != FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported model version {data.get('version')!r} "
            f"(this build reads version {FORMAT_VERSION})"
        )
    try:
        power = PowerModel(**data["power"])
        cooler = CoolerModel(**data["cooler"])
        nodes = tuple(
            NodeCoefficients(
                alpha=entry["alpha"],
                beta=entry["beta"],
                gamma=entry["gamma"],
            )
            for entry in data["nodes"]
        )
        capacities = tuple(entry["capacity"] for entry in data["nodes"])
        t_max = float(data["t_max"])
    except (KeyError, TypeError) as exc:
        raise ConfigurationError(f"malformed model document: {exc}") from exc
    return SystemModel(
        power=power,
        nodes=nodes,
        cooler=cooler,
        t_max=t_max,
        capacities=capacities,
    )


def save_system_model(
    model: SystemModel, path: Union[str, pathlib.Path]
) -> None:
    """Write a fitted model to ``path`` as JSON."""
    document = json.dumps(system_model_to_dict(model), indent=2)
    pathlib.Path(path).write_text(document + "\n")


def load_system_model(path: Union[str, pathlib.Path]) -> SystemModel:
    """Read a fitted model previously written by :func:`save_system_model`."""
    file = pathlib.Path(path)
    if not file.exists():
        raise ConfigurationError(f"model file not found: {file}")
    try:
        data = json.loads(file.read_text())
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"model file {file} is not valid JSON: {exc}"
        ) from exc
    return system_model_from_dict(data)


# ---------------------------------------------------------------------- #
# Consolidation index persistence
# ---------------------------------------------------------------------- #


def save_consolidation_index(index, path: Union[str, pathlib.Path]):
    """Serialize a pre-processed consolidation index to ``path``.

    Writes a compressed ``.npz`` holding the construction parameters,
    the event list, and the column-oriented status tables, stamped with
    the format tag, version, and the parameters' content hash.  Returns
    the written :class:`pathlib.Path`.
    """
    file = pathlib.Path(path)
    if file.parent and not file.parent.exists():
        raise ConfigurationError(
            f"directory does not exist: {file.parent}"
        )
    nan = float("nan")
    arrays = {
        "format": np.array(INDEX_FORMAT),
        "version": np.array(INDEX_FORMAT_VERSION),
        "cache_key": np.array(index.cache_key),
        "pairs": np.asarray(index.pairs, dtype=np.float64),
        "params": np.array(
            [
                index.w2,
                index.rho,
                index.theta0,
                nan if index.t_min is None else index.t_min,
                nan if index.t_max is None else index.t_max,
            ],
            dtype=np.float64,
        ),
        "has_capacities": np.array(index.capacities is not None),
        "capacities": np.asarray(
            [] if index.capacities is None else index.capacities,
            dtype=np.float64,
        ),
        "event_t": index._event_t,
        "event_p": index._event_p,
        "event_q": index._event_q,
        "times": index._times,
        "orders_mat": index._orders_mat,
        "tab_row": index._tab_row,
        "tab_k": index._tab_k,
        "tab_lmax": index._tab_lmax,
    }
    with file.open("wb") as handle:
        np.savez_compressed(handle, **arrays)
    return file


def load_consolidation_index(
    path: Union[str, pathlib.Path], expected_key: Optional[str] = None
):
    """Load an index written by :func:`save_consolidation_index`.

    Parameters
    ----------
    path:
        The ``.npz`` document to read.
    expected_key:
        Optional :func:`~repro.core.consolidation.consolidation_cache_key`
        the caller expects; a mismatch (stale file for different
        parameters) raises :class:`ConfigurationError` instead of
        silently answering queries for the wrong room.

    Raises
    ------
    ConfigurationError
        On missing files, wrong format tags, unsupported versions, key
        mismatches, or structurally inconsistent tables.
    """
    from repro.core.consolidation import ConsolidationIndex

    file = pathlib.Path(path)
    if not file.exists():
        raise ConfigurationError(f"index file not found: {file}")
    try:
        with np.load(file, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
    except (OSError, ValueError) as exc:
        raise ConfigurationError(
            f"index file {file} is not a readable npz document: {exc}"
        ) from exc
    required = {
        "format", "version", "cache_key", "pairs", "params",
        "has_capacities", "capacities", "event_t", "event_p", "event_q",
        "times", "orders_mat", "tab_row", "tab_k", "tab_lmax",
    }
    missing = required - set(arrays)
    if missing:
        raise ConfigurationError(
            f"index file {file} is missing fields: {sorted(missing)}"
        )
    if str(arrays["format"]) != INDEX_FORMAT:
        raise ConfigurationError(
            f"not a consolidation index (format={arrays['format']!r})"
        )
    if int(arrays["version"]) != INDEX_FORMAT_VERSION:
        raise ConfigurationError(
            f"unsupported index version {int(arrays['version'])} "
            f"(this build reads version {INDEX_FORMAT_VERSION})"
        )
    stored_key = str(arrays["cache_key"])
    if expected_key is not None and stored_key != expected_key:
        raise ConfigurationError(
            f"index file {file} was built for different parameters "
            f"(stored key {stored_key[:12]}…, expected "
            f"{expected_key[:12]}…)"
        )
    params = np.asarray(arrays["params"], dtype=np.float64)
    if params.shape != (5,):
        raise ConfigurationError(
            f"index file {file} has a malformed parameter block"
        )
    w2, rho, theta0, t_min, t_max = (float(v) for v in params)
    pairs = [
        (float(a), float(b))
        for a, b in np.asarray(arrays["pairs"], dtype=np.float64).reshape(
            -1, 2
        )
    ]
    capacities = (
        [float(c) for c in arrays["capacities"]]
        if bool(arrays["has_capacities"])
        else None
    )
    index = ConsolidationIndex._from_tables(
        pairs=pairs,
        w2=w2,
        rho=rho,
        theta0=theta0,
        t_min=None if np.isnan(t_min) else t_min,
        t_max=None if np.isnan(t_max) else t_max,
        capacities=capacities,
        engine="numpy",
        event_t=arrays["event_t"],
        event_p=arrays["event_p"],
        event_q=arrays["event_q"],
        times=arrays["times"],
        orders_mat=arrays["orders_mat"],
        tab_row=arrays["tab_row"],
        tab_k=arrays["tab_k"],
        tab_lmax=arrays["tab_lmax"],
    )
    if index.cache_key != stored_key:
        raise ConfigurationError(
            f"index file {file} is corrupt: stored cache key does not "
            "match its own parameters"
        )
    return index
