"""The paper's consolidation algorithms (Section III-B, Algorithms 1-2).

The reduction of Eq. 23 turns machine selection into a kinematics problem:
particle *i* starts at coordinate ``a_i = K_i`` and moves with velocity
``-b_i = -alpha_i / beta_i``, so its coordinate at time ``t`` is
``x_i(t) = a_i - t * b_i`` (Eq. 26).  For any fixed ``t``, the best set of
``k`` machines is simply the ``k`` right-most particles, and the particle
order only changes at the O(n^2) *events* where one particle passes
another.

- **Algorithm 1 (offline, O(n^3 log n))**: enumerate all events, record the
  particle order right after each one, and tabulate for every (event, k)
  the maximum servable load ``Lmax`` — the sum of the first ``k``
  coordinates.  Sort this ``allStatus`` table by ``Lmax``.
- **Algorithm 2 (online, O(log n))**: binary-search ``allStatus`` for the
  smallest ``Lmax`` exceeding the requested load; the ON set is the
  ``k``-prefix of the order recorded for that event.

Implementation notes (documented deviations, none affecting complexity):

- Orders are recomputed by sorting coordinates just *after* each event
  time instead of applying pairwise swaps.  This is robust to degenerate
  inputs (simultaneous crossings, duplicated pairs) where the paper's
  swap would require a generic-position assumption, and the overall
  pre-processing cost stays O(n^3 log n), dominated — exactly as in the
  paper — by sorting the O(n^3) statuses.
- The paper stores a power budget ``P_b = k*w2 - rho*t + theta`` in each
  status "to simplify the explanation" while noting the algorithm never
  uses it; since ``theta`` depends on the not-yet-known query load, we
  store the load-independent part (``theta`` evaluated at ``L = 0``).
- Because statuses exist only at event times while the optimal ratio
  ``t*(k)`` generally falls between events, the strict Algorithm-2 lookup
  can return a near-optimal set on adversarial inputs.
  :meth:`ConsolidationIndex.query` is the faithful version;
  :meth:`ConsolidationIndex.query_refined` re-scores a small window of
  neighbouring statuses with the exact Eq. 23 cost and is what
  :class:`~repro.core.optimizer.JointOptimizer` uses by default.  Tests
  quantify the gap against the brute-force reference.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro import obs
from repro.errors import ConfigurationError, InfeasibleError
from repro.core.select import Pair, _validate_pairs, ratio

#: Relative nudge used to evaluate particle order strictly after an event.
_EPSILON_SCALE = 1e-9


@dataclass(frozen=True)
class Event:
    """Particle ``p`` passes particle ``q`` at time ``t`` (paper's
    ``Event`` class)."""

    t: float
    p: int
    q: int


@dataclass(frozen=True)
class Status:
    """One row of the paper's ``allStatus`` table.

    Attributes
    ----------
    t:
        Event time this status was tabulated at (0.0 for the initial
        order).
    k:
        Number of machines considered (prefix length).
    l_max:
        Maximum servable load at this ``(t, k)``: the sum of the ``k``
        largest coordinates ``x_i(t)``.
    p_b:
        The power budget bookkeeping value ``k*w2 - rho*t`` plus the
        load-independent part of ``theta`` (present for fidelity with the
        paper's listing; the query never reads it).
    """

    t: float
    k: int
    l_max: float
    p_b: float


class ConsolidationIndex:
    """Pre-processed consolidation structure (paper Algorithm 1).

    Parameters
    ----------
    pairs:
        The ``(a_i, b_i)`` pairs of the reduction (``a = K``,
        ``b = alpha/beta``).
    w2:
        Idle power coefficient, W (cost of keeping one more machine on).
    rho:
        The lumped coefficient ``c * f_ac * w1`` of Eq. 23.
    theta0:
        Load-independent part of ``theta`` (``c * f_ac * T_SP``); the
        load-dependent ``w1 * L`` is identical across subsets and never
        affects the argmin.
    t_min, t_max:
        Optional particle-time bounds mirroring the cooler's achievable
        supply band (``t = T_ac / w1``); used by the refined query.
    capacities:
        Optional per-machine capacities in load units; the refined query
        skips subsets that cannot physically carry the requested load.
    """

    def __init__(
        self,
        pairs: Sequence[Pair],
        w2: float,
        rho: float,
        theta0: float = 0.0,
        t_min: Optional[float] = None,
        t_max: Optional[float] = None,
        capacities: Optional[Sequence[float]] = None,
    ) -> None:
        self.pairs = _validate_pairs(pairs)
        if w2 < 0.0:
            raise ConfigurationError(f"w2 must be non-negative, got {w2}")
        if rho <= 0.0:
            raise ConfigurationError(f"rho must be positive, got {rho}")
        self.w2 = w2
        self.rho = rho
        self.theta0 = theta0
        self.t_min = t_min
        self.t_max = t_max
        if capacities is not None and len(capacities) != len(self.pairs):
            raise ConfigurationError(
                f"{len(self.pairs)} pairs but {len(capacities)} capacities"
            )
        self.capacities = (
            None if capacities is None else [float(c) for c in capacities]
        )
        self.events: list[Event] = []
        self.orders: dict[float, list[int]] = {}
        self.all_status: list[Status] = []
        self._status_lmax: list[float] = []
        self._preprocess()

    # ------------------------------------------------------------------ #
    # Algorithm 1
    # ------------------------------------------------------------------ #

    def _coordinates(self, t: float) -> np.ndarray:
        arr = np.asarray(self.pairs, dtype=float)
        return arr[:, 0] - t * arr[:, 1]

    def _order_after(self, t: float) -> list[int]:
        """Particle order (right-most first) just after time ``t``."""
        scale = max(1.0, abs(t))
        x = self._coordinates(t + _EPSILON_SCALE * scale)
        return sorted(range(len(self.pairs)), key=lambda i: (-x[i], i))

    def _compute_events(self) -> list[Event]:
        events: list[Event] = []
        n = len(self.pairs)
        for i in range(n):
            a_i, b_i = self.pairs[i]
            for j in range(i + 1, n):
                a_j, b_j = self.pairs[j]
                if b_i == b_j:
                    continue  # parallel particles never meet
                pass_time = (a_i - a_j) / (b_i - b_j)
                if pass_time <= 0.0:
                    continue  # met in the past (or never, given t >= 0)
                events.append(Event(t=pass_time, p=i, q=j))
        events.sort(key=lambda e: (e.t, e.p, e.q))
        return events

    def _preprocess(self) -> None:
        with obs.timed("consolidation/preprocess"):
            self.events = self._compute_events()
            times = [0.0] + [e.t for e in self.events]
            # Tabulate the order right after each event (and at t = 0).
            for t in times:
                self.orders[t] = self._order_after(t)
            # Sum the first k coordinates of each order (statuses).
            statuses: list[Status] = []
            for t in self.orders:
                order = self.orders[t]
                x = self._coordinates(t)
                l_max = 0.0
                for k, index in enumerate(order, start=1):
                    l_max += float(x[index])
                    statuses.append(
                        Status(
                            t=t,
                            k=k,
                            l_max=l_max,
                            p_b=k * self.w2 - self.rho * t + self.theta0,
                        )
                    )
            statuses.sort(key=lambda s: s.l_max)
            self.all_status = statuses
            self._status_lmax = [s.l_max for s in statuses]
        obs.count("consolidation.builds")
        obs.set_gauge("consolidation.events", len(self.events))
        obs.set_gauge("consolidation.statuses", len(self.all_status))

    # ------------------------------------------------------------------ #
    # Algorithm 2
    # ------------------------------------------------------------------ #

    @property
    def event_count(self) -> int:
        """Number of pairwise passing events (at most n*(n-1)/2)."""
        return len(self.events)

    @property
    def status_count(self) -> int:
        """Number of tabulated statuses (O(n^3))."""
        return len(self.all_status)

    def on_set(self, status: Status) -> list[int]:
        """The ON set a status denotes: the ``k``-prefix of its order."""
        return sorted(self.orders[status.t][: status.k])

    def query(self, load: float) -> list[int]:
        """Paper Algorithm 2, verbatim: binary-search ``allStatus`` for
        the minimum ``Lmax`` strictly greater than ``load`` and return the
        corresponding server prefix.

        Raises
        ------
        InfeasibleError
            If no tabulated status can serve ``load``.
        """
        with obs.timed("consolidation/query"):
            obs.count("consolidation.queries")
            pos = bisect.bisect_right(self._status_lmax, load)
            if pos >= len(self.all_status):
                raise InfeasibleError(
                    f"no status can serve load {load}; cluster too small"
                )
            chosen = self.on_set(self.all_status[pos])
            obs.set_span_attributes(load=load, machines_on=len(chosen))
        return chosen

    def query_refined(
        self, load: float, window: Optional[int] = None
    ) -> list[int]:
        """Algorithm 2 with exact re-scoring of a candidate window.

        Starting from the faithful binary-search position, re-score up to
        ``window`` distinct candidate subsets (default ``4 * n``) that can
        serve ``load`` using the exact Eq. 23 cost evaluated at each
        subset's own achievable ratio ``t(S) = (sum a - L) / sum b``, and
        return the cheapest feasible one.  This closes the event-grid
        quantization gap while keeping the query logarithmic plus a small
        constant amount of work.
        """
        with obs.timed("consolidation/query"):
            n = len(self.pairs)
            if window is None:
                window = 4 * n
            pos = bisect.bisect_right(self._status_lmax, load)
            if pos >= len(self.all_status):
                raise InfeasibleError(
                    f"no status can serve load {load}; cluster too small"
                )
            best_subset: Optional[list[int]] = None
            best_power = float("inf")
            seen: set[tuple[int, ...]] = set()
            i = pos
            while i < len(self.all_status) and len(seen) < window:
                status = self.all_status[i]
                i += 1
                subset = tuple(self.on_set(status))
                if subset in seen:
                    continue
                seen.add(subset)
                if self.capacities is not None:
                    if sum(self.capacities[i] for i in subset) + 1e-9 < load:
                        continue
                t = ratio(self.pairs, subset, load)
                if self.t_min is not None and t < self.t_min - 1e-12:
                    continue
                t_eff = t if self.t_max is None else min(t, self.t_max)
                power = len(subset) * self.w2 - self.rho * t_eff + self.theta0
                if power < best_power - 1e-12:
                    best_power = power
                    best_subset = list(subset)
            obs.count("consolidation.refined_queries")
            obs.count("consolidation.query_refined_rescored", len(seen))
            if best_subset is None:
                raise InfeasibleError(
                    f"no feasible status for load {load} within the supply band"
                )
            obs.set_span_attributes(
                load=load, rescored=len(seen), machines_on=len(best_subset)
            )
        return best_subset

    def order_timeline(self) -> list[tuple[float, list[int]]]:
        """All (event time, order) pairs in chronological sequence.

        The first entry is the initial order at ``t = 0``; each subsequent
        entry is the order right after one event.  Used by the Fig. 1
        reproduction and by tests.
        """
        return [(t, list(self.orders[t])) for t in sorted(self.orders)]
