"""The paper's consolidation algorithms (Section III-B, Algorithms 1-2).

The reduction of Eq. 23 turns machine selection into a kinematics problem:
particle *i* starts at coordinate ``a_i = K_i`` and moves with velocity
``-b_i = -alpha_i / beta_i``, so its coordinate at time ``t`` is
``x_i(t) = a_i - t * b_i`` (Eq. 26).  For any fixed ``t``, the best set of
``k`` machines is simply the ``k`` right-most particles, and the particle
order only changes at the O(n^2) *events* where one particle passes
another.

- **Algorithm 1 (offline, O(n^3 log n))**: enumerate all events, record the
  particle order right after each one, and tabulate for every (event, k)
  the maximum servable load ``Lmax`` — the sum of the first ``k``
  coordinates.  Sort this ``allStatus`` table by ``Lmax``.
- **Algorithm 2 (online, O(log n))**: binary-search ``allStatus`` for the
  smallest ``Lmax`` exceeding the requested load; the ON set is the
  ``k``-prefix of the order recorded for that event.

The pre-processing is implemented as a vectorized numpy pipeline so the
index scales to hundreds of machines: events come from one pairwise
broadcast over the upper triangle, orders from a batched stable argsort
over the event-time grid, and ``Lmax`` from row-wise cumulative sums.
The resulting status table is column-oriented (parallel ``t``/``k``/
``Lmax`` arrays sorted by ``Lmax``); :class:`Status` objects and the
``orders`` mapping are materialized lazily for API compatibility.  A
pure-Python reference build (``engine="python"``) computes bit-identical
tables and anchors the equivalence tests and the scale benchmark
(``benchmarks/bench_consolidation_scale.py``).

Implementation notes (documented deviations, none affecting complexity):

- Orders are recomputed by sorting coordinates just *after* each event
  time instead of applying pairwise swaps.  This is robust to degenerate
  inputs (simultaneous crossings, duplicated pairs) where the paper's
  swap would require a generic-position assumption, and the overall
  pre-processing cost stays O(n^3 log n), dominated — exactly as in the
  paper — by sorting the O(n^3) statuses.  The "just after" nudge is
  gap-aware: it never exceeds half the distance to the next event time,
  so near-coincident crossings are not skipped over (events closer than
  one ulp of the grid remain indistinguishable, as they must be in
  floating point).
- The paper stores a power budget ``P_b = k*w2 - rho*t + theta`` in each
  status "to simplify the explanation" while noting the algorithm never
  uses it; since ``theta`` depends on the not-yet-known query load, we
  store the load-independent part (``theta`` evaluated at ``L = 0``).
- Because statuses exist only at event times while the optimal ratio
  ``t*(k)`` generally falls between events, the strict Algorithm-2 lookup
  can return a near-optimal set on adversarial inputs.
  :meth:`ConsolidationIndex.query` is the faithful version;
  :meth:`ConsolidationIndex.query_refined` re-scores a small window of
  neighbouring statuses with the exact Eq. 23 cost and is what
  :class:`~repro.core.optimizer.JointOptimizer` uses by default.  The
  re-scoring scan is bounded (at most ``8 * window`` rows) so duplicate
  prefixes cannot degrade a query into a table walk, and repeated
  queries amortize through per-row prefix-sum caches plus a bounded
  result memo (see :meth:`query_many`).  Tests quantify the gap against
  the brute-force reference.

Indexes are reusable across runs: :meth:`ConsolidationIndex.save` /
:meth:`ConsolidationIndex.load` round-trip the tables through a keyed
``.npz`` document (see :mod:`repro.core.serialization`), and
:class:`~repro.core.optimizer.JointOptimizer` transparently reuses a
cached index when given ``index_cache_dir``.
"""

from __future__ import annotations

import hashlib
from collections.abc import Mapping as _MappingABC
from collections.abc import Sequence as _SequenceABC
from dataclasses import dataclass
from typing import Iterable, Iterator, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.errors import ConfigurationError, InfeasibleError
from repro.core.select import Pair, _validate_pairs

#: Relative nudge used to evaluate particle order strictly after an event.
_EPSILON_SCALE = 1e-9

#: ``query_refined`` scans at most this many rows per distinct subset it
#: is allowed to re-score, so duplicate prefixes cannot turn the
#: "logarithmic plus a small constant" query into an O(n^3) table walk.
_SCAN_CAP_FACTOR = 8

#: Bounded memo of refined query results (the index is immutable, so a
#: repeated ``(load, window)`` always has the same answer).
_MEMO_CAPACITY = 4096


@dataclass(frozen=True)
class Event:
    """Particle ``p`` passes particle ``q`` at time ``t`` (paper's
    ``Event`` class)."""

    t: float
    p: int
    q: int


@dataclass(frozen=True)
class Status:
    """One row of the paper's ``allStatus`` table.

    Attributes
    ----------
    t:
        Event time this status was tabulated at (0.0 for the initial
        order).
    k:
        Number of machines considered (prefix length).
    l_max:
        Maximum servable load at this ``(t, k)``: the sum of the ``k``
        largest coordinates ``x_i(t)``.
    p_b:
        The power budget bookkeeping value ``k*w2 - rho*t`` plus the
        load-independent part of ``theta`` (present for fidelity with the
        paper's listing; the query never reads it).
    """

    t: float
    k: int
    l_max: float
    p_b: float


class _StatusView(_SequenceABC):
    """Lazy, read-only view of the sorted ``allStatus`` table.

    Materializes :class:`Status` rows on demand from the column-oriented
    arrays, so iterating small indexes stays cheap while large indexes
    never pay for millions of dataclass allocations up front.
    """

    __slots__ = ("_index",)

    def __init__(self, index: "ConsolidationIndex") -> None:
        self._index = index

    def __len__(self) -> int:
        return int(self._index._tab_lmax.shape[0])

    def __getitem__(self, pos):
        if isinstance(pos, slice):
            return [
                self._index._status_at(i)
                for i in range(*pos.indices(len(self)))
            ]
        i = int(pos)
        if i < 0:
            i += len(self)
        if not 0 <= i < len(self):
            raise IndexError(f"status index {pos} out of range")
        return self._index._status_at(i)


class _OrdersView(_MappingABC):
    """Lazy ``time -> order`` mapping over the order matrix."""

    __slots__ = ("_index",)

    def __init__(self, index: "ConsolidationIndex") -> None:
        self._index = index

    def __getitem__(self, t: float) -> list[int]:
        row = self._index._row_of_time(float(t))
        return self._index._orders_mat[row].tolist()

    def __iter__(self) -> Iterator[float]:
        return iter(float(t) for t in self._index._times)

    def __len__(self) -> int:
        return int(self._index._times.shape[0])


def _stable_argsort(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Stable ascending argsort via introsort plus tie repair.

    ``np.argsort(kind="stable")`` on millions of floats is about twice
    the cost of the default introsort, and ties in the status table are
    rare — so sort unstably first, then restore the stable order (equal
    values in source order) by sorting the permutation indices inside
    each run of equal values.  Returns ``(perm, values[perm])``; the
    sorted values stay valid through the repair because only positions
    holding equal values are permuted.
    """
    perm = np.argsort(values)
    ordered = values[perm]
    eq = np.flatnonzero(ordered[1:] == ordered[:-1])
    if eq.size:
        # eq marks every i with ordered[i] == ordered[i+1]; consecutive
        # marks belong to one run of equal values spanning [lo, hi).
        breaks = np.flatnonzero(np.diff(eq) > 1)
        starts = np.concatenate(([0], breaks + 1))
        ends = np.concatenate((breaks, [eq.size - 1]))
        for s, e in zip(starts.tolist(), ends.tolist()):
            lo = int(eq[s])
            hi = int(eq[e]) + 2
            perm[lo:hi] = np.sort(perm[lo:hi])
    return perm, ordered


def consolidation_cache_key(
    pairs: Sequence[Pair],
    w2: float,
    rho: float,
    theta0: float = 0.0,
    t_min: Optional[float] = None,
    t_max: Optional[float] = None,
    capacities: Optional[Sequence[float]] = None,
) -> str:
    """Content hash of everything the pre-processed tables depend on.

    Two parameter sets with the same key build byte-identical tables, so
    the key names a persisted index file unambiguously (used by
    :mod:`repro.core.serialization` and ``JointOptimizer``'s transparent
    index cache).
    """
    digest = hashlib.sha256()
    arr = np.ascontiguousarray(np.asarray(pairs, dtype=np.float64))
    digest.update(str(arr.shape).encode())
    digest.update(arr.tobytes())
    digest.update(np.float64([w2, rho, theta0]).tobytes())
    for bound in (t_min, t_max):
        if bound is None:
            digest.update(b"<none>")
        else:
            digest.update(np.float64(bound).tobytes())
    if capacities is None:
        digest.update(b"<none>")
    else:
        digest.update(
            np.ascontiguousarray(
                np.asarray(capacities, dtype=np.float64)
            ).tobytes()
        )
    return digest.hexdigest()


class ConsolidationIndex:
    """Pre-processed consolidation structure (paper Algorithm 1).

    Parameters
    ----------
    pairs:
        The ``(a_i, b_i)`` pairs of the reduction (``a = K``,
        ``b = alpha/beta``).
    w2:
        Idle power coefficient, W (cost of keeping one more machine on).
    rho:
        The lumped coefficient ``c * f_ac * w1`` of Eq. 23.
    theta0:
        Load-independent part of ``theta`` (``c * f_ac * T_SP``); the
        load-dependent ``w1 * L`` is identical across subsets and never
        affects the argmin.
    t_min, t_max:
        Optional particle-time bounds mirroring the cooler's achievable
        supply band (``t = T_ac / w1``); used by the refined query.
    capacities:
        Optional per-machine capacities in load units; the refined query
        skips subsets that cannot physically carry the requested load.
    engine:
        ``"numpy"`` (default) builds the tables with the vectorized
        pipeline; ``"python"`` uses the pure-Python reference build that
        produces bit-identical tables (kept for equivalence tests and as
        the scale benchmark's baseline).
    """

    def __init__(
        self,
        pairs: Sequence[Pair],
        w2: float,
        rho: float,
        theta0: float = 0.0,
        t_min: Optional[float] = None,
        t_max: Optional[float] = None,
        capacities: Optional[Sequence[float]] = None,
        engine: str = "numpy",
    ) -> None:
        self._init_params(
            pairs, w2, rho, theta0, t_min, t_max, capacities, engine
        )
        self._preprocess()

    # ------------------------------------------------------------------ #
    # Construction plumbing (shared with the deserialized path)
    # ------------------------------------------------------------------ #

    def _init_params(
        self,
        pairs: Sequence[Pair],
        w2: float,
        rho: float,
        theta0: float,
        t_min: Optional[float],
        t_max: Optional[float],
        capacities: Optional[Sequence[float]],
        engine: str,
    ) -> None:
        self.pairs = _validate_pairs(pairs)
        if w2 < 0.0:
            raise ConfigurationError(f"w2 must be non-negative, got {w2}")
        if rho <= 0.0:
            raise ConfigurationError(f"rho must be positive, got {rho}")
        if engine not in ("numpy", "python"):
            raise ConfigurationError(
                f"unknown consolidation engine {engine!r}"
            )
        self.w2 = w2
        self.rho = rho
        self.theta0 = theta0
        self.t_min = t_min
        self.t_max = t_max
        if capacities is not None and len(capacities) != len(self.pairs):
            raise ConfigurationError(
                f"{len(self.pairs)} pairs but {len(capacities)} capacities"
            )
        self.capacities = (
            None if capacities is None else [float(c) for c in capacities]
        )
        self.engine = engine
        arr = np.asarray(self.pairs, dtype=np.float64)
        self._a = np.ascontiguousarray(arr[:, 0])
        self._b = np.ascontiguousarray(arr[:, 1])
        # Lazy caches (filled on demand; never persisted).
        self._events_cache: Optional[list[Event]] = None
        self._row_by_time: Optional[dict[float, int]] = None
        self._prefix_cache: dict[int, tuple] = {}
        self._memo: dict[tuple[float, int], tuple[int, ...]] = {}
        self._status_view = _StatusView(self)
        self._orders_view = _OrdersView(self)

    @classmethod
    def _from_tables(
        cls,
        *,
        pairs: Sequence[Pair],
        w2: float,
        rho: float,
        theta0: float,
        t_min: Optional[float],
        t_max: Optional[float],
        capacities: Optional[Sequence[float]],
        engine: str,
        event_t: np.ndarray,
        event_p: np.ndarray,
        event_q: np.ndarray,
        times: np.ndarray,
        orders_mat: np.ndarray,
        tab_row: np.ndarray,
        tab_k: np.ndarray,
        tab_lmax: np.ndarray,
    ) -> "ConsolidationIndex":
        """Rebuild an index from persisted tables, skipping Algorithm 1.

        Performs cheap structural checks so a corrupted document raises
        :class:`ConfigurationError` instead of silently mis-answering.
        """
        index = cls.__new__(cls)
        index._init_params(
            pairs, w2, rho, theta0, t_min, t_max, capacities, engine
        )
        n = len(index.pairs)
        times = np.asarray(times, dtype=np.float64)
        orders_mat = np.asarray(orders_mat, dtype=np.int32)
        tab_row = np.asarray(tab_row, dtype=np.int32)
        tab_k = np.asarray(tab_k, dtype=np.int32)
        tab_lmax = np.asarray(tab_lmax, dtype=np.float64)
        m = int(times.shape[0])
        ok = (
            times.ndim == 1
            and m >= 1
            and orders_mat.shape == (m, n)
            and tab_row.shape == tab_k.shape == tab_lmax.shape == (m * n,)
            and bool(np.all(np.diff(times) > 0.0))
            and bool(np.all((tab_row >= 0) & (tab_row < m)))
            and bool(np.all((tab_k >= 1) & (tab_k <= n)))
            and bool(np.all(np.diff(tab_lmax) >= 0.0))
            and bool(np.all((orders_mat >= 0) & (orders_mat < n)))
        )
        if not ok:
            raise ConfigurationError(
                "consolidation index tables are inconsistent "
                "(corrupt or mismatched document)"
            )
        index._event_t = np.asarray(event_t, dtype=np.float64)
        index._event_p = np.asarray(event_p, dtype=np.int32)
        index._event_q = np.asarray(event_q, dtype=np.int32)
        index._times = times
        index._orders_mat = orders_mat
        index._tab_row = tab_row
        index._tab_k = tab_k
        index._tab_lmax = tab_lmax
        return index

    # ------------------------------------------------------------------ #
    # Algorithm 1
    # ------------------------------------------------------------------ #

    def _coordinates(self, t: float) -> np.ndarray:
        return self._a - t * self._b

    def _preprocess(self) -> None:
        with obs.timed("consolidation/preprocess"):
            if self.engine == "python":
                self._build_tables_python()
            else:
                self._build_tables_numpy()
            obs.set_span_attributes(
                engine=self.engine,
                machines=len(self.pairs),
                statuses=self.status_count,
            )
        obs.count("consolidation.builds")
        obs.set_gauge("consolidation.events", self.event_count)
        obs.set_gauge("consolidation.statuses", self.status_count)

    def _build_tables_numpy(self) -> None:
        """Vectorized Algorithm 1: one broadcast for events, one batched
        argsort for orders, row-wise cumulative sums for ``Lmax``."""
        a, b = self._a, self._b
        n = a.shape[0]
        # Events: x_i and x_j cross at t = (a_i - a_j) / (b_i - b_j).
        iu, ju = np.triu_indices(n, k=1)
        meets = (b[iu] - b[ju]) != 0.0  # parallel particles never meet
        p, q = iu[meets], ju[meets]
        t = (a[p] - a[q]) / (b[p] - b[q])
        future = t > 0.0  # met in the past (or never, given t >= 0)
        t, p, q = t[future], p[future], q[future]
        by_time = np.lexsort((q, p, t))
        self._event_t = np.ascontiguousarray(t[by_time])
        self._event_p = np.ascontiguousarray(p[by_time].astype(np.int32))
        self._event_q = np.ascontiguousarray(q[by_time].astype(np.int32))
        # Distinct tabulation times: t = 0 plus every (unique) event time.
        times = np.unique(np.concatenate((np.zeros(1), self._event_t)))
        self._times = times
        # Orders just after each time: nudge by at most half the gap to
        # the next event so near-coincident crossings are not skipped.
        eps = _EPSILON_SCALE * np.maximum(1.0, np.abs(times))
        if times.shape[0] > 1:
            eps[:-1] = np.minimum(eps[:-1], 0.5 * np.diff(times))
        # The m x n buffers below dominate the build's footprint, so the
        # coordinate buffer is reused (nudged coordinates -> negated for
        # the argsort -> exact coordinates) instead of reallocated.
        buf = a[None, :] - (times + eps)[:, None] * b[None, :]
        np.negative(buf, out=buf)
        # Stable rowwise argsort == descending coordinates with ties to
        # the lower index (the Python reference's exact tie rule).
        orders = np.argsort(buf, axis=1, kind="stable")
        np.multiply(times[:, None], b[None, :], out=buf)
        np.subtract(a[None, :], buf, out=buf)  # exact x_i(t), no nudge
        # Lmax(t, k): cumulative sums of the ordered exact coordinates
        # (np.cumsum accumulates left to right exactly like the Python
        # reference's running float sum — bit-identical tables).
        lmax = np.take_along_axis(buf, orders, axis=1)
        np.cumsum(lmax, axis=1, out=lmax)
        self._orders_mat = orders.astype(np.int32)
        flat = lmax.reshape(-1)
        if flat.size > np.iinfo(np.int32).max:
            raise ConfigurationError(
                f"status table too large for the index layout "
                f"({flat.size} rows)"
            )
        perm, self._tab_lmax = _stable_argsort(flat)
        perm = perm.astype(np.int32)
        self._tab_row = perm // np.int32(n)
        self._tab_k = perm - self._tab_row * np.int32(n)
        self._tab_k += np.int32(1)

    def _build_tables_python(self) -> None:
        """Reference Algorithm 1 with per-row Python loops.

        Kept deliberately close to the paper's listing (and to the
        pre-vectorization implementation): it is the baseline the scale
        benchmark compares against, and the equivalence tests assert its
        tables are bit-identical to the numpy pipeline's.
        """
        n = len(self.pairs)
        events: list[tuple[float, int, int]] = []
        for i in range(n):
            a_i, b_i = self.pairs[i]
            for j in range(i + 1, n):
                a_j, b_j = self.pairs[j]
                if b_i == b_j:
                    continue  # parallel particles never meet
                pass_time = (a_i - a_j) / (b_i - b_j)
                if pass_time <= 0.0:
                    continue  # met in the past (or never, given t >= 0)
                events.append((pass_time, i, j))
        events.sort()
        self._event_t = np.array([e[0] for e in events], dtype=np.float64)
        self._event_p = np.array([e[1] for e in events], dtype=np.int32)
        self._event_q = np.array([e[2] for e in events], dtype=np.int32)
        times = sorted({0.0, *(e[0] for e in events)})
        order_rows: list[list[int]] = []
        flat: list[float] = []
        for row, t in enumerate(times):
            eps = _EPSILON_SCALE * max(1.0, abs(t))
            if row + 1 < len(times):
                eps = min(eps, 0.5 * (times[row + 1] - t))
            xn = self._coordinates(t + eps)
            order = sorted(range(n), key=lambda i: (-xn[i], i))
            order_rows.append(order)
            x = self._coordinates(t)
            acc = 0.0
            for i in order:
                acc += float(x[i])
                flat.append(acc)
        perm = sorted(range(len(flat)), key=flat.__getitem__)
        self._times = np.array(times, dtype=np.float64)
        self._orders_mat = np.array(order_rows, dtype=np.int32).reshape(
            len(times), n
        )
        self._tab_lmax = np.array([flat[i] for i in perm], dtype=np.float64)
        self._tab_row = np.array([i // n for i in perm], dtype=np.int32)
        self._tab_k = np.array([i % n + 1 for i in perm], dtype=np.int32)

    # ------------------------------------------------------------------ #
    # Lazy views over the column-oriented tables
    # ------------------------------------------------------------------ #

    @property
    def events(self) -> list[Event]:
        """All pairwise passing events, chronological (materialized
        lazily from the event arrays)."""
        if self._events_cache is None:
            self._events_cache = [
                Event(t=float(t), p=int(p), q=int(q))
                for t, p, q in zip(
                    self._event_t, self._event_p, self._event_q
                )
            ]
        return self._events_cache

    @property
    def orders(self) -> _OrdersView:
        """Mapping of tabulation time to the particle order just after
        it (right-most first)."""
        return self._orders_view

    @property
    def all_status(self) -> _StatusView:
        """The ``allStatus`` table sorted by ``Lmax`` (lazy
        :class:`Status` view over the column arrays)."""
        return self._status_view

    @property
    def _status_lmax(self) -> np.ndarray:
        return self._tab_lmax

    def _status_at(self, pos: int) -> Status:
        t = float(self._times[self._tab_row[pos]])
        k = int(self._tab_k[pos])
        return Status(
            t=t,
            k=k,
            l_max=float(self._tab_lmax[pos]),
            p_b=k * self.w2 - self.rho * t + self.theta0,
        )

    def _row_of_time(self, t: float) -> int:
        if self._row_by_time is None:
            self._row_by_time = {
                float(v): i for i, v in enumerate(self._times)
            }
        return self._row_by_time[t]

    def _prefix_set(self, row: int, k: int) -> list[int]:
        """The sorted ``k``-prefix of the order at table row ``row``."""
        return np.sort(self._orders_mat[row, :k]).tolist()

    def _prefix(self, row: int) -> tuple:
        """Cached per-row prefix aggregates for the refined scan.

        Returns ``(a_pref, b_pref, cap_pref, masks)`` where entry
        ``k - 1`` covers the first ``k`` particles of the row's order:
        prefix sums of ``a``, ``b``, capacity, and a bitmask identifying
        the subset (used for O(1) dedup).  Building a row is O(n) and
        rows are shared by every query that touches them.
        """
        cached = self._prefix_cache.get(row)
        if cached is None:
            order = self._orders_mat[row]
            a_pref = np.cumsum(self._a[order])
            b_pref = np.cumsum(self._b[order])
            cap_pref = (
                None
                if self.capacities is None
                else np.cumsum(
                    np.asarray(self.capacities, dtype=np.float64)[order]
                )
            )
            masks: list[int] = []
            mask = 0
            for i in order.tolist():
                mask |= 1 << i
                masks.append(mask)
            cached = (a_pref, b_pref, cap_pref, masks)
            self._prefix_cache[row] = cached
        return cached

    # ------------------------------------------------------------------ #
    # Algorithm 2
    # ------------------------------------------------------------------ #

    @property
    def event_count(self) -> int:
        """Number of pairwise passing events (at most n*(n-1)/2)."""
        return int(self._event_t.shape[0])

    @property
    def status_count(self) -> int:
        """Number of tabulated statuses (O(n^3))."""
        return int(self._tab_lmax.shape[0])

    @property
    def cache_key(self) -> str:
        """Content hash naming these tables (see
        :func:`consolidation_cache_key`)."""
        return consolidation_cache_key(
            self.pairs,
            w2=self.w2,
            rho=self.rho,
            theta0=self.theta0,
            t_min=self.t_min,
            t_max=self.t_max,
            capacities=self.capacities,
        )

    def on_set(self, status: Status) -> list[int]:
        """The ON set a status denotes: the ``k``-prefix of its order."""
        return self._prefix_set(self._row_of_time(status.t), status.k)

    def query(self, load: float) -> list[int]:
        """Paper Algorithm 2, verbatim: binary-search ``allStatus`` for
        the minimum ``Lmax`` strictly greater than ``load`` and return the
        corresponding server prefix.

        Raises
        ------
        InfeasibleError
            If no tabulated status can serve ``load``.
        """
        with obs.timed("consolidation/query"):
            obs.count("consolidation.queries")
            load = float(load)
            pos = int(
                np.searchsorted(self._tab_lmax, load, side="right")
            )
            if pos >= self.status_count:
                raise InfeasibleError(
                    f"no status can serve load {load}; cluster too small"
                )
            chosen = self._prefix_set(
                int(self._tab_row[pos]), int(self._tab_k[pos])
            )
            obs.set_span_attributes(load=load, machines_on=len(chosen))
        return chosen

    def query_refined(
        self, load: float, window: Optional[int] = None
    ) -> list[int]:
        """Algorithm 2 with exact re-scoring of a candidate window.

        Starting from the faithful binary-search position, re-score up to
        ``window`` distinct candidate subsets (default ``4 * n``) that can
        serve ``load`` using the exact Eq. 23 cost evaluated at each
        subset's own achievable ratio ``t(S) = (sum a - L) / sum b``, and
        return the cheapest feasible one.  This closes the event-grid
        quantization gap while keeping the query logarithmic plus a small
        constant amount of work: the scan visits at most ``8 * window``
        table rows even when duplicate prefixes dominate (truncations are
        counted on ``consolidation.query_refined_truncated``).

        When every scanned candidate's ratio falls below the supply band
        (``t < t_min``), the query does not fail: it returns the best
        candidate scored at the band-clamped ratio, mirroring
        :func:`~repro.core.closed_form.solve_closed_form`'s clamping, so
        feasibility always agrees with the faithful :meth:`query`.

        Raises
        ------
        InfeasibleError
            If no tabulated status can serve ``load``, or every windowed
            candidate lacks the physical capacity for it.
        """
        with obs.timed("consolidation/query"):
            load = float(load)
            if window is None:
                window = 4 * len(self.pairs)
            if window < 1:
                raise ConfigurationError(
                    f"window must be at least 1, got {window}"
                )
            pos = int(
                np.searchsorted(self._tab_lmax, load, side="right")
            )
            if pos >= self.status_count:
                raise InfeasibleError(
                    f"no status can serve load {load}; cluster too small"
                )
            obs.count("consolidation.refined_queries")
            chosen = self._refined_cached(load, pos, window)
            obs.set_span_attributes(load=load, machines_on=len(chosen))
        return chosen

    def _refined_cached(
        self, load: float, pos: int, window: int
    ) -> list[int]:
        key = (load, window)
        hit = self._memo.get(key)
        if hit is not None:
            obs.count("consolidation.query_memo_hits")
            return list(hit)
        chosen = self._refined_scan(load, pos, window)
        if len(self._memo) >= _MEMO_CAPACITY:
            self._memo.pop(next(iter(self._memo)))
        self._memo[key] = tuple(chosen)
        return chosen

    def _refined_scan(
        self, load: float, pos: int, window: int
    ) -> list[int]:
        """The bounded re-scoring scan behind :meth:`query_refined`."""
        total = self.status_count
        scan_cap = _SCAN_CAP_FACTOR * window
        tab_row, tab_k = self._tab_row, self._tab_k
        best: Optional[tuple[int, int]] = None
        best_power = float("inf")
        clamped: Optional[tuple[int, int]] = None
        clamped_power = float("inf")
        seen: set[int] = set()
        scanned = 0
        i = pos
        while i < total and len(seen) < window and scanned < scan_cap:
            row = int(tab_row[i])
            k = int(tab_k[i])
            i += 1
            scanned += 1
            a_pref, b_pref, cap_pref, masks = self._prefix(row)
            mask = masks[k - 1]
            if mask in seen:
                continue
            seen.add(mask)
            if cap_pref is not None and cap_pref[k - 1] + 1e-9 < load:
                continue
            t = (a_pref[k - 1] - load) / b_pref[k - 1]
            if self.t_min is not None and t < self.t_min - 1e-12:
                # Below the supply band: not optimal at its own ratio,
                # but servable with the cooler pinned at the band edge —
                # keep it as the clamped fallback.
                t_c = (
                    self.t_min
                    if self.t_max is None
                    else min(self.t_min, self.t_max)
                )
                power_c = k * self.w2 - self.rho * t_c + self.theta0
                if power_c < clamped_power - 1e-12:
                    clamped_power = power_c
                    clamped = (row, k)
                continue
            t_eff = t if self.t_max is None else min(t, self.t_max)
            power = k * self.w2 - self.rho * t_eff + self.theta0
            if power < best_power - 1e-12:
                best_power = power
                best = (row, k)
        obs.count("consolidation.query_refined_rescored", len(seen))
        obs.count("consolidation.query_refined_scanned", scanned)
        if scanned >= scan_cap and i < total and len(seen) < window:
            obs.count("consolidation.query_refined_truncated")
        if best is None and clamped is not None:
            obs.count("consolidation.query_band_clamped")
            best = clamped
        if best is None:
            raise InfeasibleError(
                f"no candidate subset has the capacity for load {load}"
            )
        return self._prefix_set(*best)

    def query_many(
        self,
        loads: Iterable[float],
        refined: bool = True,
        window: Optional[int] = None,
        skip_infeasible: bool = False,
    ) -> list[Optional[list[int]]]:
        """Batched Algorithm-2 queries: one ON set per entry of ``loads``.

        The binary-search positions are computed in a single vectorized
        ``searchsorted``, duplicate loads are answered once, and refined
        scans share the per-row prefix caches and the result memo — so a
        trace replay or a bisection ladder pays far less than issuing the
        same queries one by one.

        Parameters
        ----------
        loads:
            Requested total loads (any iterable of floats).
        refined:
            Re-score with the exact Eq. 23 cost (default, what
            ``JointOptimizer`` uses) or answer with the faithful
            :meth:`query` semantics.
        window:
            Refined re-scoring window (default ``4 * n``).
        skip_infeasible:
            When true, infeasible loads yield ``None`` instead of
            aborting the whole batch.

        Raises
        ------
        InfeasibleError
            On the first infeasible load, unless ``skip_infeasible``.
        """
        try:
            values = np.asarray(
                loads if isinstance(loads, np.ndarray) else list(loads),
                dtype=np.float64,
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"loads must be numeric: {exc}"
            ) from exc
        if values.ndim != 1:
            raise ConfigurationError("loads must be one-dimensional")
        if values.shape[0] == 0:
            return []
        with obs.timed("consolidation/query_many"):
            obs.count(
                "consolidation.query_many_queries", values.shape[0]
            )
            if window is None:
                window = 4 * len(self.pairs)
            uniq, inverse = np.unique(values, return_inverse=True)
            positions = np.searchsorted(
                self._tab_lmax, uniq, side="right"
            )
            total = self.status_count
            answers: list[Optional[tuple[int, ...]]] = []
            for load, pos in zip(uniq.tolist(), positions.tolist()):
                try:
                    if pos >= total:
                        raise InfeasibleError(
                            f"no status can serve load {load}; "
                            "cluster too small"
                        )
                    if refined:
                        obs.count("consolidation.refined_queries")
                        answers.append(
                            tuple(self._refined_cached(load, pos, window))
                        )
                    else:
                        obs.count("consolidation.queries")
                        answers.append(
                            tuple(
                                self._prefix_set(
                                    int(self._tab_row[pos]),
                                    int(self._tab_k[pos]),
                                )
                            )
                        )
                except InfeasibleError:
                    if not skip_infeasible:
                        raise
                    answers.append(None)
            obs.set_span_attributes(
                queries=int(values.shape[0]), distinct=int(uniq.shape[0])
            )
        return [
            None if answers[j] is None else list(answers[j])
            for j in inverse
        ]

    # ------------------------------------------------------------------ #
    # Persistence
    # ------------------------------------------------------------------ #

    def save(self, path) -> "pathlib.Path":  # noqa: F821 (doc type)
        """Serialize the pre-processed tables to ``path`` (``.npz``).

        See :func:`repro.core.serialization.save_consolidation_index`.
        """
        from repro.core.serialization import save_consolidation_index

        return save_consolidation_index(self, path)

    @classmethod
    def load(
        cls, path, expected_key: Optional[str] = None
    ) -> "ConsolidationIndex":
        """Load an index previously written by :meth:`save`.

        See :func:`repro.core.serialization.load_consolidation_index`.
        """
        from repro.core.serialization import load_consolidation_index

        return load_consolidation_index(path, expected_key=expected_key)

    def order_timeline(self) -> list[tuple[float, list[int]]]:
        """All (event time, order) pairs in chronological sequence.

        The first entry is the initial order at ``t = 0``; each subsequent
        entry is the order right after one event.  Used by the Fig. 1
        reproduction and by tests.
        """
        return [
            (float(t), self._orders_mat[row].tolist())
            for row, t in enumerate(self._times)
        ]
