"""Adaptive runtime controller (extension beyond the paper).

The paper's solution is open-loop for a *steady* total load; it notes
that dynamic workloads "entail changes in server temperature" and defers
them.  This module adds the natural operational wrapper: a controller
that watches the offered load and re-runs the joint optimization when it
drifts, with two guards that matter in practice:

- **Hysteresis** — re-optimize only when the load leaves a relative band
  around the last planned load, so sensor-level jitter doesn't cause
  churn;
- **Minimum dwell** — never reconfigure more often than the room's
  thermal settling time (machines that were just booted are still
  heating up, and the steady-state model is only valid once settled).

To stay safe during transients, the controller plans for the *upper
edge* of the hysteresis band (``headroom`` factor) rather than for the
instantaneous load, so a load rise within the band never exceeds the
planned capacity or the temperature envelope.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro import obs
from repro.obs import watchdog as _watchdog
from repro.core.optimizer import JointOptimizer, OptimizationResult
from repro.errors import ConfigurationError, InfeasibleError


@dataclass(frozen=True)
class ControllerEvent:
    """One reconfiguration performed by the controller."""

    time: float
    offered_load: float
    planned_load: float
    machines_on: int
    t_sp: float
    reason: str


class RuntimeController:
    """Closed-loop wrapper around :class:`JointOptimizer`.

    Parameters
    ----------
    optimizer:
        The joint optimizer (owns the fitted model and the consolidation
        index, so repeated re-planning stays cheap).
    hysteresis:
        Relative band around the planned load within which no
        re-optimization happens (e.g. 0.15 = ±15%).
    min_dwell:
        Minimum seconds between reconfigurations.
    headroom:
        Factor applied to the observed load when planning, so the plan
        covers the top of the hysteresis band.  Must be at least
        ``1 + hysteresis`` to guarantee in-band rises stay feasible.
    """

    def __init__(
        self,
        optimizer: JointOptimizer,
        hysteresis: float = 0.15,
        min_dwell: float = 600.0,
        headroom: Optional[float] = None,
    ) -> None:
        if not 0.0 <= hysteresis < 1.0:
            raise ConfigurationError(
                f"hysteresis must be in [0, 1), got {hysteresis}"
            )
        if min_dwell < 0.0:
            raise ConfigurationError(
                f"min_dwell must be non-negative, got {min_dwell}"
            )
        if headroom is None:
            headroom = 1.0 + hysteresis
        if headroom < 1.0 + hysteresis - 1e-12:
            raise ConfigurationError(
                f"headroom {headroom} cannot cover the hysteresis band "
                f"(needs >= {1.0 + hysteresis})"
            )
        self.optimizer = optimizer
        self.hysteresis = hysteresis
        self.min_dwell = min_dwell
        self.headroom = headroom
        self._plan: Optional[OptimizationResult] = None
        self._planned_for: float = 0.0
        self._last_change: float = -float("inf")
        self.events: list[ControllerEvent] = []
        self.reconfigurations: int = 0
        self.suppressed: int = 0
        self.failed: set[int] = set()
        # A failure reported since the last accepted plan forces the next
        # observation to re-plan even inside the dwell window.
        self._failure_pending: bool = False
        # Optional repro.faults.FaultInjector; observe() advances it and
        # syncs machine_crash state into mark_failed/mark_repaired.
        self.fault_injector = None
        self._injector_failed: frozenset = frozenset()

    @property
    def plan(self) -> Optional[OptimizationResult]:
        """The currently active optimization result (None before start)."""
        return self._plan

    def observe_temperature(
        self,
        time: float,
        hottest_cpu: float,
        t_max: float,
        margin: float = 1.0,
    ) -> Optional[OptimizationResult]:
        """Thermal watchdog: react to a measured CPU temperature.

        The model-based plan should keep every CPU below ``t_max``, but
        models drift (see :mod:`repro.profiling.online`).  If the hottest
        measured CPU comes within ``margin`` kelvin of the limit, the
        watchdog derates the model's ``T_max`` belief by the observed
        shortfall-plus-margin and re-plans immediately (bypassing dwell —
        hardware protection beats churn protection).

        Returns the emergency plan if one was made, else ``None``.
        """
        if margin < 0.0:
            raise ConfigurationError(
                f"margin must be non-negative, got {margin}"
            )
        overshoot = hottest_cpu - (t_max - margin)
        if overshoot <= 0.0 or self._plan is None:
            return None
        from dataclasses import replace

        model = self.optimizer.model
        derated = replace(model, t_max=model.t_max - overshoot - margin)
        # Rebuild the optimizer around the derated belief; subsequent
        # ordinary observations keep using it until a re-profile.
        self.optimizer = type(self.optimizer)(
            derated,
            selection=self.optimizer.selection,
            cost_model=self.optimizer.cost_model,
        )
        obs.count("controller.watchdog_trips")
        with obs.timed("controller/replan"):
            obs.set_span_attributes(
                time=time, offered_load=self._planned_for,
                planned_load=self._planned_for,
                reason="thermal watchdog",
            )
            result = self.optimizer.solve(
                self._planned_for, exclude=sorted(self.failed)
            )
        wd = _watchdog._active
        if wd is not None:
            wd.check_replan(self, result, self._planned_for)
        self._plan = result
        self._last_change = time
        self._failure_pending = False
        self.reconfigurations += 1
        obs.count("controller.reconfigurations")
        self.events.append(
            ControllerEvent(
                time=time,
                offered_load=self._planned_for,
                planned_load=self._planned_for,
                machines_on=len(result.on_ids),
                t_sp=result.t_sp,
                reason=f"thermal watchdog: CPU at {hottest_cpu:.2f} K",
            )
        )
        return result

    def mark_failed(self, machine_id: int) -> None:
        """Record a hardware failure; the next observation re-plans
        around it (immediately, bypassing both dwell and hysteresis —
        capacity may be gone, and a suppressed-replan window must not
        swallow the alert)."""
        if not 0 <= machine_id < self.optimizer.model.node_count:
            raise ConfigurationError(
                f"unknown machine id {machine_id}"
            )
        self.failed.add(machine_id)
        self._failure_pending = True
        if self._plan is not None and machine_id in self._plan.on_ids:
            self._plan = None  # the active plan uses dead hardware

    def mark_repaired(self, machine_id: int) -> None:
        """Return a machine to service (it becomes eligible at the next
        re-plan; no forced reconfiguration)."""
        self.failed.discard(machine_id)

    def attach_fault_injector(self, injector) -> None:
        """Subscribe to a :class:`repro.faults.FaultInjector`: every
        observation advances the injector's replay and mirrors its
        ``machine_crash`` state through :meth:`mark_failed` /
        :meth:`mark_repaired` (a hardware health feed)."""
        self.fault_injector = injector
        self._injector_failed = frozenset()
        if injector is not None:
            self._sync_injector_faults()

    def _sync_injector_faults(self) -> None:
        current = self.fault_injector.failed_machines
        for machine in sorted(current - self._injector_failed):
            self.mark_failed(machine)
        for machine in sorted(self._injector_failed - current):
            self.mark_repaired(machine)
        self._injector_failed = current

    def _needs_replan(self, load: float) -> Optional[str]:
        if self._plan is None:
            return (
                "initial plan"
                if not self.events
                else "active plan lost a machine"
            )
        if self._failure_pending:
            # A machine failed since the last accepted plan (even one the
            # plan wasn't using — the feasible set shrank either way).
            return "hardware failure"
        if load > self._planned_for:
            # The plan (which already includes headroom) no longer covers
            # the offered load.
            return "load above planned band"
        if load * self.headroom < self._planned_for * (1.0 - self.hysteresis):
            # The load fell far enough that a fresh plan would be
            # meaningfully cheaper.
            return "load well below planned band"
        return None

    def observe(self, time: float, load: float) -> Optional[OptimizationResult]:
        """Feed one load observation; returns a new plan if one was made.

        Raises
        ------
        InfeasibleError
            If the observed load (with headroom capped at cluster
            capacity) cannot be served at all.
        """
        if load < 0.0:
            raise ConfigurationError(f"load must be non-negative, got {load}")
        if self.fault_injector is not None:
            self.fault_injector.advance(time)
            self._sync_injector_faults()
        reason = self._needs_replan(load)
        if reason is None:
            return None
        dwell_ok = (time - self._last_change) >= self.min_dwell
        urgent = (
            self._plan is None
            or load > self._planned_for
            or self._failure_pending
        )
        if not dwell_ok and not urgent:
            # Scale-down within dwell: keep the old (over-provisioned but
            # safe) plan rather than flapping.
            self.suppressed += 1
            obs.count("controller.suppressed")
            obs.add_event(
                "replan.suppressed",
                time=time,
                offered_load=load,
                reason=reason,
                dwell_remaining=self.min_dwell - (time - self._last_change),
            )
            return None
        capacity = self.surviving_capacity()
        target = min(max(load * self.headroom, 1e-6), capacity)
        if load > capacity + 1e-9:
            raise InfeasibleError(
                f"offered load {load:.1f} exceeds surviving capacity "
                f"{capacity:.1f}"
            )
        return self._replan(time, load, target, reason)

    def surviving_capacity(self) -> float:
        """Total task capacity of machines not marked failed."""
        return sum(
            c
            for i, c in enumerate(self.optimizer.model.capacities)
            if i not in self.failed
        )

    def _replan(
        self, time: float, load: float, target: float, reason: str
    ) -> Optional[OptimizationResult]:
        """Solve for ``target`` and adopt the plan; on infeasibility keep
        the previous plan (or raise if there is none).  Subclasses
        override this seam to add degraded-mode strategies."""
        try:
            result = self._solve_plan(time, load, target, reason)
        except InfeasibleError as exc:
            self._note_infeasible(exc, time, load)
            if self._plan is None:
                raise
            # Keep the previous (still-valid) plan active rather than
            # leaving the room uncontrolled.
            return None
        self._accept_plan(time, load, target, result, reason)
        return result

    def _solve_plan(
        self, time: float, load: float, target: float, reason: str
    ) -> OptimizationResult:
        """One observed solve attempt, always excluding failed machines
        (a failed machine can never reappear in a plan until repaired)."""
        with obs.timed("controller/replan"):
            obs.set_span_attributes(
                time=time, offered_load=load, planned_load=target,
                reason=reason,
            )
            return self.optimizer.solve(target, exclude=sorted(self.failed))

    def _note_infeasible(
        self, exc: InfeasibleError, time: float, load: float
    ) -> None:
        obs.count("controller.replan_infeasible")
        wd = _watchdog._active
        if wd is not None:
            wd.notify_infeasible(str(exc), time=time, offered_load=load)
        else:
            obs.add_event(
                "constraint.violation",
                monitor="replan",
                metric="replan.feasible",
                message=str(exc),
                time=time,
                offered_load=load,
            )

    def _accept_plan(
        self,
        time: float,
        load: float,
        target: float,
        result: OptimizationResult,
        reason: str,
    ) -> None:
        wd = _watchdog._active
        if wd is not None:
            wd.check_replan(self, result, load)
        self._plan = result
        self._planned_for = target
        self._last_change = time
        self._failure_pending = False
        self.reconfigurations += 1
        obs.count("controller.reconfigurations")
        self.events.append(
            ControllerEvent(
                time=time,
                offered_load=load,
                planned_load=target,
                machines_on=len(result.on_ids),
                t_sp=result.t_sp,
                reason=reason,
            )
        )

    def _prefetch_trace(self, trace, dt: float) -> None:
        """Warm the consolidation index for every planning target the
        replay can request.

        The planning target is a pure function of the observed load
        (headroom, floored, capacity-capped), so the whole trace's worth
        of selection queries can be answered in one
        :meth:`~repro.core.consolidation.ConsolidationIndex.query_many`
        batch up front; the replay's re-plans then hit the query memo.
        Only meaningful on the indexed selection paths (monolithic or
        pod-sharded) with healthy hardware (exclusions bypass the index
        entirely).
        """
        if self.optimizer.selection not in ("index", "sharded") or self.failed:
            return
        capacity = sum(self.optimizer.model.capacities)
        targets = set()
        t = 0.0
        while t <= trace.duration:
            load = trace.load_at(t)
            if 0.0 <= load <= capacity + 1e-9:
                targets.add(min(max(load * self.headroom, 1e-6), capacity))
            t += dt
        if not targets:
            return
        with obs.timed("controller/prefetch"):
            self.optimizer.query_index.query_many(
                sorted(targets), skip_infeasible=True
            )
            obs.set_span_attributes(targets=len(targets))

    def run_trace(
        self, trace, dt: float = 60.0, prefetch: bool = False
    ) -> list[ControllerEvent]:
        """Drive the controller over a :class:`~repro.workload.traces.LoadTrace`.

        With ``prefetch=True``, all distinct planning targets of the
        replay are resolved in one batched index query before the loop
        starts, so every re-plan's selection is a memo hit.

        Returns the reconfiguration events (also kept on ``self.events``).
        """
        if dt <= 0.0:
            raise ConfigurationError(f"dt must be positive, got {dt}")
        if prefetch:
            self._prefetch_trace(trace, dt)
        with obs.record_run(
            "controller.trace",
            inputs={"duration": trace.duration, "dt": dt},
        ) as rec:
            t = 0.0
            while t <= trace.duration:
                self.observe(t, trace.load_at(t))
                t += dt
            if rec is not None:
                rec.outcome.update(
                    reconfigurations=self.reconfigurations,
                    suppressed=self.suppressed,
                )
        return list(self.events)
