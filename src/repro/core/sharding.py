"""Pod-sharded consolidation: Algorithm 1 beyond n ≈ 500.

The paper's pre-processing is O(n^3 log n) — vectorizing bought ~40x
(see ``benchmarks/bench_consolidation_scale.py``) but the cubic term
still walls out near n = 500 (~8.5 s build, 31.7M status rows).  This
module takes the system from hundreds to thousands of machines by
partitioning the room into *pods* (contiguous machine-id ranges, the
same grouping rule as :class:`repro.testbed.multirack.MultiRackConfig`
racks and the thermal zones in :mod:`repro.thermal.zonal`) and building
one small :class:`~repro.core.consolidation.ConsolidationIndex` per pod:
the offline cost drops from ``n^3`` to ``sum_p m_p^3`` — a factor of
``(n / m)^2`` for pods of size ``m``.

Queries stay (essentially) exact because the paper's particle view
(Eq. 26) composes across any partition: at a fixed ratio ``t`` the best
global size-``k`` set is the ``k`` right-most particles, and the ``k``
right-most particles of a partitioned room are, pod by pod, prefixes of
each pod's own tabulated order at ``t``.  A global query therefore

1. looks up each pod's order row for ``t`` in O(log m_p) (the pod's own
   Algorithm-2 search over event times),
2. *water-fills* the global budget across the pods — a greedy merge of
   the pods' presorted coordinate lists, exact because each pod's
   ``maxL(k_p, t)`` curve is concave in ``k_p`` (prefix sums of a
   descending sort), so marginal returns decrease and the greedy split
   is the water-filling optimum (cf. Rostami et al., "Linearized Data
   Center Workload and Cooling Management"),
3. runs the Dinkelbach ratio iteration of
   :func:`repro.core.select.select_subset` on the merged prefix sums to
   find each cardinality's optimal shared ratio ``t*(k)``, scanning
   ``k`` with an exact pruning bound (any candidate of size ``k`` costs
   at least ``k*w2 - rho*t_max + theta0``, which is increasing in
   ``k``), and
4. when the water-filling cut is *near-flat* (several pods offer almost
   identical marginal coordinates, so greedy tie-breaking is
   ill-conditioned), re-solves the split as a small LP over per-pod
   segment variables (``scipy.optimize.linprog`` when available; the
   greedy split is kept otherwise — the LP exists for robustness on
   degenerate curves, the two agree whenever the cut is unique).

Because the cooling term ``-rho * t`` of Eq. 23 is *global* (one cooler
serves every pod), per-pod costs must never be summed independently —
that would double-count the cooler.  The shared-ratio formulation above
is what makes the decomposition sound: every pod operates at the same
``t``, and each pod's share of the load is its prefix coordinate sum at
that ratio.

The module also provides a seeded simulated-annealing baseline over
on-sets (:func:`anneal_on_set`, per the metaheuristic line of Arroba et
al.) used by the scale benchmark to report the optimality gap at sizes
where the monolithic index is the ground truth (n <= 500) and beyond it
(n = 2000, 5000).

``PodShardedIndex`` mirrors the monolithic index's query surface
(``query_refined`` / ``query_many`` / ``status_count`` / ``cache_key``),
so :class:`~repro.core.optimizer.JointOptimizer` exposes it as
``selection="sharded"`` and the serving daemon, controller, and fault
campaigns inherit it unchanged.
"""

from __future__ import annotations

import hashlib
import math
import os
import pathlib
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence, Union

import numpy as np

from repro import obs
from repro.errors import ConfigurationError, InfeasibleError
from repro.core.consolidation import (
    ConsolidationIndex,
    consolidation_cache_key,
)
from repro.core.select import Pair, _validate_pairs

#: Default pod size targeted when the caller does not pick a pod count:
#: small enough that a pod build is milliseconds, large enough that the
#: cross-pod merge stays short.
DEFAULT_POD_MACHINES = 48

#: Bounded memo of query results (the index is immutable).
_MEMO_CAPACITY = 4096

#: Bounded cache of per-ratio merge evaluations.
_EVAL_CAPACITY = 32

#: Bounded cache of per-(pod, row) order-aligned coefficient arrays.
_ROW_CAPACITY = 4096

#: Relative marginal-coordinate gap below which the water-filling cut
#: counts as near-flat and the split is re-solved as a small LP.
DEFAULT_LP_TOLERANCE = 1e-9


def contiguous_pods(n: int, pods: int) -> list[range]:
    """Partition machine ids ``0..n-1`` into ``pods`` contiguous ranges.

    Mirrors the rack rule of
    :meth:`repro.testbed.multirack.MultiRackConfig.rack_members`
    (contiguous ids, sizes differing by at most one), so a pod boundary
    can be aligned with physical racks by choosing ``pods = n_racks``.
    """
    if n < 1:
        raise ConfigurationError(f"need at least one machine, got {n}")
    if not 1 <= pods <= n:
        raise ConfigurationError(
            f"pod count must be in [1, {n}], got {pods}"
        )
    base, extra = divmod(n, pods)
    ranges: list[range] = []
    start = 0
    for p in range(pods):
        size = base + (1 if p < extra else 0)
        ranges.append(range(start, start + size))
        start += size
    return ranges


def default_pod_count(n: int) -> int:
    """Pod count targeting :data:`DEFAULT_POD_MACHINES` machines per pod."""
    return max(1, math.ceil(n / DEFAULT_POD_MACHINES))


def subset_power(
    pairs: Sequence[Pair],
    subset: Sequence[int],
    load: float,
    w2: float,
    rho: float,
    theta0: float = 0.0,
    t_min: Optional[float] = None,
    t_max: Optional[float] = None,
    capacities: Optional[Sequence[float]] = None,
) -> float:
    """Exact Eq. 23 power of running ``load`` on ``subset``.

    The subset's own achievable ratio ``t(S) = (sum a - L) / sum b`` is
    clamped into the supply band exactly like
    :meth:`ConsolidationIndex.query_refined` scores its candidates: a
    ratio above ``t_max`` runs the cooler at its warmest, one below
    ``t_min`` pins it at the band edge.  Used by the equivalence tests
    and the scale benchmark to compare answers from different solvers
    on one scale.

    Raises
    ------
    InfeasibleError
        If the subset is empty or lacks the capacity for ``load``.
    """
    ps = _validate_pairs(pairs)
    chosen = sorted(int(i) for i in subset)
    if not chosen:
        raise InfeasibleError("cannot serve load on an empty subset")
    if capacities is not None:
        cap = sum(capacities[i] for i in chosen)
        if cap + 1e-9 < load:
            raise InfeasibleError(
                f"subset capacity {cap:.3f} below load {load:.3f}"
            )
    sum_a = sum(ps[i][0] for i in chosen)
    sum_b = sum(ps[i][1] for i in chosen)
    t = (sum_a - load) / sum_b
    if t_min is not None and t < t_min:
        t = t_min if t_max is None else min(t_min, t_max)
    if t_max is not None:
        t = min(t, t_max)
    return len(chosen) * w2 - rho * t + theta0


def _pod_build_worker(spec: dict) -> dict:
    """Build one pod's tables in a worker process.

    Returns the column-oriented arrays (not the index object) so the
    payload pickles cheaply and the parent re-assembles via
    :meth:`ConsolidationIndex._from_tables`.
    """
    index = ConsolidationIndex(**spec)
    return {
        "event_t": index._event_t,
        "event_p": index._event_p,
        "event_q": index._event_q,
        "times": index._times,
        "orders_mat": index._orders_mat,
        "tab_row": index._tab_row,
        "tab_k": index._tab_k,
        "tab_lmax": index._tab_lmax,
    }


@dataclass(frozen=True)
class AnnealResult:
    """Outcome of one :func:`anneal_on_set` run."""

    on_ids: tuple[int, ...]
    power: float
    iterations: int
    accepted: int


def anneal_on_set(
    pairs: Sequence[Pair],
    load: float,
    w2: float,
    rho: float,
    theta0: float = 0.0,
    t_min: Optional[float] = None,
    t_max: Optional[float] = None,
    capacities: Optional[Sequence[float]] = None,
    seed: int = 0,
    iterations: int = 20000,
) -> AnnealResult:
    """Seeded simulated annealing over on-set bitmasks.

    The metaheuristic baseline of the scale benchmark: single-flip
    moves, Metropolis acceptance on a geometric temperature schedule
    from ``w2`` down to ``1e-3 * w2``, O(1) incremental cost updates
    (the Eq. 23 cost depends on the subset only through ``k``,
    ``sum a``, ``sum b`` and the capacity sum).  Band and capacity
    violations are soft-penalized during the walk; only violation-free
    states are eligible as the returned best.  Deterministic per seed.

    Raises
    ------
    InfeasibleError
        If no feasible on-set was visited (including the greedy start).
    """
    ps = _validate_pairs(pairs)
    n = len(ps)
    if iterations < 1:
        raise ConfigurationError(
            f"iterations must be positive, got {iterations}"
        )
    a = np.asarray([p[0] for p in ps], dtype=np.float64)
    b = np.asarray([p[1] for p in ps], dtype=np.float64)
    caps = (
        None
        if capacities is None
        else np.asarray(capacities, dtype=np.float64)
    )
    t_floor = 0.0 if t_min is None else t_min
    # Penalty scales: steep enough that one load-unit of violation
    # dominates any achievable cost swing.
    cap_pen = 10.0 * (w2 + rho)
    band_pen = 10.0 * rho

    def cost(k: int, sa: float, sb: float, sc: float) -> tuple[float, bool]:
        if k == 0:
            return float("inf"), False
        t = (sa - load) / sb
        feasible = True
        penalty = 0.0
        if caps is not None and sc + 1e-9 < load:
            feasible = False
            penalty += cap_pen * (load - sc)
        if t_min is not None and t < t_min - 1e-12:
            feasible = False
            penalty += band_pen * (t_min - t)
        t_eff = max(t, t_floor)
        if t_max is not None:
            t_eff = min(t_eff, t_max)
        return k * w2 - rho * t_eff + theta0 + penalty, feasible

    # Greedy start: right-most particles at the band floor until the
    # load (and its capacity) are covered.
    order = np.argsort(-(a - t_floor * b), kind="stable")
    mask = np.zeros(n, dtype=bool)
    sa = sb = sc = 0.0
    k = 0
    covered = 0.0
    for i in order.tolist():
        mask[i] = True
        sa += a[i]
        sb += b[i]
        sc += float(caps[i]) if caps is not None else 0.0
        k += 1
        covered += float(a[i] - t_floor * b[i])
        if covered >= load and (caps is None or sc + 1e-9 >= load):
            break

    current, feasible = cost(k, sa, sb, sc)
    best_mask: Optional[np.ndarray] = mask.copy() if feasible else None
    best_power = current if feasible else float("inf")

    rng = np.random.default_rng(seed)
    flips = rng.integers(0, n, size=iterations)
    uniforms = rng.random(iterations)
    t_hot, t_cold = max(w2, 1e-9), max(1e-3 * w2, 1e-12)
    decay = (t_cold / t_hot) ** (1.0 / max(1, iterations - 1))
    temp = t_hot
    accepted = 0
    for step in range(iterations):
        i = int(flips[step])
        sign = -1.0 if mask[i] else 1.0
        nk = k + (1 if sign > 0 else -1)
        nsa = sa + sign * float(a[i])
        nsb = sb + sign * float(b[i])
        nsc = sc + (sign * float(caps[i]) if caps is not None else 0.0)
        candidate, feasible = cost(nk, nsa, nsb, nsc)
        delta = candidate - current
        if delta <= 0.0 or uniforms[step] < math.exp(
            -delta / max(temp, 1e-12)
        ):
            mask[i] = not mask[i]
            k, sa, sb, sc, current = nk, nsa, nsb, nsc, candidate
            accepted += 1
            if feasible and candidate < best_power - 1e-12:
                best_power = candidate
                best_mask = mask.copy()
        temp *= decay
    obs.count("sharding.anneal_runs")
    if best_mask is None:
        raise InfeasibleError(
            f"annealing found no feasible on-set for load {load}"
        )
    on_ids = tuple(int(i) for i in np.flatnonzero(best_mask))
    return AnnealResult(
        on_ids=on_ids,
        power=float(best_power),
        iterations=iterations,
        accepted=accepted,
    )


class PodShardedIndex:
    """Pod-partitioned Algorithm 1 with shared-ratio global queries.

    Parameters mirror :class:`ConsolidationIndex`, plus:

    Parameters
    ----------
    pods:
        Number of contiguous pods (default: one pod per
        :data:`DEFAULT_POD_MACHINES` machines).  ``pods=1`` degenerates
        to a single monolithic index behind the sharded query path.
    cache_dir:
        Optional directory of persisted pod indexes.  Each pod's tables
        are keyed by their own content hash
        (:func:`~repro.core.consolidation.consolidation_cache_key`) and
        round-tripped through the standard ``.npz`` documents of
        :mod:`repro.core.serialization` — so pods are shared between a
        sharded and any other index over the same machine subset, and
        corrupt files are rebuilt, never trusted.
    max_workers:
        Process-pool width for the parallel pod builds (default: the
        machine's CPU count).  Builds fall back to serial, with the
        identical result, when worker processes cannot be spawned
        (restricted sandboxes) or only one pod needs building.
    lp_tolerance:
        Relative marginal gap under which the water-filling cut counts
        as near-flat and the split is re-solved as a small LP.

    Unlike the monolithic index, the supply band is mandatory: the
    shared-ratio scan prices candidates against ``t_max`` to prune the
    cardinality sweep exactly, and brackets the sweep at ``t_min``.
    (:class:`~repro.core.optimizer.JointOptimizer` always derives the
    band from the cooler's achievable supply range.)
    """

    def __init__(
        self,
        pairs: Sequence[Pair],
        w2: float,
        rho: float,
        theta0: float = 0.0,
        t_min: Optional[float] = None,
        t_max: Optional[float] = None,
        capacities: Optional[Sequence[float]] = None,
        pods: Optional[int] = None,
        cache_dir: Optional[Union[str, pathlib.Path]] = None,
        max_workers: Optional[int] = None,
        lp_tolerance: float = DEFAULT_LP_TOLERANCE,
    ) -> None:
        self.pairs = _validate_pairs(pairs)
        n = len(self.pairs)
        if w2 < 0.0:
            raise ConfigurationError(f"w2 must be non-negative, got {w2}")
        if rho <= 0.0:
            raise ConfigurationError(f"rho must be positive, got {rho}")
        if t_min is None or t_max is None:
            raise ConfigurationError(
                "the sharded index needs both t_min and t_max: the "
                "shared-ratio scan brackets candidates against the "
                "supply band"
            )
        if not 0.0 <= t_min <= t_max:
            raise ConfigurationError(
                f"need 0 <= t_min <= t_max, got [{t_min}, {t_max}]"
            )
        if capacities is not None and len(capacities) != n:
            raise ConfigurationError(
                f"{n} pairs but {len(capacities)} capacities"
            )
        if lp_tolerance < 0.0:
            raise ConfigurationError(
                f"lp_tolerance must be non-negative, got {lp_tolerance}"
            )
        self.w2 = float(w2)
        self.rho = float(rho)
        self.theta0 = float(theta0)
        self.t_min = float(t_min)
        self.t_max = float(t_max)
        self.capacities = (
            None if capacities is None else [float(c) for c in capacities]
        )
        self.lp_tolerance = float(lp_tolerance)
        self.cache_dir = (
            None if cache_dir is None else pathlib.Path(cache_dir)
        )
        self.max_workers = max_workers
        pod_count = default_pod_count(n) if pods is None else int(pods)
        self.pod_ranges = contiguous_pods(n, pod_count)
        self._a = np.asarray([p[0] for p in self.pairs], dtype=np.float64)
        self._b = np.asarray([p[1] for p in self.pairs], dtype=np.float64)
        self._caps = (
            None
            if self.capacities is None
            else np.asarray(self.capacities, dtype=np.float64)
        )
        # Prefix sums of the descending-sorted capacities: no k-subset
        # holds more than the k largest capacities, so this lower-bounds
        # the feasible cardinality for any load and lets the query scan
        # skip thousands of hopeless sizes at high utilization.
        self._cap_desc_cum = (
            None
            if self._caps is None
            else np.cumsum(np.sort(self._caps)[::-1])
        )
        self.indexes: list[ConsolidationIndex] = []
        self._build_pods()
        # Bounded caches (never persisted).
        self._row_cache: dict[tuple[int, int], tuple] = {}
        self._eval_cache: dict[float, tuple] = {}
        self._memo: dict[float, tuple[int, ...]] = {}

    # ------------------------------------------------------------------ #
    # Offline: per-pod Algorithm 1, in parallel, through the .npz cache
    # ------------------------------------------------------------------ #

    def _pod_spec(self, ids: range) -> dict:
        return dict(
            pairs=[self.pairs[i] for i in ids],
            w2=self.w2,
            rho=self.rho,
            theta0=self.theta0,
            t_min=self.t_min,
            t_max=self.t_max,
            capacities=(
                None
                if self.capacities is None
                else [self.capacities[i] for i in ids]
            ),
        )

    def _build_pods(self) -> None:
        from repro.core.serialization import (
            load_consolidation_index,
            save_consolidation_index,
        )

        specs = [self._pod_spec(ids) for ids in self.pod_ranges]
        built: list[Optional[ConsolidationIndex]] = [None] * len(specs)
        pending: list[int] = []
        with obs.timed("sharding/build"):
            for p, spec in enumerate(specs):
                if self.cache_dir is None:
                    pending.append(p)
                    continue
                key = consolidation_cache_key(**spec)
                path = self.cache_dir / f"consolidation-{key[:24]}.npz"
                if path.exists():
                    try:
                        built[p] = load_consolidation_index(
                            path, expected_key=key
                        )
                        obs.count("sharding.pod_cache_hits")
                        continue
                    except ConfigurationError:
                        obs.count("sharding.pod_cache_invalid")
                pending.append(p)
            if pending:
                obs.count("sharding.pod_builds", len(pending))
                tables = self._build_tables(
                    [specs[p] for p in pending]
                )
                for p, pod_tables in zip(pending, tables):
                    built[p] = ConsolidationIndex._from_tables(
                        engine="numpy", **specs[p], **pod_tables
                    )
                if self.cache_dir is not None:
                    self.cache_dir.mkdir(parents=True, exist_ok=True)
                    for p in pending:
                        index = built[p]
                        path = self.cache_dir / (
                            f"consolidation-{index.cache_key[:24]}.npz"
                        )
                        save_consolidation_index(index, path)
            self.indexes = [index for index in built if index is not None]
            obs.set_span_attributes(
                machines=len(self.pairs),
                pods=self.pod_count,
                built=len(pending),
                statuses=self.status_count,
            )
        obs.set_gauge("sharding.pods", self.pod_count)
        obs.set_gauge("sharding.statuses", self.status_count)

    def _build_tables(self, specs: list[dict]) -> list[dict]:
        """Build the pending pods' tables, in parallel when possible.

        Worker-process failures (sandboxes that forbid ``fork``/spawn,
        unpicklable edge cases, broken pools) degrade to the serial
        build — same tables, just slower — rather than failing the
        caller.
        """
        workers = self.max_workers
        if workers is None:
            workers = os.cpu_count() or 1
        workers = min(int(workers), len(specs))
        if workers > 1:
            try:
                from concurrent.futures import ProcessPoolExecutor
                from concurrent.futures.process import BrokenProcessPool

                with ProcessPoolExecutor(max_workers=workers) as pool:
                    tables = list(pool.map(_pod_build_worker, specs))
                obs.count("sharding.parallel_pod_builds", len(specs))
                return tables
            except (OSError, ValueError, RuntimeError, ImportError,
                    BrokenProcessPool, NotImplementedError):
                obs.count("sharding.parallel_build_fallbacks")
        return [_pod_build_worker(spec) for spec in specs]

    # ------------------------------------------------------------------ #
    # Structure facts (mirroring the monolithic surface)
    # ------------------------------------------------------------------ #

    @property
    def pod_count(self) -> int:
        """Number of pods the machines are partitioned into."""
        return len(self.pod_ranges)

    @property
    def event_count(self) -> int:
        """Total pairwise passing events across the pods."""
        return sum(index.event_count for index in self.indexes)

    @property
    def status_count(self) -> int:
        """Total tabulated statuses across the pods (``sum_p m_p^3``
        scale, versus the monolithic ``n^3``)."""
        return sum(index.status_count for index in self.indexes)

    @property
    def largest_pod(self) -> int:
        """Machines in the largest pod."""
        return max(len(ids) for ids in self.pod_ranges)

    @property
    def cache_key(self) -> str:
        """Content hash over the pod keys and the pod boundaries."""
        digest = hashlib.sha256()
        digest.update(b"repro-pod-sharded-index")
        digest.update(str([len(ids) for ids in self.pod_ranges]).encode())
        for index in self.indexes:
            digest.update(index.cache_key.encode())
        return digest.hexdigest()

    # ------------------------------------------------------------------ #
    # Online: shared-ratio merge over the pods' tabulated orders
    # ------------------------------------------------------------------ #

    def _pod_row(self, p: int, t: float) -> tuple:
        """Order-aligned ``(ids, a, b, cap)`` of pod ``p`` at ratio ``t``.

        The pod's own Algorithm-2 binary search over its event times
        finds the order row valid at ``t``; the pod's coefficients are
        then aligned to that order once and cached, so repeated ratios
        (bisection ladders, the Dinkelbach iteration) reuse them.
        """
        index = self.indexes[p]
        row = int(
            np.searchsorted(index._times, t, side="right")
        ) - 1
        row = max(row, 0)
        key = (p, row)
        cached = self._row_cache.get(key)
        if cached is None:
            order = index._orders_mat[row]
            start = self.pod_ranges[p].start
            cached = (
                order.astype(np.int64) + start,
                index._a[order],
                index._b[order],
                None if self._caps is None
                else self._caps[order + start],
            )
            if len(self._row_cache) >= _ROW_CAPACITY:
                self._row_cache.pop(next(iter(self._row_cache)))
            self._row_cache[key] = cached
        return cached

    def _evaluate(self, t: float):
        """Water-filling merge of every pod's order at ratio ``t``.

        Concatenates the pods' presorted (descending-coordinate)
        segments and stably sorts the merged marginals — the greedy
        fill over concave per-pod ``maxL`` curves.  Returns the merged
        ``(ids, pod_of, cum_a, cum_b, cum_x, cum_cap, x_sorted)``:
        entry ``k - 1`` of each cumulative array describes the globally
        best size-``k`` subset at ``t``.
        """
        t = float(t)
        hit = self._eval_cache.get(t)
        if hit is not None:
            return hit
        parts = [self._pod_row(p, t) for p in range(self.pod_count)]
        ids = np.concatenate([part[0] for part in parts])
        a = np.concatenate([part[1] for part in parts])
        b = np.concatenate([part[2] for part in parts])
        pod_of = np.concatenate(
            [
                np.full(len(part[0]), p, dtype=np.int32)
                for p, part in enumerate(parts)
            ]
        )
        x = a - t * b
        # Stable sort on the negated marginals: ties go to the lower
        # concatenated position, i.e. the lower pod then the pod's own
        # (lower-id-first) tie rule — the monolithic order's tie rule.
        merged = np.argsort(-x, kind="stable")
        x_sorted = x[merged]
        cum_a = np.cumsum(a[merged])
        cum_b = np.cumsum(b[merged])
        cum_x = np.cumsum(x_sorted)
        if self._caps is None:
            cum_cap = None
        else:
            cap = np.concatenate([part[3] for part in parts])
            cum_cap = np.cumsum(cap[merged])
        result = (
            ids[merged], pod_of[merged], cum_a, cum_b, cum_x, cum_cap,
            x_sorted,
        )
        if len(self._eval_cache) >= _EVAL_CAPACITY:
            self._eval_cache.pop(next(iter(self._eval_cache)))
        self._eval_cache[t] = result
        return result

    def _topk_sums(
        self, t: float, k: int
    ) -> tuple[float, float, Optional[float]]:
        """Aggregates ``(sum a, sum b, sum cap)`` of the global top-``k``
        at ratio ``t``.

        The ratio iteration needs only these sums, never the member
        order, so they come from an O(n) selection
        (``numpy.argpartition``) on the raw coordinate array — the full
        cross-pod merge is reserved for the cached band-edge rows and
        the final materialization.  Any tie set at the cut yields the
        same ``maxL`` value, so the fixpoint below is unaffected by
        partition tie-breaking.
        """
        x = self._a - t * self._b
        if k < x.shape[0]:
            idx = np.argpartition(-x, k - 1)[:k]
            sum_a = float(self._a[idx].sum())
            sum_b = float(self._b[idx].sum())
            sum_cap = (
                None if self._caps is None else float(self._caps[idx].sum())
            )
        else:
            sum_a = float(self._a.sum())
            sum_b = float(self._b.sum())
            sum_cap = (
                None if self._caps is None else float(self._caps.sum())
            )
        return sum_a, sum_b, sum_cap

    def _ratio_fixpoint(
        self, k: int, load: float, t0: float
    ) -> tuple[float, Optional[float]]:
        """Dinkelbach iteration for the optimal shared ratio at size ``k``.

        ``g_k(t) = maxL(k, t) - load`` is convex and strictly
        decreasing (a pointwise max of decreasing linear functions), so
        the iteration ``t <- (sum a - load) / sum b`` over the current
        top-``k`` converges to its unique root ``t*(k)`` from any start
        (the :func:`~repro.core.select.select_subset` argument).
        Returns ``(t_star, capacity_of_the_top_k_at_t_star)``.
        """
        t = t0
        sum_cap = None
        for _ in range(80):
            sum_a, sum_b, sum_cap = self._topk_sums(t, k)
            t_new = (sum_a - load) / sum_b
            if abs(t_new - t) <= 1e-12 * max(1.0, abs(t)):
                return t_new, sum_cap
            t = t_new
        return t, sum_cap

    def _near_flat_cut(self, x_sorted: np.ndarray, k: int) -> bool:
        """Is the water-filling cut after position ``k`` near-flat?"""
        if k >= x_sorted.shape[0]:
            return False
        gap = float(x_sorted[k - 1] - x_sorted[k])
        scale = max(1.0, abs(float(x_sorted[k - 1])))
        return gap <= self.lp_tolerance * scale

    def _lp_split(self, t: float, k: int) -> Optional[np.ndarray]:
        """Re-solve the cross-pod split as a small LP.

        Maximize the merged coordinate sum over fractional per-pod
        prefix lengths — the piecewise-linear concave relaxation of the
        water-filling problem (one bounded variable per candidate
        marginal, a single coupling row ``sum y = k``).  Because each
        pod's marginals are non-increasing, the LP optimum fills every
        pod's prefix in order, so rounding the per-pod sums back to
        integers (largest fractional remainders first) reproduces a
        valid split.  Returns per-pod counts, or ``None`` when scipy is
        unavailable or the solver fails — the greedy split stands.
        """
        try:
            from scipy.optimize import linprog
        except ImportError:
            obs.count("sharding.lp_unavailable")
            return None
        marginals = []
        labels = []
        for p in range(self.pod_count):
            _, a, b, _ = self._pod_row(p, t)
            take = min(len(a), k)
            if take == 0:
                continue
            marginals.append(a[:take] - t * b[:take])
            labels.append(np.full(take, p, dtype=np.int64))
        coeffs = np.concatenate(marginals)
        pods = np.concatenate(labels)
        result = linprog(
            c=-coeffs,
            A_eq=np.ones((1, coeffs.shape[0])),
            b_eq=[float(k)],
            bounds=[(0.0, 1.0)] * coeffs.shape[0],
            method="highs",
        )
        if not result.success:
            obs.count("sharding.lp_failures")
            return None
        obs.count("sharding.lp_splits")
        fractional = np.bincount(
            pods, weights=result.x, minlength=self.pod_count
        )
        counts = np.floor(fractional + 1e-9).astype(np.int64)
        counts = np.minimum(
            counts,
            np.asarray([len(ids) for ids in self.pod_ranges]),
        )
        short = k - int(counts.sum())
        if short > 0:
            remainders = fractional - counts
            for p in np.argsort(-remainders, kind="stable")[:short]:
                counts[p] += 1
        return counts

    def _materialize(self, t: float, k: int) -> list[int]:
        """The global ON set at ``(t, k)``: each pod's order prefix.

        The greedy merge already names the members; on a near-flat cut
        the per-pod counts are re-derived by the LP and each pod is
        queried for its ``k_p``-prefix instead.
        """
        ids, pod_of, _, _, _, _, x_sorted = self._evaluate(t)
        if self._near_flat_cut(x_sorted, k):
            counts = self._lp_split(t, k)
            if counts is not None:
                chosen: list[int] = []
                for p, k_p in enumerate(counts.tolist()):
                    if k_p == 0:
                        continue
                    gids = self._pod_row(p, t)[0]
                    chosen.extend(int(i) for i in gids[:k_p])
                if len(chosen) == k:
                    return sorted(chosen)
        return sorted(int(i) for i in ids[:k])

    def query_refined(
        self, load: float, window: Optional[int] = None
    ) -> list[int]:
        """The sharded allocation query (mirrors
        :meth:`ConsolidationIndex.query_refined` semantics).

        Scans candidate cardinalities with each size's optimal shared
        ratio (Dinkelbach on the merged pod prefixes), prunes with the
        exact bound ``k * w2 - rho * t_max + theta0 <= cost(k)``, and
        mirrors the monolithic band handling: candidates whose ratio
        falls below ``t_min`` are kept only as a band-clamped fallback,
        and capacity-infeasible prefixes are skipped.  ``window`` is
        accepted for interface parity and ignored — the pruned sweep is
        already exact, there is no re-scoring window to size.

        Raises
        ------
        InfeasibleError
            If no on-set of any size can serve ``load``, or every
            candidate lacks the physical capacity for it.
        """
        del window  # interface parity with the monolithic index
        with obs.timed("sharding/query"):
            obs.count("sharding.queries")
            chosen = self._query(float(load))
            obs.set_span_attributes(load=float(load), machines_on=len(chosen))
        return chosen

    def query(self, load: float) -> list[int]:
        """Alias of :meth:`query_refined` (the sharded path has no
        unrefined variant: the shared-ratio scan is the query)."""
        return self.query_refined(load)

    def _query(self, load: float) -> list[int]:
        memo = self._memo.get(load)
        if memo is not None:
            obs.count("sharding.query_memo_hits")
            return list(memo)
        chosen = self._query_scan(load)
        if len(self._memo) >= _MEMO_CAPACITY:
            self._memo.pop(next(iter(self._memo)))
        self._memo[load] = tuple(chosen)
        return chosen

    def _query_scan(self, load: float) -> list[int]:
        n = len(self.pairs)
        # Feasibility mirror of the monolithic table search: every
        # particle coordinate decreases with t, so the largest
        # tabulated Lmax anywhere is the best prefix sum at t = 0.
        cum_x0 = self._evaluate(0.0)[4]
        if load >= float(np.max(cum_x0)):
            raise InfeasibleError(
                f"no status can serve load {load}; cluster too small"
            )
        # No subset of size k holds more capacity than the k largest
        # capacities: start every sweep at that lower bound.
        k_cap = 1
        if self._cap_desc_cum is not None:
            k_cap = int(
                np.searchsorted(self._cap_desc_cum, load - 1e-9)
            ) + 1
            if k_cap > n:
                raise InfeasibleError(
                    f"no candidate subset has the capacity for load {load}"
                )
        # In-band candidates: sizes whose prefix at the band floor can
        # carry the load (concave prefix sums => a contiguous range).
        cum_x_floor = self._evaluate(self.t_min)[4]
        viable = np.flatnonzero(cum_x_floor >= load - 1e-9)
        best_k = best_t = None
        best_power = float("inf")
        if viable.size:
            k_lo, k_hi = int(viable[0]) + 1, int(viable[-1]) + 1
            k_lo = max(k_lo, k_cap)
            t_warm = self.t_min
            for k in range(k_lo, k_hi + 1):
                floor_power = k * self.w2 - self.rho * self.t_max + self.theta0
                if floor_power > best_power - 1e-12:
                    break  # exact prune: the bound only grows with k
                t_star, sum_cap = self._ratio_fixpoint(k, load, t_warm)
                t_warm = max(self.t_min, t_star)
                if sum_cap is not None and sum_cap + 1e-9 < load:
                    continue
                if t_star < self.t_min - 1e-12:
                    continue  # numeric edge: fell out of band
                t_eff = min(t_star, self.t_max)
                power = k * self.w2 - self.rho * t_eff + self.theta0
                if power < best_power - 1e-12:
                    best_power = power
                    best_k, best_t = k, t_star
        if best_k is not None:
            return self._materialize(best_t, best_k)
        # Band-clamped fallback, mirroring the monolithic refined scan:
        # below-band candidates are servable with the cooler pinned at
        # the band edge; their cost grows with k, so the smallest
        # capacity-feasible size wins.
        for k in range(k_cap, n + 1):
            t_star, sum_cap = self._ratio_fixpoint(k, load, self.t_min)
            if sum_cap is not None and sum_cap + 1e-9 < load:
                continue
            obs.count("sharding.query_band_clamped")
            return self._materialize(t_star, k)
        raise InfeasibleError(
            f"no candidate subset has the capacity for load {load}"
        )

    def query_many(
        self,
        loads: Iterable[float],
        refined: bool = True,
        window: Optional[int] = None,
        skip_infeasible: bool = False,
    ) -> list[Optional[list[int]]]:
        """Batched sharded queries (the :meth:`ConsolidationIndex.query_many`
        contract: duplicates answered once, shared caches, per-entry
        ``None`` degradation under ``skip_infeasible``).

        ``refined`` and ``window`` are accepted for interface parity;
        the sharded query has a single (refined) semantics.
        """
        del refined, window
        try:
            values = np.asarray(
                loads if isinstance(loads, np.ndarray) else list(loads),
                dtype=np.float64,
            )
        except (TypeError, ValueError) as exc:
            raise ConfigurationError(
                f"loads must be numeric: {exc}"
            ) from exc
        if values.ndim != 1:
            raise ConfigurationError("loads must be one-dimensional")
        if values.shape[0] == 0:
            return []
        with obs.timed("sharding/query_many"):
            obs.count("sharding.query_many_queries", values.shape[0])
            uniq, inverse = np.unique(values, return_inverse=True)
            answers: list[Optional[tuple[int, ...]]] = []
            for load in uniq.tolist():
                try:
                    answers.append(tuple(self._query(load)))
                except InfeasibleError:
                    if not skip_infeasible:
                        raise
                    answers.append(None)
            obs.set_span_attributes(
                queries=int(values.shape[0]), distinct=int(uniq.shape[0])
            )
        return [
            None if answers[j] is None else list(answers[j])
            for j in inverse
        ]

    def max_load(self, power_budget: float) -> float:
        """The paper's ``maxL`` across pods: the largest load servable
        under ``power_budget``.

        For a ratio ``t`` the budget affords
        ``k_max(t) = floor((P_b - theta0 + rho * t) / w2)`` machines,
        and the servable load is the merged top-``k`` coordinate sum
        (capacity-capped).  ``k_max`` steps up while coordinates shrink
        as ``t`` grows, so the optimum sits at a step boundary: the
        scan evaluates the band floor plus every boundary in the band —
        at most ``rho * (t_max - t_min) / w2 + 2`` merge evaluations.

        Raises
        ------
        InfeasibleError
            If the budget cannot power even one machine anywhere in
            the band.
        """
        n = len(self.pairs)
        slack = power_budget - self.theta0
        candidates = [self.t_min, self.t_max]
        j_lo = math.ceil((slack + self.rho * self.t_min) / self.w2)
        j_hi = math.floor((slack + self.rho * self.t_max) / self.w2)
        for j in range(max(j_lo, 1), j_hi + 1):
            t_j = (j * self.w2 - slack) / self.rho
            if self.t_min < t_j <= self.t_max:
                candidates.append(t_j)
        best = -float("inf")
        for t in candidates:
            k_max = math.floor((slack + self.rho * t) / self.w2 + 1e-9)
            k_max = min(k_max, n)
            if k_max < 1:
                continue
            cum_x = self._evaluate(t)[4]
            cum_cap = self._evaluate(t)[5]
            served = cum_x[:k_max]
            if cum_cap is not None:
                served = np.minimum(served, cum_cap[:k_max])
            best = max(best, float(np.max(served)))
        if best == -float("inf"):
            raise InfeasibleError(
                f"budget {power_budget:.1f} W cannot power even one "
                "machine inside the supply band"
            )
        return best
