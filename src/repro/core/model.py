"""Fitted model objects used by the analytic optimizer.

These classes hold the coefficients the paper estimates by profiling
(Section IV-A) and expose the model equations the optimization is built on:

- :class:`PowerModel` — ``P_i = w1 * L_i + w2`` (Eq. 9);
- :class:`NodeCoefficients` — ``T_cpu_i = alpha_i * T_ac + beta_i * P_i +
  gamma_i`` (Eq. 8) and the derived constant ``K_i`` (Eq. 19);
- :class:`CoolerModel` — ``P_ac = c * f_ac * (T_SP - T_ac)`` (Eq. 10) plus
  the empirically measured actuation map from a desired supply temperature
  to the set point that produces it;
- :class:`SystemModel` — the whole machine room as the optimizer sees it.

These are *fitted* quantities, distinct from the ground-truth parameters in
:mod:`repro.thermal`: the entire point of the paper's evaluation is that an
optimizer driven by simple fitted models still beats the baselines on the
real (here: simulated) system.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.errors import ConfigurationError


@dataclass(frozen=True)
class PowerModel:
    """Fitted affine server power law (Eq. 9): ``P = w1 * L + w2``."""

    w1: float
    w2: float

    def __post_init__(self) -> None:
        if self.w1 <= 0.0:
            raise ConfigurationError(f"fitted w1 must be positive, got {self.w1}")
        if self.w2 < 0.0:
            raise ConfigurationError(
                f"fitted w2 must be non-negative, got {self.w2}"
            )

    def power(self, load: float) -> float:
        """Predicted power draw (W) at ``load`` tasks/s."""
        if load < 0.0:
            raise ConfigurationError(f"load must be non-negative, got {load}")
        return self.w1 * load + self.w2

    def load(self, power: float) -> float:
        """Load implied by a power draw (inverse of :meth:`power`)."""
        return (power - self.w2) / self.w1


@dataclass(frozen=True)
class NodeCoefficients:
    """Fitted thermal coefficients of one machine (Eq. 8).

    ``T_cpu = alpha * T_ac + beta * P + gamma``.

    ``alpha`` captures how strongly the machine's inlet follows the cool
    air supply (its position relative to the vent, Eq. 7); ``beta`` the
    temperature rise per watt (Eq. 6); ``gamma`` the load-independent
    offset.
    """

    alpha: float
    beta: float
    gamma: float

    def __post_init__(self) -> None:
        if self.alpha <= 0.0:
            raise ConfigurationError(
                f"alpha must be positive, got {self.alpha}"
            )
        if self.beta <= 0.0:
            raise ConfigurationError(f"beta must be positive, got {self.beta}")

    def cpu_temperature(self, t_ac: float, power: float) -> float:
        """Predicted steady CPU temperature (K) — Eq. 8."""
        return self.alpha * t_ac + self.beta * power + self.gamma

    def k_constant(self, t_max: float, power_model: PowerModel) -> float:
        """The paper's ``K_i`` (Eq. 19).

        ``K_i = (T_max - beta_i * w2 - gamma_i) / (beta_i * w1)`` — the load
        the machine could carry at ``T_max`` if the supply air were at
        absolute zero; the closed-form solution is expressed around it.
        """
        return (t_max - self.beta * power_model.w2 - self.gamma) / (
            self.beta * power_model.w1
        )

    def max_supply_temperature(
        self, load: float, t_max: float, power_model: PowerModel
    ) -> float:
        """Highest ``T_ac`` keeping this machine at or below ``t_max`` (K)
        when carrying ``load`` tasks/s."""
        power = power_model.power(load)
        return (t_max - self.beta * power - self.gamma) / self.alpha

    def max_load(
        self, t_ac: float, t_max: float, power_model: PowerModel
    ) -> float:
        """Highest load keeping this machine at or below ``t_max`` for a
        given supply temperature — Eq. 18 for one machine."""
        return self.k_constant(t_max, power_model) - (
            t_ac * self.alpha
        ) / (power_model.w1 * self.beta)


@dataclass(frozen=True)
class CoolerModel:
    """Fitted cooling-unit model (Eq. 10) and set-point actuation map.

    Parameters
    ----------
    c_f_ac:
        The fitted lumped coefficient ``c * f_ac`` in W/K:
        ``P_ac = c_f_ac * (T_SP - T_ac)``.
    actuation_offset, actuation_t_ac, actuation_power:
        Coefficients of the empirically measured relation between the
        supply temperature the optimizer wants and the set point that
        produces it at a given total server power (Section IV-B: "we
        empirically measured the relation between T_ac and the set point"):
        ``T_SP = offset + a_t * T_ac + a_p * total_server_power``.
    t_ac_min, t_ac_max:
        Physical range of achievable supply temperatures, K.
    idle_power:
        Fitted load-independent cooler draw (the blower), W.  Not part of
        the paper's Eq. 10, but real CRAC units have a constant-flow fan;
        being constant it never changes which policy wins, it only shifts
        every prediction by the same floor.
    """

    c_f_ac: float
    actuation_offset: float
    actuation_t_ac: float
    actuation_power: float
    t_ac_min: float
    t_ac_max: float
    idle_power: float = 0.0

    def __post_init__(self) -> None:
        if self.c_f_ac <= 0.0:
            raise ConfigurationError(
                f"c_f_ac must be positive, got {self.c_f_ac}"
            )
        if self.actuation_t_ac <= 0.0:
            raise ConfigurationError(
                "actuation map must be increasing in T_ac, got slope "
                f"{self.actuation_t_ac}"
            )
        if self.t_ac_min >= self.t_ac_max:
            raise ConfigurationError(
                f"need t_ac_min < t_ac_max, got [{self.t_ac_min}, {self.t_ac_max}]"
            )

    def cooling_power(self, t_sp: float, t_ac: float) -> float:
        """Predicted cooling power (W) — Eq. 10 plus the fitted blower
        floor."""
        return max(0.0, self.c_f_ac * (t_sp - t_ac)) + self.idle_power

    def set_point_for(self, t_ac: float, total_server_power: float) -> float:
        """Set point to command so the loop settles at supply ``t_ac``."""
        return (
            self.actuation_offset
            + self.actuation_t_ac * t_ac
            + self.actuation_power * total_server_power
        )

    def supply_for_set_point(
        self, t_sp: float, total_server_power: float
    ) -> float:
        """Supply temperature the loop will settle at for a commanded
        set point (inverse of :meth:`set_point_for`)."""
        return (
            t_sp
            - self.actuation_offset
            - self.actuation_power * total_server_power
        ) / self.actuation_t_ac

    def clamp_t_ac(self, t_ac: float) -> float:
        """Clamp a requested supply temperature into the achievable band."""
        return min(max(t_ac, self.t_ac_min), self.t_ac_max)


@dataclass(frozen=True)
class SystemModel:
    """The machine room as the optimizer sees it: all fitted coefficients.

    Attributes
    ----------
    power:
        The shared server power law (identical hardware; Eq. 9).
    nodes:
        Per-machine thermal coefficients, index 0 = bottom of rack.
    cooler:
        The cooling-unit model and actuation map.
    t_max:
        Maximum allowed CPU temperature, K (the paper's ``T_max``).
    capacities:
        Per-machine capacity, tasks/s (measured before the experiments).
    """

    power: PowerModel
    nodes: tuple[NodeCoefficients, ...]
    cooler: CoolerModel
    t_max: float
    capacities: tuple[float, ...]

    def __post_init__(self) -> None:
        if not self.nodes:
            raise ConfigurationError("system model needs at least one node")
        if len(self.capacities) != len(self.nodes):
            raise ConfigurationError(
                f"{len(self.nodes)} nodes but {len(self.capacities)} capacities"
            )
        if any(c <= 0.0 for c in self.capacities):
            raise ConfigurationError("capacities must be positive")

    @property
    def node_count(self) -> int:
        """Number of machines in the model."""
        return len(self.nodes)

    @property
    def total_capacity(self) -> float:
        """Total cluster capacity, tasks/s."""
        return float(sum(self.capacities))

    def k_values(self, subset: Sequence[int] | None = None) -> np.ndarray:
        """``K_i`` (Eq. 19) for ``subset`` (default: every machine)."""
        ids = range(self.node_count) if subset is None else subset
        return np.array(
            [self.nodes[i].k_constant(self.t_max, self.power) for i in ids]
        )

    def ab_pairs(self) -> list[tuple[float, float]]:
        """The ``(a_i, b_i) = (K_i, alpha_i / beta_i)`` pairs of the
        consolidation reduction (Section III-B)."""
        return [
            (
                node.k_constant(self.t_max, self.power),
                node.alpha / node.beta,
            )
            for node in self.nodes
        ]

    def predicted_cpu_temperatures(
        self, loads: Sequence[float], t_ac: float
    ) -> np.ndarray:
        """Model-predicted CPU temperature of every machine (Eq. 8) when
        machine ``i`` carries ``loads[i]`` tasks/s (off machines excluded
        by passing NaN-free zero loads — an idle-but-on machine still draws
        ``w2`` and heats up accordingly)."""
        if len(loads) != self.node_count:
            raise ConfigurationError(
                f"expected {self.node_count} loads, got {len(loads)}"
            )
        return np.array(
            [
                node.cpu_temperature(t_ac, self.power.power(load))
                for node, load in zip(self.nodes, loads)
            ]
        )

    def predicted_total_power(
        self,
        loads: Sequence[float],
        on_ids: Sequence[int],
        t_sp: float,
        t_ac: float,
    ) -> float:
        """Model-predicted total room power (W): Eq. 9 summed over the ON
        set plus Eq. 10 for the cooler."""
        server = sum(self.power.power(loads[i]) for i in on_ids)
        return server + self.cooler.cooling_power(t_sp, t_ac)

    def max_feasible_t_ac(
        self, loads: Sequence[float], on_ids: Sequence[int]
    ) -> float:
        """Highest supply temperature keeping every ON machine at or below
        ``t_max`` under ``loads`` (before clamping to the cooler's band)."""
        if len(on_ids) == 0:
            return self.cooler.t_ac_max
        return min(
            self.nodes[i].max_supply_temperature(
                loads[i], self.t_max, self.power
            )
            for i in on_ids
        )
