"""The paper's contribution: analytic joint computing+cooling optimization.

Modules
-------
:mod:`repro.core.model`
    The fitted model objects the optimizer works with: the affine power law
    (Eq. 9), per-node thermal coefficients (Eq. 8), and the cooler model
    (Eq. 10) plus the set-point actuation map.
:mod:`repro.core.closed_form`
    The closed-form optimal load distribution and cooling temperature for a
    fixed set of powered-on machines (Eqs. 18-22).
:mod:`repro.core.select`
    The ``select(A, k, L)`` / ``maxL(A, P_b, k)`` subset problems of
    Section III-B, exact solvers and a brute-force reference.
:mod:`repro.core.consolidation`
    The paper's Algorithms 1 and 2: O(n^3 log n) offline pre-processing of
    all particle-order events and the O(log n) online consolidation query.
:mod:`repro.core.heuristics`
    The footnote-1 heuristics the paper shows to be suboptimal.
:mod:`repro.core.optimizer`
    :class:`~repro.core.optimizer.JointOptimizer`, the end-to-end public
    entry point: fitted model + total load -> (ON set, loads, T_ac, T_SP).
:mod:`repro.core.policies`
    The eight evaluation scenarios of the paper's Fig. 4.
"""

from repro.core.closed_form import ClosedFormSolution, solve_closed_form
from repro.core.consolidation import ConsolidationIndex, Status
from repro.core.model import (
    CoolerModel,
    NodeCoefficients,
    PowerModel,
    SystemModel,
)
from repro.core.optimizer import JointOptimizer, OptimizationResult
from repro.core.policies import (
    PolicyDecision,
    Scenario,
    paper_scenarios,
)

__all__ = [
    "PowerModel",
    "NodeCoefficients",
    "CoolerModel",
    "SystemModel",
    "ClosedFormSolution",
    "solve_closed_form",
    "ConsolidationIndex",
    "Status",
    "JointOptimizer",
    "OptimizationResult",
    "PolicyDecision",
    "Scenario",
    "paper_scenarios",
]
