"""Footnote-1 subset heuristics (shown suboptimal by the paper).

Section III-B's footnote sketches two "simple heuristics [that] are able
to offer some local optimal" for the ``select(A, k, L)`` problem and gives
an instance — ``A = {(10, 7), (2, 3), (1, 2), (0.2, 1.34)}`` — on which
they fail.  Both are implemented here so the ablation bench and the tests
can quantify exactly how much optimality they give up:

- :func:`ratio_sort_heuristic` — sort by decreasing ``a_i / b_i`` and take
  the first ``k``;
- :func:`greedy_heuristic` — start from the single best ``a_i / b_i`` and
  greedily add whichever machine most improves ``(sum a - L) / sum b``.
"""

from __future__ import annotations

from typing import Sequence

from repro.errors import ConfigurationError
from repro.core.select import Pair, _validate_pairs, ratio

#: The paper's own counterexample instance (footnote 1).
PAPER_COUNTEREXAMPLE: tuple[Pair, ...] = (
    (10.0, 7.0),
    (2.0, 3.0),
    (1.0, 2.0),
    (0.2, 1.34),
)


def ratio_sort_heuristic(pairs: Sequence[Pair], k: int) -> list[int]:
    """Take the ``k`` machines with the largest ``a_i / b_i`` ratio.

    ("Sort A by decreasing order of a_i/b_i, then pick the first k
    nodes.")  Load-oblivious, hence cheap — and suboptimal.
    """
    ps = _validate_pairs(pairs)
    if not 1 <= k <= len(ps):
        raise ConfigurationError(f"k must be in [1, {len(ps)}], got {k}")
    order = sorted(
        range(len(ps)), key=lambda i: (-(ps[i][0] / ps[i][1]), i)
    )
    return sorted(order[:k])


def greedy_heuristic(pairs: Sequence[Pair], k: int, load: float) -> list[int]:
    """Greedy ratio growth.

    ("First pick the largest a_i/b_i, then pick the next node to make the
    result as large as possible, and recursively do this.")  Each step
    adds the machine maximizing the updated objective
    ``(sum a - L) / sum b``.
    """
    ps = _validate_pairs(pairs)
    if not 1 <= k <= len(ps):
        raise ConfigurationError(f"k must be in [1, {len(ps)}], got {k}")
    chosen = [
        max(range(len(ps)), key=lambda i: (ps[i][0] / ps[i][1], -i))
    ]
    while len(chosen) < k:
        remaining = [i for i in range(len(ps)) if i not in chosen]
        best = max(
            remaining, key=lambda i: (ratio(ps, chosen + [i], load), -i)
        )
        chosen.append(best)
    return sorted(chosen)
