"""Model-free sensor plausibility checks for degraded-mode control.

The optimizer drives every powered-on CPU toward ``T_max`` exactly, so a
single corrupted temperature reading can either mask a real violation
(stuck low) or trigger a spurious emergency derate (stuck high, spike).
:class:`SensorQuarantine` watches the per-machine reading stream and
quarantines sensors that fail cheap plausibility checks:

- **dropout** — ``NaN`` readings for ``dropout_window`` consecutive
  samples;
- **stuck-value** — ``stuck_window`` consecutive readings within
  ``stuck_tolerance`` of each other (real CPU sensors always jitter;
  the closed loop in :mod:`repro.faults.campaign` reads through a
  fine-resolution, low-noise sensor so healthy streams vary);
- **rate-of-change** — a jump faster than ``max_rate`` K/s between
  consecutive samples (physically implausible for the pod thermal
  masses in :mod:`repro.thermal.simulation`).

Recovery is hysteretic: a quarantined sensor must produce
``recovery_hold`` consecutive plausible readings before it is restored.
Decisions are returned as :class:`QuarantineDecision` rows and mirrored
as ``fault.sensor_quarantined`` / ``recovery.sensor_restored`` obs
events plus counters.
"""

from __future__ import annotations

import math
from collections import deque
from dataclasses import dataclass

import numpy as np

from repro import obs
from repro.errors import ConfigurationError


@dataclass(frozen=True)
class QuarantineDecision:
    """One change of a sensor's trust state."""

    sensor: int
    time: float
    action: str  # "quarantine" | "restore"
    reason: str  # "dropout" | "stuck" | "rate" | "recovered"


class SensorQuarantine:
    """Tracks which per-machine temperature sensors are trustworthy."""

    def __init__(
        self,
        n_sensors: int,
        *,
        stuck_window: int = 5,
        stuck_tolerance: float = 1e-6,
        max_rate: float = 2.0,
        dropout_window: int = 2,
        recovery_hold: int = 3,
    ) -> None:
        if n_sensors <= 0:
            raise ConfigurationError(
                f"need at least one sensor, got {n_sensors}"
            )
        if stuck_window < 2:
            raise ConfigurationError(
                f"stuck_window must be at least 2, got {stuck_window}"
            )
        if stuck_tolerance < 0.0 or max_rate <= 0.0:
            raise ConfigurationError(
                "stuck_tolerance must be non-negative and max_rate positive"
            )
        if dropout_window < 1 or recovery_hold < 1:
            raise ConfigurationError(
                "dropout_window and recovery_hold must be at least 1"
            )
        self.n_sensors = n_sensors
        self.stuck_window = stuck_window
        self.stuck_tolerance = stuck_tolerance
        self.max_rate = max_rate
        self.dropout_window = dropout_window
        self.recovery_hold = recovery_hold
        self._history: list[deque] = [
            deque(maxlen=stuck_window) for _ in range(n_sensors)
        ]
        self._last: list = [None] * n_sensors  # (time, value)
        self._nan_streak = [0] * n_sensors
        self._plausible_streak = [0] * n_sensors
        self._quarantined: set[int] = set()
        self.decisions: list[QuarantineDecision] = []

    # ------------------------------------------------------------------ #

    @property
    def quarantined(self) -> frozenset:
        """Sensors currently distrusted."""
        return frozenset(self._quarantined)

    def plausible_mask(self) -> np.ndarray:
        """Boolean mask of sensors currently trusted."""
        mask = np.ones(self.n_sensors, dtype=bool)
        for i in self._quarantined:
            mask[i] = False
        return mask

    def update(self, time: float, readings) -> list[QuarantineDecision]:
        """Ingest one synchronized reading vector; return state changes."""
        values = np.asarray(readings, dtype=float)
        if values.shape != (self.n_sensors,):
            raise ConfigurationError(
                f"expected {self.n_sensors} readings, got shape {values.shape}"
            )
        changed: list[QuarantineDecision] = []
        for i, value in enumerate(values):
            decision = self._ingest(i, float(time), float(value))
            if decision is not None:
                changed.append(decision)
        return changed

    # ------------------------------------------------------------------ #

    def _ingest(self, i, time, value):
        if not math.isfinite(value):
            self._nan_streak[i] += 1
            self._plausible_streak[i] = 0
            if (
                i not in self._quarantined
                and self._nan_streak[i] >= self.dropout_window
            ):
                return self._quarantine(i, time, "dropout")
            return None
        self._nan_streak[i] = 0
        last = self._last[i]
        self._last[i] = (time, value)
        history = self._history[i]
        history.append(value)
        rate_ok = True
        if last is not None:
            dt = time - last[0]
            if dt > 0.0 and abs(value - last[1]) / dt > self.max_rate:
                rate_ok = False
        stuck = (
            len(history) == self.stuck_window
            and max(history) - min(history) <= self.stuck_tolerance
        )
        if i not in self._quarantined:
            if not rate_ok:
                return self._quarantine(i, time, "rate")
            if stuck:
                return self._quarantine(i, time, "stuck")
            return None
        if rate_ok and not stuck:
            self._plausible_streak[i] += 1
            if self._plausible_streak[i] >= self.recovery_hold:
                return self._restore(i, time)
        else:
            self._plausible_streak[i] = 0
        return None

    def _quarantine(self, i, time, reason):
        self._quarantined.add(i)
        self._plausible_streak[i] = 0
        decision = QuarantineDecision(
            sensor=i, time=time, action="quarantine", reason=reason
        )
        self.decisions.append(decision)
        obs.count("faults.sensors_quarantined")
        obs.add_event(
            "fault.sensor_quarantined", time=time, sensor=i, reason=reason
        )
        return decision

    def _restore(self, i, time):
        self._quarantined.discard(i)
        self._plausible_streak[i] = 0
        decision = QuarantineDecision(
            sensor=i, time=time, action="restore", reason="recovered"
        )
        self.decisions.append(decision)
        obs.count("faults.sensors_restored")
        obs.add_event("recovery.sensor_restored", time=time, sensor=i)
        return decision
