"""repro.faults — deterministic fault injection and degraded-mode control.

The paper's optimum is deliberately brittle: at the unclamped solution
every powered-on CPU sits *exactly* at ``T_max`` (Eqs. 18-22), so any
machine crash, stuck sensor, or cooling derating immediately threatens
the thermal constraint.  This package makes those disturbances
first-class and reproducible:

- :mod:`repro.faults.scenario` — declarative, seeded fault schedules
  (machine crash/repair, sensor dropout/stuck/bias/noise, AC capacity
  derating and set-point drift, load surges) that serialize to JSON and
  replay bit-identically from ``(spec, seed)``;
- :mod:`repro.faults.injection` — the :class:`FaultInjector` runtime
  that wires a scenario into the thermal simulation stepper, the sensor
  path, and :meth:`~repro.core.controller.RuntimeController.observe`
  — at zero behavioral cost when nothing is attached;
- :mod:`repro.faults.detectors` — model-free sensor plausibility
  checks (stuck-value, rate-of-change, dropout) behind
  :class:`SensorQuarantine`;
- :mod:`repro.faults.resilience` — :class:`ResilientController`, a
  degraded-mode extension of the runtime controller: retry-with-shedding
  on infeasible replans, sensor quarantine, and a safe-mode fallback
  (drop ``T_ac``, shed load) with hysteresis on recovery;
- :mod:`repro.faults.campaign` — the ``repro faults`` campaign runner
  that sweeps scenarios over naive / resilient / oracle controllers and
  emits schema-validated ``benchmarks/results/resilience.json``.

See ``docs/resilience.md`` for the scenario spec format, the detector
thresholds, and the safe-mode semantics.
"""

from repro.faults.campaign import (
    CampaignResult,
    ClosedLoopResult,
    reference_scenarios,
    run_campaign,
    run_closed_loop,
)
from repro.faults.detectors import (
    QuarantineDecision,
    SensorQuarantine,
)
from repro.faults.injection import FaultInjector
from repro.faults.scenario import (
    FAULT_KINDS,
    FaultEvent,
    FaultScenario,
    FaultSpec,
    compose,
    events_to_jsonl,
)
from repro.faults.resilience import ResilientController

__all__ = [
    "FAULT_KINDS",
    "FaultEvent",
    "FaultScenario",
    "FaultSpec",
    "compose",
    "events_to_jsonl",
    "FaultInjector",
    "QuarantineDecision",
    "SensorQuarantine",
    "ResilientController",
    "CampaignResult",
    "ClosedLoopResult",
    "reference_scenarios",
    "run_campaign",
    "run_closed_loop",
]
