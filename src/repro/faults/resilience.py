"""Degraded-mode control: ride through faults instead of violating.

:class:`ResilientController` extends the runtime controller with three
defensive behaviors, all observable through ``fault.*`` / ``recovery.*``
events and ``resilience.*`` metrics:

**Retry-with-shedding and backoff on infeasible replans.**  Where the
base controller keeps its previous plan (or raises) when the optimizer
reports infeasibility, the resilient one retries at geometrically shed
load targets (``shed_factor`` per step) until a feasible plan exists,
and — if every retry fails — backs off exponentially
(``backoff_initial`` seconds, doubling per consecutive failure, capped
at ``min_dwell``) before burning optimizer time again.

**Sensor quarantine.**  Per-machine CPU temperature readings flow in
through :meth:`observe_readings`; a
:class:`~repro.faults.detectors.SensorQuarantine` screens them and the
controller trusts only the plausible subset.  If *every* sensor is
quarantined the controller is blind and treats that as an emergency.

**Safe mode with hysteresis.**  When the hottest trusted reading comes
within ``safe_margin`` K of ``T_max`` (or the controller goes blind),
the controller abandons optimality: it sheds load to a fraction of the
surviving capacity (``initial_shed``, escalating by ``shed_factor``
while the overheat persists) using the optimizer's selection machinery
over the surviving machine set, and commands the coldest achievable
supply temperature (``T_ac`` at the cooler's lower limit) instead of
the cost-optimal set point.  Safe mode exits only after
``recovery_hold`` consecutive observations with at least
``recovery_margin`` K of headroom — ``recovery_margin > safe_margin``
gives the exit hysteresis — after which a fresh optimal plan is built.

The thermal headroom of the hottest trusted sensor is published as the
``resilience.headroom_k`` gauge so the observability watchdogs can see
the controller's own safety assessment.
"""

from __future__ import annotations

import math
from dataclasses import replace
from typing import Optional

from repro import obs
from repro.core.controller import RuntimeController
from repro.core.optimizer import JointOptimizer, OptimizationResult
from repro.errors import ConfigurationError, InfeasibleError
from repro.faults.detectors import SensorQuarantine


class ResilientController(RuntimeController):
    """A runtime controller that degrades gracefully under faults."""

    def __init__(
        self,
        optimizer: JointOptimizer,
        hysteresis: float = 0.15,
        min_dwell: float = 600.0,
        headroom: Optional[float] = None,
        *,
        quarantine: Optional[SensorQuarantine] = None,
        thermal_guard: float = 1.5,
        safe_margin: float = 1.0,
        recovery_margin: float = 3.0,
        recovery_hold: int = 3,
        initial_shed: float = 0.6,
        shed_factor: float = 0.7,
        max_shed_retries: int = 5,
        backoff_initial: float = 60.0,
    ) -> None:
        super().__init__(
            optimizer,
            hysteresis=hysteresis,
            min_dwell=min_dwell,
            headroom=headroom,
        )
        if safe_margin < 0.0:
            raise ConfigurationError(
                f"safe_margin must be non-negative, got {safe_margin}"
            )
        if recovery_margin <= safe_margin:
            raise ConfigurationError(
                f"recovery_margin ({recovery_margin}) must exceed "
                f"safe_margin ({safe_margin}) to give exit hysteresis"
            )
        if recovery_hold < 1:
            raise ConfigurationError(
                f"recovery_hold must be at least 1, got {recovery_hold}"
            )
        if not 0.0 < initial_shed <= 1.0 or not 0.0 < shed_factor < 1.0:
            raise ConfigurationError(
                "initial_shed must be in (0, 1] and shed_factor in (0, 1)"
            )
        if max_shed_retries < 1 or backoff_initial <= 0.0:
            raise ConfigurationError(
                "max_shed_retries must be >= 1 and backoff_initial positive"
            )
        if thermal_guard < 0.0:
            raise ConfigurationError(
                f"thermal_guard must be non-negative, got {thermal_guard}"
            )
        if thermal_guard > 0.0:
            # The paper's optimum parks every CPU *exactly* at T_max —
            # zero slack for disturbances.  Plan against a slightly
            # derated belief so detection leads violation by a usable
            # margin; safe_margin/recovery_margin stay relative to the
            # true limit.
            derated = replace(
                optimizer.model, t_max=optimizer.model.t_max - thermal_guard
            )
            self.true_t_max = optimizer.model.t_max
            optimizer = type(optimizer)(
                derated,
                selection=optimizer.selection,
                cost_model=optimizer.cost_model,
            )
        else:
            self.true_t_max = optimizer.model.t_max
        self.thermal_guard = thermal_guard
        self.optimizer = optimizer
        self.quarantine = quarantine or SensorQuarantine(
            optimizer.model.node_count
        )
        self.safe_margin = safe_margin
        self.recovery_margin = recovery_margin
        self.recovery_hold = recovery_hold
        self.initial_shed = initial_shed
        self.shed_factor = shed_factor
        self.max_shed_retries = max_shed_retries
        self.backoff_initial = backoff_initial
        self.safe_mode: bool = False
        self.safe_mode_entries: int = 0
        self.shed_replans: int = 0
        self._safe_fraction: float = initial_shed
        self._calm_streak: int = 0
        self._infeasible_streak: int = 0
        self._backoff_until: float = -math.inf
        self._last_offered: Optional[float] = None
        self._hottest: Optional[float] = None

    # ------------------------------------------------------------------ #
    # Sensor path
    # ------------------------------------------------------------------ #

    def observe_readings(
        self, time: float, readings
    ) -> Optional[OptimizationResult]:
        """Feed one vector of per-machine CPU temperature readings.

        Runs the quarantine detectors, updates the headroom gauge, and
        drives the safe-mode state machine.  Returns a new plan if the
        reading forced one (safe-mode entry/escalation or exit), else
        ``None``.
        """
        self.quarantine.update(time, readings)
        mask = self.quarantine.plausible_mask()
        hottest: Optional[float] = None
        for i, value in enumerate(readings):
            if mask[i] and math.isfinite(value):
                hottest = value if hottest is None else max(hottest, value)
        self._hottest = hottest
        t_max = self.true_t_max
        if hottest is not None:
            obs.set_gauge("resilience.headroom_k", t_max - hottest)
        blind = hottest is None
        if not self.safe_mode:
            if blind or hottest >= t_max - self.safe_margin:
                return self._enter_safe_mode(time, hottest, blind=blind)
            return None
        # In safe mode: look for the hysteretic exit, escalate if still hot.
        if not blind and hottest <= t_max - self.recovery_margin:
            self._calm_streak += 1
            if self._calm_streak >= self.recovery_hold:
                return self._exit_safe_mode(time)
            return None
        self._calm_streak = 0
        if blind or hottest >= t_max - self.safe_margin:
            return self._escalate_safe_mode(time, hottest)
        return None

    @property
    def hottest_trusted(self) -> Optional[float]:
        """Hottest plausible reading from the last observation, K."""
        return self._hottest

    # ------------------------------------------------------------------ #
    # Load path
    # ------------------------------------------------------------------ #

    def observe(self, time: float, load: float) -> Optional[OptimizationResult]:
        self._last_offered = load
        if self.safe_mode:
            # The safe plan outranks load tracking; just keep the fault
            # state synced and hold position.
            if self.fault_injector is not None:
                self.fault_injector.advance(time)
                self._sync_injector_faults()
                if self._failure_pending:
                    return self._safe_replan(time, "safe mode re-plan")
            return None
        try:
            return super().observe(time, load)
        except InfeasibleError:
            # The offered load exceeds the surviving capacity outright:
            # serve what the hardware can carry and shed the rest.
            capacity = self.surviving_capacity()
            if load <= capacity + 1e-9:
                raise  # a different infeasibility; let it surface
            obs.count("resilience.load_shed")
            obs.add_event(
                "fault.load_shed",
                time=time,
                offered_load=load,
                target=capacity,
                shed=load - capacity,
            )
            self.shed_replans += 1
            return self._replan(
                time, load, capacity, "load exceeds surviving capacity"
            )

    def _replan(
        self, time: float, load: float, target: float, reason: str
    ) -> Optional[OptimizationResult]:
        if time < self._backoff_until:
            obs.count("resilience.backoff_skips")
            obs.add_event(
                "fault.replan_backoff",
                time=time,
                resume_at=self._backoff_until,
                reason=reason,
            )
            return None
        try:
            result = self._solve_plan(time, load, target, reason)
        except InfeasibleError as exc:
            self._note_infeasible(exc, time, load)
            return self._shed_and_retry(time, load, target, reason, exc)
        self._infeasible_streak = 0
        self._accept_plan(time, load, target, result, reason)
        return result

    def _shed_and_retry(
        self,
        time: float,
        load: float,
        target: float,
        reason: str,
        exc: InfeasibleError,
    ) -> Optional[OptimizationResult]:
        for attempt in range(1, self.max_shed_retries + 1):
            shed_target = target * self.shed_factor ** attempt
            if shed_target <= 1e-6:
                break
            try:
                result = self._solve_plan(
                    time, load, shed_target,
                    f"{reason} (shed attempt {attempt})",
                )
            except InfeasibleError:
                continue
            self._infeasible_streak = 0
            self.shed_replans += 1
            obs.count("resilience.load_shed")
            obs.add_event(
                "fault.load_shed",
                time=time,
                offered_load=load,
                target=shed_target,
                shed=max(0.0, load - shed_target),
                attempt=attempt,
            )
            self._accept_plan(
                time, load, shed_target, result,
                f"{reason} (shed to {shed_target:.1f})",
            )
            return result
        # Nothing feasible at any shed level: back off exponentially so
        # repeated observations stop burning optimizer time, and fall
        # into safe mode if there is no plan to hold.
        self._infeasible_streak += 1
        delay = min(
            self.min_dwell if self.min_dwell > 0.0 else self.backoff_initial,
            self.backoff_initial * 2.0 ** (self._infeasible_streak - 1),
        )
        self._backoff_until = time + delay
        obs.count("resilience.replan_backoffs")
        obs.add_event(
            "fault.replan_backoff",
            time=time,
            resume_at=self._backoff_until,
            streak=self._infeasible_streak,
            reason=reason,
        )
        if self._plan is None and not self.safe_mode:
            return self._enter_safe_mode(time, self._hottest, blind=True)
        return None

    # ------------------------------------------------------------------ #
    # Safe mode
    # ------------------------------------------------------------------ #

    def _enter_safe_mode(
        self, time: float, hottest: Optional[float], blind: bool = False
    ) -> Optional[OptimizationResult]:
        self.safe_mode = True
        self.safe_mode_entries += 1
        self._calm_streak = 0
        self._safe_fraction = self.initial_shed
        obs.count("resilience.safe_mode_entries")
        obs.add_event(
            "fault.safe_mode_entered",
            time=time,
            blind=blind,
            **({} if hottest is None else {"hottest": hottest}),
        )
        return self._safe_replan(time, "safe mode entry")

    def _escalate_safe_mode(
        self, time: float, hottest: Optional[float]
    ) -> Optional[OptimizationResult]:
        self._safe_fraction = max(
            self._safe_fraction * self.shed_factor, 0.02
        )
        obs.count("resilience.safe_mode_escalations")
        obs.add_event(
            "fault.safe_mode_escalated",
            time=time,
            fraction=self._safe_fraction,
            **({} if hottest is None else {"hottest": hottest}),
        )
        return self._safe_replan(time, "safe mode escalation")

    def _exit_safe_mode(self, time: float) -> Optional[OptimizationResult]:
        self.safe_mode = False
        self._calm_streak = 0
        obs.count("resilience.safe_mode_exits")
        obs.add_event("recovery.safe_mode_exited", time=time)
        if self._last_offered is None:
            self._plan = None  # force a fresh plan at the next observation
            return None
        load = self._last_offered
        capacity = self.surviving_capacity()
        target = min(max(load * self.headroom, 1e-6), capacity)
        return self._replan(time, load, target, "safe mode recovery")

    def _safe_replan(
        self, time: float, reason: str
    ) -> Optional[OptimizationResult]:
        """Build and adopt the safe-mode fallback plan: shed load to a
        fraction of the surviving capacity and command the coldest
        achievable supply air."""
        capacity = self.surviving_capacity()
        offered = self._last_offered if self._last_offered is not None else 0.0
        fraction = self._safe_fraction
        result = None
        target = 0.0
        while fraction >= 0.02:
            target = max(min(capacity, offered) * fraction, 1e-6)
            try:
                result = self._solve_plan(time, offered, target, reason)
                break
            except InfeasibleError:
                fraction *= self.shed_factor
        if result is None:
            # Nothing serveable at all; park the room with everything off
            # by keeping no plan (the harness idles the machines).
            self._plan = None
            obs.count("resilience.safe_mode_infeasible")
            return None
        self._safe_fraction = fraction
        safe = self._coldest_variant(result)
        self._accept_plan(time, offered, target, safe, reason)
        return safe

    def _coldest_variant(self, result: OptimizationResult) -> OptimizationResult:
        """The same allocation, but commanding the coldest supply air the
        cooler can produce (hardware protection beats energy cost)."""
        model = self.optimizer.model
        server_power = sum(
            model.power.power(result.loads[i]) for i in result.on_ids
        )
        t_ac = model.cooler.t_ac_min
        t_sp = model.cooler.set_point_for(t_ac, server_power)
        return replace(result, t_ac=t_ac, t_sp=t_sp)

    def _accept_plan(self, time, load, target, result, reason) -> None:
        super()._accept_plan(time, load, target, result, reason)
        self._backoff_until = -math.inf
