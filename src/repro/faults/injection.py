"""Runtime fault injection: replay a scenario into the live system.

A :class:`FaultInjector` owns the replay cursor over one
:class:`~repro.faults.scenario.FaultScenario`: call :meth:`advance` with
a monotonically non-decreasing clock and it fires each begin/end
transition exactly once, records a
:class:`~repro.faults.scenario.FaultEvent`, and emits ``fault.*`` /
``recovery.*`` observability events and counters.

The injector is attached at three seams, each a no-op when nothing is
attached (the instrumented code pays one ``is None`` check):

- **thermal simulation** — :meth:`attach_simulation` hooks the stepper:
  each :meth:`~repro.thermal.simulation.RoomSimulation.step` advances
  the injector to simulation time and active ``ac_derate`` /
  ``ac_setpoint_drift`` faults manipulate the cooling unit (capacity
  scaling, commanded-vs-effective set point);
- **sensor path** — :meth:`filter_readings` corrupts an array of
  per-machine temperature readings (stuck / bias / noise / dropout);
- **controller** — :meth:`RuntimeController.attach_fault_injector
  <repro.core.controller.RuntimeController.attach_fault_injector>`
  makes ``observe`` advance the injector and sync ``machine_crash``
  state into ``mark_failed`` / ``mark_repaired`` (hardware alerts).

Determinism: the injector's only stochastic behavior (``sensor_noise``)
draws from per-fault generators derived from the scenario seed, so two
injectors replaying the same scenario through the same call sequence
produce bit-identical corruption and byte-identical event JSONL
(:meth:`events_jsonl`).  :meth:`reset` rewinds everything, including the
noise streams.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro import obs
from repro.errors import ConfigurationError
from repro.faults.scenario import (
    FaultEvent,
    FaultScenario,
    events_to_jsonl,
)


class FaultInjector:
    """Replays one scenario; holds all runtime fault state."""

    def __init__(self, scenario: FaultScenario) -> None:
        self.scenario = scenario
        self._cooler = None
        self._nominal_q_max: Optional[float] = None
        self._commanded_sp: Optional[float] = None
        self.reset()

    # ------------------------------------------------------------------ #
    # Replay control
    # ------------------------------------------------------------------ #

    def reset(self) -> None:
        """Rewind the replay: cursor, events, state, and noise streams."""
        self._transitions = self.scenario.transitions()
        self._cursor = 0
        self._clock = -math.inf
        self.events: list[FaultEvent] = []
        self._active: set[int] = set()
        self._failed: set[int] = set()
        self._rngs = {
            i: self.scenario.rng_for(i)
            for i, spec in enumerate(self.scenario.faults)
            if spec.kind == "sensor_noise"
        }
        #: fault_index -> frozen reading for value-less sensor_stuck.
        self._held: dict[int, float] = {}
        #: machine -> last uncorrupted reading seen by filter_readings.
        self._last_raw: dict[int, float] = {}
        if self._cooler is not None:
            self._apply_cooler_state()

    def advance(self, time: float) -> list[FaultEvent]:
        """Fire every transition scheduled at or before ``time``.

        Safe to call from several hook sites with interleaved clocks
        (simulation substeps, controller observations): each transition
        fires exactly once, in the scenario's canonical order.
        """
        fired: list[FaultEvent] = []
        while (
            self._cursor < len(self._transitions)
            and self._transitions[self._cursor][0] <= time
        ):
            t, phase, idx = self._transitions[self._cursor]
            self._cursor += 1
            fired.append(self._fire(t, phase, idx))
        self._clock = max(self._clock, time)
        if fired and self._cooler is not None:
            self._apply_cooler_state()
        return fired

    def _fire(self, t: float, phase: str, idx: int) -> FaultEvent:
        spec = self.scenario.faults[idx]
        if phase == "begin":
            self._active.add(idx)
            if spec.kind == "machine_crash":
                self._failed.add(spec.machine)
        else:
            self._active.discard(idx)
            self._held.pop(idx, None)
            if spec.kind == "machine_crash":
                # Repaired only if no other active crash targets it.
                still_down = any(
                    self.scenario.faults[j].kind == "machine_crash"
                    and self.scenario.faults[j].machine == spec.machine
                    for j in self._active
                )
                if not still_down:
                    self._failed.discard(spec.machine)
        detail: dict = {}
        if spec.magnitude is not None:
            detail["magnitude"] = spec.magnitude
        if spec.value is not None:
            detail["value"] = spec.value
        event = FaultEvent(
            time=t,
            kind=spec.kind,
            phase=phase,
            fault_index=idx,
            machine=spec.machine,
            detail=detail,
        )
        self.events.append(event)
        prefix = "fault" if phase == "begin" else "recovery"
        obs.count(f"faults.{phase}")
        obs.count(f"faults.{spec.kind}.{phase}")
        obs.add_event(
            f"{prefix}.{spec.kind}",
            time=t,
            phase=phase,
            fault_index=idx,
            **({"machine": spec.machine} if spec.machine is not None else {}),
        )
        return event

    # ------------------------------------------------------------------ #
    # State queries
    # ------------------------------------------------------------------ #

    @property
    def failed_machines(self) -> frozenset:
        """Machines currently crashed."""
        return frozenset(self._failed)

    @property
    def active_faults(self) -> list[int]:
        """Indexes of currently active fault windows, sorted."""
        return sorted(self._active)

    @property
    def derate_factor(self) -> float:
        """Product of active ``ac_derate`` magnitudes (1.0 = healthy)."""
        factor = 1.0
        for idx in self._active:
            spec = self.scenario.faults[idx]
            if spec.kind == "ac_derate":
                factor *= spec.magnitude
        return factor

    @property
    def set_point_offset(self) -> float:
        """Sum of active ``ac_setpoint_drift`` offsets, K."""
        return sum(
            self.scenario.faults[idx].magnitude
            for idx in self._active
            if self.scenario.faults[idx].kind == "ac_setpoint_drift"
        )

    def offered_load(self, load: float) -> float:
        """The world-level offered load after active surges."""
        for idx in self._active:
            spec = self.scenario.faults[idx]
            if spec.kind == "load_surge":
                load *= spec.magnitude
        return load

    def events_jsonl(self) -> str:
        """Canonical JSONL of every transition fired so far."""
        return events_to_jsonl(self.events)

    # ------------------------------------------------------------------ #
    # Sensor path
    # ------------------------------------------------------------------ #

    def filter_readings(self, time: float, readings) -> np.ndarray:
        """Corrupt an array of per-machine temperature readings.

        Applies active sensor faults in fault-index order (dropout wins
        over everything on the same machine).  Advances the replay to
        ``time`` first, so callers need not call :meth:`advance`
        themselves.  Returns a new array; the input is untouched.
        """
        self.advance(time)
        out = np.array(readings, dtype=float, copy=True)
        # Capture stuck-sensor holds before this call's raw values are
        # recorded: a sensor freezes at the last reading *before* onset
        # (falling back to the current raw on the very first call).
        for idx in sorted(self._active):
            spec = self.scenario.faults[idx]
            m = spec.machine
            if (
                spec.kind == "sensor_stuck"
                and spec.value is None
                and idx not in self._held
                and m is not None
                and m < out.size
            ):
                self._held[idx] = self._last_raw.get(m, float(out[m]))
        for i, value in enumerate(out):
            if math.isfinite(value):
                self._last_raw[i] = float(value)
        dropped: set[int] = set()
        for idx in sorted(self._active):
            spec = self.scenario.faults[idx]
            m = spec.machine
            if m is None or m >= out.size:
                continue
            if spec.kind == "sensor_dropout":
                dropped.add(m)
            elif spec.kind == "sensor_stuck":
                out[m] = (
                    spec.value
                    if spec.value is not None
                    else self._held[idx]
                )
            elif spec.kind == "sensor_bias":
                out[m] = out[m] + spec.magnitude
            elif spec.kind == "sensor_noise":
                out[m] = out[m] + self._rngs[idx].normal(0.0, spec.magnitude)
        for m in dropped:
            out[m] = math.nan
        return out

    # ------------------------------------------------------------------ #
    # Cooling-unit path
    # ------------------------------------------------------------------ #

    def attach_simulation(self, simulation) -> None:
        """Wire this injector into a running room simulation.

        Sets ``simulation.fault_injector`` (so each stepper call
        advances the replay) and takes over the cooling unit's actuator
        state for ``ac_derate`` / ``ac_setpoint_drift`` faults.
        """
        self.attach_cooler(simulation.cooler)
        simulation.fault_injector = self

    def attach_cooler(self, cooler) -> None:
        """Adopt a cooling unit: remember its nominal capacity and the
        commanded set point, then apply the current fault state."""
        self._cooler = cooler
        self._nominal_q_max = float(cooler.q_max)
        self._commanded_sp = float(cooler.set_point)
        self._apply_cooler_state()

    def command_set_point(self, set_point: float) -> float:
        """Record a commanded set point; the cooler gets it plus any
        active drift.  Returns the effective set point applied."""
        if self._cooler is None:
            raise ConfigurationError(
                "no cooling unit attached; call attach_simulation first"
            )
        self._commanded_sp = float(set_point)
        self._apply_cooler_state()
        return self._cooler.set_point

    def on_simulation_step(self, simulation) -> None:
        """Stepper hook: advance the replay to simulation time."""
        if self._cooler is None:
            self.attach_cooler(simulation.cooler)
        self.advance(simulation.time)

    def _apply_cooler_state(self) -> None:
        self._cooler.q_max = self._nominal_q_max * self.derate_factor
        if self._commanded_sp is not None:
            self._cooler.set_point = self._commanded_sp + self.set_point_offset

    def detach(self) -> None:
        """Restore the cooling unit's nominal actuator state."""
        if self._cooler is not None:
            self._cooler.q_max = self._nominal_q_max
            if self._commanded_sp is not None:
                self._cooler.set_point = self._commanded_sp
        self._cooler = None
        self._nominal_q_max = None
        self._commanded_sp = None
