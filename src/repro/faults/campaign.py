"""Fault campaigns: sweep scenarios over controllers, score resilience.

The campaign closes the loop the paper leaves open: a controller plans
from the fitted model while the *ground-truth* thermal simulation —
with a :class:`~repro.faults.injection.FaultInjector` replaying a
scenario into it — decides what actually happens.  Three controllers
run each scenario:

``naive``
    The stock :class:`~repro.core.controller.RuntimeController`.  It
    never learns about faults: crashed machines stay in its plan (their
    load is simply lost) and it keeps trusting the model.
``resilient``
    A :class:`~repro.faults.resilience.ResilientController` wired to
    the injector's hardware-health feed and reading the (faultable)
    CPU temperature sensors each control step.
``oracle``
    A clairvoyant baseline that reads the injector's ground truth
    (failed set, derate factor, set-point drift) and bisects for the
    largest load the *true* room can serve without violating ``T_max``
    — the energy and violation lower bound the others are scored
    against (``energy_overhead_vs_oracle``).

Scoring: violation-seconds (hottest powered-on CPU above ``T_max``),
the same after excusing a ``grace_steps``-control-step detection window
following each fault onset, recovery time, energy, and served/shed
task-seconds.  :func:`run_campaign` sweeps the
:func:`reference_scenarios` and builds the schema-validated document
written to ``benchmarks/results/resilience.json`` by ``repro faults``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

import numpy as np

from repro import obs
from repro.core.controller import RuntimeController
from repro.core.optimizer import JointOptimizer
from repro.errors import ConfigurationError, InfeasibleError
from repro.faults.injection import FaultInjector
from repro.faults.resilience import ResilientController
from repro.faults.scenario import FaultEvent, FaultScenario, FaultSpec
from repro.thermal.sensors import TemperatureSensor
from repro.thermal.simulation import RoomSimulation

#: Controllers every campaign runs, in report order.
CONTROLLERS: tuple[str, ...] = ("naive", "resilient", "oracle")

#: Spawn key reserved for the harness sensor stream (far above any
#: plausible fault count, so fault RNG streams never collide with it).
_SENSOR_SPAWN_KEY = 1 << 20


@dataclass(frozen=True)
class ReferenceScenario:
    """A campaign entry: a fault schedule plus its operating point."""

    scenario: FaultScenario
    load_fraction: float
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.load_fraction <= 1.0:
            raise ConfigurationError(
                f"load_fraction must be in (0, 1], got {self.load_fraction}"
            )


@dataclass(frozen=True)
class ClosedLoopResult:
    """Scored outcome of one controller riding one scenario."""

    scenario: str
    controller: str
    duration: float
    violation_seconds: float
    violation_seconds_after_grace: float
    recovery_seconds: Optional[float]
    energy_joules: float
    offered_task_seconds: float
    served_task_seconds: float
    shed_task_seconds: float
    reconfigurations: int
    suppressed: int
    safe_mode_entries: int
    sensors_quarantined: int
    max_t_cpu: float
    fault_events: tuple[FaultEvent, ...] = field(default=())
    server_energy_joules: float = 0.0

    @property
    def pue(self) -> Optional[float]:
        """Power usage effectiveness: total energy over IT (server)
        energy.  ``None`` when no server energy was drawn."""
        if self.server_energy_joules <= 0.0:
            return None
        return self.energy_joules / self.server_energy_joules

    def to_dict(self) -> dict:
        """JSON-ready metrics row (fault events are reported separately)."""
        return {
            "violation_seconds": self.violation_seconds,
            "violation_seconds_after_grace":
                self.violation_seconds_after_grace,
            "recovery_seconds": self.recovery_seconds,
            "energy_joules": self.energy_joules,
            "offered_task_seconds": self.offered_task_seconds,
            "served_task_seconds": self.served_task_seconds,
            "shed_task_seconds": self.shed_task_seconds,
            "reconfigurations": self.reconfigurations,
            "suppressed": self.suppressed,
            "safe_mode_entries": self.safe_mode_entries,
            "sensors_quarantined": self.sensors_quarantined,
            "max_t_cpu": self.max_t_cpu,
            "server_energy_joules": self.server_energy_joules,
            "pue": self.pue,
        }


@dataclass(frozen=True)
class CampaignResult:
    """All controllers' results for one reference scenario."""

    reference: ReferenceScenario
    runs: dict  # controller name -> ClosedLoopResult

    @property
    def name(self) -> str:
        return self.reference.scenario.name


def reference_scenarios(
    seed: int = 2012, quick: bool = False
) -> list[ReferenceScenario]:
    """The built-in campaign scenarios.

    ``crash-derate`` is the acceptance reference: a machine dies while
    the cooling unit simultaneously loses most of its capacity, so the
    paper's keep-every-CPU-at-``T_max`` optimum must be abandoned or the
    room overheats.  ``quick=True`` returns the two-scenario smoke
    variant CI runs (shorter windows, same structure).
    """
    if quick:
        return [
            ReferenceScenario(
                scenario=FaultScenario(
                    name="crash-derate-quick",
                    seed=seed,
                    duration=1800.0,
                    faults=(
                        FaultSpec(kind="machine_crash", at=300.0,
                                  until=1200.0, machine=1),
                        FaultSpec(kind="ac_derate", at=300.0, until=1200.0,
                                  magnitude=0.04),
                    ),
                ),
                load_fraction=0.75,
                description="crash + severe AC derate, short window",
            ),
            ReferenceScenario(
                scenario=FaultScenario(
                    name="sensor-storm-quick",
                    seed=seed,
                    duration=1500.0,
                    faults=(
                        FaultSpec(kind="sensor_stuck", at=300.0,
                                  until=1020.0, machine=0),
                        FaultSpec(kind="sensor_bias", at=420.0,
                                  until=1140.0, machine=1, magnitude=-6.0),
                        FaultSpec(kind="sensor_dropout", at=540.0,
                                  until=960.0, machine=2),
                    ),
                ),
                load_fraction=0.6,
                description="stuck/biased/dropped sensors, short window",
            ),
        ]
    return [
        ReferenceScenario(
            scenario=FaultScenario(
                name="crash-derate",
                seed=seed,
                duration=5400.0,
                faults=(
                    FaultSpec(kind="machine_crash", at=900.0, until=3600.0,
                              machine=1),
                    FaultSpec(kind="ac_derate", at=900.0, until=3600.0,
                              magnitude=0.04),
                ),
            ),
            load_fraction=0.75,
            description=(
                "a machine dies while the AC loses most of its capacity"
            ),
        ),
        ReferenceScenario(
            scenario=FaultScenario(
                name="sensor-storm",
                seed=seed,
                duration=3600.0,
                faults=(
                    FaultSpec(kind="sensor_stuck", at=600.0, until=2400.0,
                              machine=0),
                    FaultSpec(kind="sensor_bias", at=900.0, until=3000.0,
                              machine=1, magnitude=-6.0),
                    FaultSpec(kind="sensor_dropout", at=1200.0, until=2000.0,
                              machine=2),
                ),
            ),
            load_fraction=0.6,
            description="stuck, cold-biased, and dropped-out sensors",
        ),
        ReferenceScenario(
            scenario=FaultScenario(
                name="surge-drift",
                seed=seed,
                duration=3600.0,
                faults=(
                    FaultSpec(kind="load_surge", at=600.0, until=2400.0,
                              magnitude=1.25),
                    FaultSpec(kind="ac_setpoint_drift", at=900.0,
                              until=3000.0, magnitude=3.0),
                ),
            ),
            load_fraction=0.7,
            description="load surge while the AC set point drifts warm",
        ),
    ]


# --------------------------------------------------------------------- #
# The clairvoyant oracle
# --------------------------------------------------------------------- #


class _OracleController:
    """Clairvoyant baseline: plans from the injector's ground truth.

    At every fault-state change it bisects for the largest load the
    *true* (derated, drifted) room can serve at steady state without any
    powered-on CPU exceeding ``t_max - margin``, compensating set-point
    drift exactly.  It is the lower bound on both violation-seconds
    (zero by construction, up to transients) and energy.
    """

    def __init__(
        self,
        testbed,
        optimizer: JointOptimizer,
        injector: FaultInjector,
        margin: float = 1.0,
    ) -> None:
        self.testbed = testbed
        self.optimizer = optimizer
        self.injector = injector
        self.margin = margin
        self._plan = None
        self.reconfigurations = 0
        self.suppressed = 0
        self._probe_cooler = testbed.fresh_cooler()
        self._probe = RoomSimulation(testbed.room, self._probe_cooler)
        self._nominal_q_max = float(testbed.cooler.q_max)
        self._cache: dict = {}

    @property
    def plan(self):
        return self._plan

    def observe(self, time: float, load: float):
        self.injector.advance(time)
        key = (
            self.injector.failed_machines,
            round(self.injector.derate_factor, 9),
            round(self.injector.set_point_offset, 9),
            round(load, 6),
        )
        if key not in self._cache:
            self._cache[key] = self._solve(load)
        plan = self._cache[key]
        if plan is not self._plan:
            self._plan = plan
            self.reconfigurations += 1
        return plan

    def _solve(self, load: float):
        failed = self.injector.failed_machines
        exclude = sorted(failed)
        capacity = sum(
            c
            for i, c in enumerate(self.optimizer.model.capacities)
            if i not in failed
        )
        target = min(load, capacity)
        plan = self._feasible_plan(target, exclude)
        if plan is not None:
            return plan
        # Bisect for the largest serveable load under the true faults.
        lo, hi = 0.0, target
        best = None
        for _ in range(14):
            mid = 0.5 * (lo + hi)
            candidate = self._feasible_plan(mid, exclude)
            if candidate is not None:
                best, lo = candidate, mid
            else:
                hi = mid
        return best

    def _feasible_plan(self, load: float, exclude):
        """An optimizer plan for ``load`` whose *true* steady state stays
        under ``t_max``, with the commanded set point corrected for drift
        and relaxed toward optimal where the truth allows; ``None`` if
        the true room cannot serve ``load`` at any set point."""
        if load <= 1e-6:
            return None
        try:
            plan = self.optimizer.solve(load, exclude=exclude)
        except InfeasibleError:
            return None
        model = self.optimizer.model
        drift = self.injector.set_point_offset
        server_power = float(
            np.sum(self.testbed.true_server_powers(plan.loads, plan.on_ids))
        )
        coldest = model.cooler.set_point_for(
            model.cooler.t_ac_min, server_power
        )
        optimal = plan.t_sp
        if self._true_max_cpu(plan, optimal + drift) is not None:
            return plan  # the model-optimal set point truly holds
        if self._true_max_cpu(plan, coldest + drift) is None:
            return None  # even the coldest air cannot save this load
        lo, hi = coldest, optimal  # warmest feasible effective set point
        for _ in range(6):
            mid = 0.5 * (lo + hi)
            if self._true_max_cpu(plan, mid + drift) is not None:
                lo = mid
            else:
                hi = mid
        return replace(plan, t_sp=lo)  # commanded; drift adds on top

    def _true_max_cpu(self, plan, effective_sp: float):
        """Hottest true steady-state CPU under a plan and effective set
        point, or ``None`` if it exceeds ``t_max - margin``."""
        self._probe_cooler.q_max = (
            self._nominal_q_max * self.injector.derate_factor
        )
        powers = self.testbed.true_server_powers(plan.loads, plan.on_ids)
        mask = np.zeros(self.testbed.n_machines, dtype=bool)
        mask[list(plan.on_ids)] = True
        state = self._probe.steady_state(
            powers=powers, on_mask=mask, set_point=effective_sp
        )
        hottest = (
            float(np.max(state.t_cpu[mask]))
            if mask.any()
            else state.t_room
        )
        if hottest > self.testbed.config.t_max - self.margin:
            return None
        return hottest


# --------------------------------------------------------------------- #
# Closed-loop harness
# --------------------------------------------------------------------- #


def run_closed_loop(
    testbed,
    controller,
    scenario: FaultScenario,
    base_load: float,
    *,
    injector: Optional[FaultInjector] = None,
    duration: Optional[float] = None,
    control_dt: float = 60.0,
    sim_dt: float = 2.0,
    grace_steps: int = 1,
    attach_injector: bool = False,
    feed_readings: bool = False,
    controller_name: str = "controller",
    sim_engine: str = "numpy",
) -> ClosedLoopResult:
    """Drive one controller through one fault scenario, ground truth on.

    The simulation always carries the injected faults (crashed machines
    draw no power and serve no load; the cooler is derated/drifted); the
    flags control how much the *controller* learns: ``attach_injector``
    subscribes it to the hardware-health feed, ``feed_readings`` streams
    the (corruptible) per-machine CPU readings into
    ``observe_readings``.  A plain controller with both flags off is the
    fault-blind naive baseline.
    """
    if control_dt <= 0.0 or sim_dt <= 0.0 or sim_dt > control_dt:
        raise ConfigurationError(
            f"need 0 < sim_dt <= control_dt, got {sim_dt}, {control_dt}"
        )
    if grace_steps < 0:
        raise ConfigurationError(
            f"grace_steps must be non-negative, got {grace_steps}"
        )
    total = duration if duration is not None else scenario.duration
    if total is None or total <= 0.0:
        raise ConfigurationError(
            "need a positive duration (argument or scenario.duration)"
        )
    t_max = testbed.config.t_max
    inj = injector if injector is not None else FaultInjector(scenario)
    # Auto-reset on scenario start: a fresh cooler copy (set point kept,
    # PI state zeroed) so back-to-back scenarios can never leak integral
    # state between runs.
    cooler = testbed.fresh_cooler()
    sim = RoomSimulation(testbed.room, cooler, engine=sim_engine)
    inj.attach_simulation(sim)
    if attach_injector:
        controller.attach_fault_injector(inj)
    sensor = TemperatureSensor(
        rng=np.random.default_rng(
            np.random.SeedSequence(
                entropy=scenario.seed, spawn_key=(_SENSOR_SPAWN_KEY,)
            )
        ),
        noise_std=0.02,
        resolution=0.01,
    )
    n = testbed.n_machines
    substeps = max(1, int(round(control_dt / sim_dt)))
    energy = 0.0
    server_energy = 0.0
    violation = 0.0
    violation_graced = 0.0
    offered_ts = 0.0
    served_ts = 0.0
    max_t = -math.inf
    last_violation_end: Optional[float] = None
    warm_started = False
    t = 0.0
    with obs.record_run(
        "faults.closed_loop",
        inputs={
            "scenario": scenario.name,
            "controller": controller_name,
            "duration": total,
        },
    ) as rec:
        while t < total - 1e-9:
            inj.advance(t)
            offered = inj.offered_load(base_load)
            readings = inj.filter_readings(t, sensor.read_many(sim.t_cpu))
            if feed_readings:
                controller.observe_readings(t, readings)
            try:
                controller.observe(t, offered)
            except InfeasibleError:
                pass  # fault-blind controllers may find no plan; hold
            plan = controller.plan
            failed = inj.failed_machines
            powers = np.zeros(n)
            mask = np.zeros(n, dtype=bool)
            served = 0.0
            if plan is not None:
                for i in plan.on_ids:
                    if i in failed:
                        continue  # ground truth: a crashed machine is dark
                    powers[i] = testbed.power_models[i].power(
                        float(plan.loads[i])
                    )
                    mask[i] = True
                    served += float(plan.loads[i])
            served = min(served, offered)
            sim.set_node_powers(powers, on_mask=mask)
            if plan is not None:
                sim.set_set_point(plan.t_sp)
            if not warm_started:
                # Start settled: the interesting dynamics are the faults,
                # not the cold-room boot transient.
                state = sim.steady_state(
                    powers=powers, on_mask=mask,
                    set_point=sim.cooler.set_point,
                )
                sim.t_cpu = state.t_cpu.copy()
                sim.t_box = state.t_box.copy()
                sim.t_room = float(state.t_room)
                sim.t_ac = float(state.t_ac)
                warm_started = True
            for _ in range(substeps):
                sim.step(sim_dt)
                energy += sim.total_power * sim_dt
                server_energy += float(powers.sum()) * sim_dt
            on_idx = np.flatnonzero(sim.on_mask)
            hottest = (
                float(np.max(sim.t_cpu[on_idx]))
                if on_idx.size
                else float(sim.t_room)
            )
            max_t = max(max_t, hottest)
            interval_end = t + control_dt
            if hottest > t_max + 1e-6:
                violation += control_dt
                last_violation_end = interval_end
                grace = grace_steps * control_dt + 1e-9
                excused = any(
                    event.phase == "begin"
                    and event.time <= interval_end
                    and interval_end - event.time <= grace
                    for event in inj.events
                )
                if not excused:
                    violation_graced += control_dt
            offered_ts += offered * control_dt
            served_ts += served * control_dt
            t = interval_end
        first_fault = next(
            (e.time for e in inj.events if e.phase == "begin"), None
        )
        recovery: Optional[float] = None
        if first_fault is not None:
            recovery = (
                0.0
                if last_violation_end is None
                else max(0.0, last_violation_end - first_fault)
            )
        result = ClosedLoopResult(
            scenario=scenario.name,
            controller=controller_name,
            duration=total,
            violation_seconds=violation,
            violation_seconds_after_grace=violation_graced,
            recovery_seconds=recovery,
            energy_joules=energy,
            offered_task_seconds=offered_ts,
            served_task_seconds=served_ts,
            shed_task_seconds=max(0.0, offered_ts - served_ts),
            reconfigurations=int(getattr(controller, "reconfigurations", 0)),
            suppressed=int(getattr(controller, "suppressed", 0)),
            safe_mode_entries=int(
                getattr(controller, "safe_mode_entries", 0)
            ),
            sensors_quarantined=sum(
                1
                for d in getattr(
                    getattr(controller, "quarantine", None),
                    "decisions",
                    (),
                )
                if d.action == "quarantine"
            ),
            max_t_cpu=max_t,
            fault_events=tuple(inj.events),
            server_energy_joules=server_energy,
        )
        if rec is not None:
            rec.outcome.update(
                violation_seconds=violation,
                energy_joules=energy,
                fault_transitions=len(inj.events),
            )
    return result


# --------------------------------------------------------------------- #
# Campaign sweep and document
# --------------------------------------------------------------------- #


def _build_controller(name: str, context, injector: FaultInjector):
    if name == "naive":
        return RuntimeController(context.optimizer), False, False
    if name == "resilient":
        return ResilientController(context.optimizer), True, True
    if name == "oracle":
        return (
            _OracleController(context.testbed, context.optimizer, injector),
            False,
            False,
        )
    raise ConfigurationError(f"unknown campaign controller {name!r}")


def run_campaign(
    seed: int = 2012,
    n_machines: int = 6,
    *,
    quick: bool = False,
    scenarios: Optional[Sequence[ReferenceScenario]] = None,
    control_dt: float = 60.0,
    sim_dt: float = 2.0,
    grace_steps: int = 1,
    context=None,
    sim_engine: str = "numpy",
) -> tuple[list[CampaignResult], dict]:
    """Sweep scenarios over the naive/resilient/oracle controllers.

    Returns the raw per-run results and the ``resilience.json`` document
    (see :func:`repro.obs.export.validate_resilience` for its schema).
    The whole campaign is a pure function of ``(seed, n_machines,
    scenarios)``: fault schedules, sensor noise, and the profiled
    testbed all derive from ``seed``.
    """
    if context is None:
        from repro.experiments.common import default_context

        context = default_context(
            seed=seed, n_machines=n_machines, sim_engine=sim_engine
        )
    refs = (
        list(scenarios)
        if scenarios is not None
        else reference_scenarios(seed=seed, quick=quick)
    )
    capacity = context.testbed.total_capacity
    results: list[CampaignResult] = []
    for ref in refs:
        base_load = ref.load_fraction * capacity
        runs: dict = {}
        for name in CONTROLLERS:
            injector = FaultInjector(ref.scenario)
            controller, attach, readings = _build_controller(
                name, context, injector
            )
            runs[name] = run_closed_loop(
                context.testbed,
                controller,
                ref.scenario,
                base_load,
                injector=injector,
                control_dt=control_dt,
                sim_dt=sim_dt,
                grace_steps=grace_steps,
                attach_injector=attach,
                feed_readings=readings,
                controller_name=name,
                sim_engine=sim_engine,
            )
        results.append(CampaignResult(reference=ref, runs=runs))
    document = _campaign_document(
        results,
        seed=seed,
        n_machines=context.testbed.n_machines,
        control_dt=control_dt,
        sim_dt=sim_dt,
        grace_steps=grace_steps,
    )
    return results, document


def _campaign_document(
    results: Sequence[CampaignResult],
    *,
    seed: int,
    n_machines: int,
    control_dt: float,
    sim_dt: float,
    grace_steps: int,
) -> dict:
    scenarios = []
    for result in results:
        oracle_energy = result.runs["oracle"].energy_joules
        controllers = {}
        for name in CONTROLLERS:
            run = result.runs[name]
            row = run.to_dict()
            row["energy_overhead_vs_oracle"] = (
                (run.energy_joules - oracle_energy) / oracle_energy
                if oracle_energy > 0.0
                else None
            )
            controllers[name] = row
        scenarios.append(
            {
                "name": result.name,
                "description": result.reference.description,
                "load_fraction": result.reference.load_fraction,
                "duration": result.runs["naive"].duration,
                "fault_transitions": len(result.runs["naive"].fault_events),
                "controllers": controllers,
            }
        )
    return {
        "schema": 1,
        "kind": "resilience",
        "seed": seed,
        "machines": n_machines,
        "control_dt": control_dt,
        "sim_dt": sim_dt,
        "grace_steps": grace_steps,
        "scenarios": scenarios,
    }
