"""Declarative fault scenarios: seeded, composable, replayable schedules.

A :class:`FaultScenario` is a pure description — a name, a seed, and a
tuple of :class:`FaultSpec` entries, each a time window during which one
disturbance is active.  Scenarios carry no runtime state: the
:class:`~repro.faults.injection.FaultInjector` compiles one into a
transition timeline and replays it, and two injectors built from the
same ``(spec, seed)`` produce byte-identical fault-event JSONL and
identical stochastic corruption (per-fault RNG streams are derived from
the scenario seed with :class:`numpy.random.SeedSequence` spawn keys, so
adding a fault never perturbs the streams of earlier ones).

Fault kinds
-----------

``machine_crash``
    Machine ``machine`` dies at ``at`` and is repaired at ``until``
    (``None`` = never).  A crashed machine draws no power and serves no
    load regardless of what any controller commands.
``sensor_dropout``
    The CPU temperature sensor of ``machine`` returns no reading
    (``NaN``) during the window.
``sensor_stuck``
    The sensor reports a frozen value: ``value`` if given, else the last
    reading before onset (held by the injector).
``sensor_bias``
    ``magnitude`` kelvin is added to the sensor's readings.
``sensor_noise``
    Zero-mean Gaussian noise with standard deviation ``magnitude`` K is
    added (seeded per fault; see module docstring).
``ac_derate``
    The cooling unit's capacity ``q_max`` is multiplied by ``magnitude``
    (in ``(0, 1]``) during the window — a compressor stage failing.
``ac_setpoint_drift``
    The unit regulates to ``commanded + magnitude`` K instead of the
    commanded set point — a miscalibrated return-air sensor.
``load_surge``
    The offered load the controller observes is multiplied by
    ``magnitude`` during the window.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence

import numpy as np

from repro.errors import ConfigurationError

#: Every fault kind a spec may carry, with its required target.
FAULT_KINDS: tuple[str, ...] = (
    "machine_crash",
    "sensor_dropout",
    "sensor_stuck",
    "sensor_bias",
    "sensor_noise",
    "ac_derate",
    "ac_setpoint_drift",
    "load_surge",
)

_MACHINE_KINDS = frozenset(
    {"machine_crash", "sensor_dropout", "sensor_stuck",
     "sensor_bias", "sensor_noise"}
)
_MAGNITUDE_KINDS = frozenset(
    {"sensor_bias", "sensor_noise", "ac_derate",
     "ac_setpoint_drift", "load_surge"}
)


@dataclass(frozen=True)
class FaultSpec:
    """One disturbance window of a scenario.

    Attributes
    ----------
    kind:
        One of :data:`FAULT_KINDS`.
    at:
        Onset time, seconds from scenario start.
    until:
        End of the window (repair time for ``machine_crash``); ``None``
        keeps the fault active forever.
    machine:
        Target machine id for machine/sensor kinds; must be ``None`` for
        room-level kinds.
    magnitude:
        Kind-specific strength (see module docstring); required for the
        kinds in ``_MAGNITUDE_KINDS``.
    value:
        Explicit frozen reading for ``sensor_stuck`` (K).  ``None`` holds
        the last pre-fault reading.
    """

    kind: str
    at: float
    until: Optional[float] = None
    machine: Optional[int] = None
    magnitude: Optional[float] = None
    value: Optional[float] = None

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected one of "
                f"{sorted(FAULT_KINDS)}"
            )
        if self.at < 0.0:
            raise ConfigurationError(
                f"fault onset must be non-negative, got {self.at}"
            )
        if self.until is not None and self.until <= self.at:
            raise ConfigurationError(
                f"fault window must end after it starts "
                f"(at={self.at}, until={self.until})"
            )
        if self.kind in _MACHINE_KINDS:
            if self.machine is None or self.machine < 0:
                raise ConfigurationError(
                    f"{self.kind} needs a non-negative target machine"
                )
        elif self.machine is not None:
            raise ConfigurationError(
                f"{self.kind} is room-level; it takes no machine target"
            )
        if self.kind in _MAGNITUDE_KINDS:
            if self.magnitude is None:
                raise ConfigurationError(f"{self.kind} needs a magnitude")
            if self.kind == "ac_derate" and not 0.0 < self.magnitude <= 1.0:
                raise ConfigurationError(
                    f"ac_derate magnitude must be in (0, 1], "
                    f"got {self.magnitude}"
                )
            if self.kind == "load_surge" and self.magnitude <= 0.0:
                raise ConfigurationError(
                    f"load_surge magnitude must be positive, "
                    f"got {self.magnitude}"
                )
            if self.kind == "sensor_noise" and self.magnitude < 0.0:
                raise ConfigurationError(
                    f"sensor_noise magnitude must be non-negative, "
                    f"got {self.magnitude}"
                )
        if self.value is not None and self.kind != "sensor_stuck":
            raise ConfigurationError(
                f"only sensor_stuck takes an explicit value, not {self.kind}"
            )

    def to_dict(self) -> dict:
        """JSON-ready mapping (omits unset optionals)."""
        doc: dict = {"kind": self.kind, "at": self.at}
        if self.until is not None:
            doc["until"] = self.until
        if self.machine is not None:
            doc["machine"] = self.machine
        if self.magnitude is not None:
            doc["magnitude"] = self.magnitude
        if self.value is not None:
            doc["value"] = self.value
        return doc

    @classmethod
    def from_dict(cls, data: dict) -> "FaultSpec":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        if not isinstance(data, dict):
            raise ConfigurationError("fault spec must be a mapping")
        unknown = set(data) - {"kind", "at", "until", "machine",
                               "magnitude", "value"}
        if unknown:
            raise ConfigurationError(
                f"fault spec has unknown keys: {sorted(unknown)}"
            )
        if "kind" not in data or "at" not in data:
            raise ConfigurationError("fault spec needs 'kind' and 'at'")
        return cls(
            kind=str(data["kind"]),
            at=float(data["at"]),
            until=None if data.get("until") is None else float(data["until"]),
            machine=(
                None if data.get("machine") is None else int(data["machine"])
            ),
            magnitude=(
                None
                if data.get("magnitude") is None
                else float(data["magnitude"])
            ),
            value=None if data.get("value") is None else float(data["value"]),
        )


@dataclass(frozen=True)
class FaultEvent:
    """One fired transition: a fault beginning or ending at runtime.

    Emitted by the :class:`~repro.faults.injection.FaultInjector` and
    exported as JSONL; the byte-identity of that export across runs is
    the subsystem's determinism contract (pinned by the tests).
    """

    time: float
    kind: str
    phase: str  # "begin" | "end"
    fault_index: int
    machine: Optional[int] = None
    detail: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        doc: dict = {
            "time": self.time,
            "kind": self.kind,
            "phase": self.phase,
            "fault_index": self.fault_index,
        }
        if self.machine is not None:
            doc["machine"] = self.machine
        if self.detail:
            doc["detail"] = dict(sorted(self.detail.items()))
        return doc


def events_to_jsonl(events: Iterable[FaultEvent]) -> str:
    """Canonical JSONL export of fired fault events.

    Keys are sorted and floats use ``repr`` (via :func:`json.dumps`), so
    the same event sequence always produces the same bytes.
    """
    return "".join(
        json.dumps(event.to_dict(), sort_keys=True) + "\n" for event in events
    )


@dataclass(frozen=True)
class FaultScenario:
    """A named, seeded schedule of fault windows.

    The scenario is immutable and free of runtime state; the injector
    holds the replay cursor.  ``seed`` drives every stochastic fault
    (currently ``sensor_noise``): per-fault generators come from
    ``SeedSequence(seed).spawn``-style keys, so replay is exact.
    """

    name: str
    seed: int
    faults: tuple[FaultSpec, ...]
    duration: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario needs a non-empty name")
        object.__setattr__(self, "faults", tuple(self.faults))
        if self.duration is not None and self.duration <= 0.0:
            raise ConfigurationError(
                f"scenario duration must be positive, got {self.duration}"
            )

    def rng_for(self, fault_index: int) -> np.random.Generator:
        """The deterministic RNG stream of one fault."""
        if not 0 <= fault_index < len(self.faults):
            raise ConfigurationError(
                f"no fault at index {fault_index} "
                f"(scenario has {len(self.faults)})"
            )
        seq = np.random.SeedSequence(
            entropy=self.seed, spawn_key=(fault_index,)
        )
        return np.random.default_rng(seq)

    def transitions(self) -> list[tuple[float, str, int]]:
        """The compiled timeline: ``(time, phase, fault_index)`` sorted.

        Ties are broken by (time, end-before-begin, fault index) so the
        replay order — and therefore the event JSONL — is unique.
        """
        rows: list[tuple[float, str, int]] = []
        for i, spec in enumerate(self.faults):
            rows.append((spec.at, "begin", i))
            if spec.until is not None:
                rows.append((spec.until, "end", i))
        phase_rank = {"end": 0, "begin": 1}
        return sorted(rows, key=lambda r: (r[0], phase_rank[r[1]], r[2]))

    def to_json(self, indent: Optional[int] = 2) -> str:
        """Canonical JSON document (sorted keys) for this scenario."""
        doc = {
            "name": self.name,
            "seed": self.seed,
            "faults": [spec.to_dict() for spec in self.faults],
        }
        if self.duration is not None:
            doc["duration"] = self.duration
        return json.dumps(doc, indent=indent, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultScenario":
        """Parse a scenario document produced by :meth:`to_json`."""
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(f"invalid scenario JSON: {exc}") from exc
        if not isinstance(data, dict):
            raise ConfigurationError("scenario document must be an object")
        unknown = set(data) - {"name", "seed", "faults", "duration"}
        if unknown:
            raise ConfigurationError(
                f"scenario document has unknown keys: {sorted(unknown)}"
            )
        faults = data.get("faults")
        if not isinstance(faults, list):
            raise ConfigurationError("'faults' must be a list")
        return cls(
            name=str(data.get("name", "")),
            seed=int(data.get("seed", 0)),
            faults=tuple(FaultSpec.from_dict(f) for f in faults),
            duration=(
                None
                if data.get("duration") is None
                else float(data["duration"])
            ),
        )

    def with_seed(self, seed: int) -> "FaultScenario":
        """The same schedule under a different seed."""
        return FaultScenario(
            name=self.name, seed=seed, faults=self.faults,
            duration=self.duration,
        )


def compose(
    name: str, seed: int, scenarios: Sequence[FaultScenario]
) -> FaultScenario:
    """Merge several scenarios into one schedule under a fresh seed.

    Fault windows are concatenated in argument order (so spawn keys —
    and hence noise streams — follow that order); the duration is the
    longest of the parts.
    """
    if not scenarios:
        raise ConfigurationError("compose needs at least one scenario")
    faults: list[FaultSpec] = []
    durations = [s.duration for s in scenarios if s.duration is not None]
    for scenario in scenarios:
        faults.extend(scenario.faults)
    return FaultScenario(
        name=name,
        seed=seed,
        faults=tuple(faults),
        duration=max(durations) if durations else None,
    )
