"""Physical constants, units, and conversion helpers (paper Table I).

The paper works in SI units throughout; so does this package:

==================  ==================  =========================================
Variable            Unit                Physical meaning
==================  ==================  =========================================
``T``               K                   temperature (CPU, box, inlet, room)
``nu`` (heat cap.)  J/K                 heat capacity of CPU / box air volume
``theta``           J/(K*s) == W/K      heat-exchange rate CPU <-> box air
``F``               m^3/s               volumetric air flow
``c_air``           J/(K*m^3)           volumetric heat capacity of air
``P``               J/s == W            heat-producing / power-draw rate
==================  ==================  =========================================

Internally everything is Kelvin; :func:`celsius_to_kelvin` and
:func:`kelvin_to_celsius` exist for human-facing I/O only.
"""

from __future__ import annotations

import math

#: Offset between the Celsius and Kelvin scales.
KELVIN_OFFSET = 273.15

#: Volumetric heat capacity of air near room temperature, J/(K*m^3).
#: (specific heat ~1005 J/(kg*K) times density ~1.2 kg/m^3).
C_AIR = 1206.0

#: Absolute-zero guard: no simulated temperature may fall below this (K).
MIN_PHYSICAL_TEMPERATURE = 150.0

#: Sanity ceiling for simulated temperatures (K); beyond this the thermal
#: integrator is assumed to have diverged.
MAX_PHYSICAL_TEMPERATURE = 500.0


def celsius_to_kelvin(celsius: float) -> float:
    """Convert a temperature from degrees Celsius to Kelvin."""
    return celsius + KELVIN_OFFSET


def kelvin_to_celsius(kelvin: float) -> float:
    """Convert a temperature from Kelvin to degrees Celsius."""
    return kelvin - KELVIN_OFFSET


def cfm_to_m3s(cfm: float) -> float:
    """Convert an air flow from cubic feet per minute to m^3/s.

    Vendor datasheets (server fans, CRAC units) quote CFM; the models in
    this package use SI.
    """
    return cfm * 0.0004719474432


def m3s_to_cfm(m3s: float) -> float:
    """Convert an air flow from m^3/s to cubic feet per minute."""
    return m3s / 0.0004719474432


def watt_hours(power_watts: float, seconds: float) -> float:
    """Energy (Wh) consumed by a constant draw of ``power_watts`` over ``seconds``."""
    return power_watts * seconds / 3600.0


def joules(power_watts: float, seconds: float) -> float:
    """Energy (J) consumed by a constant draw of ``power_watts`` over ``seconds``."""
    return power_watts * seconds


def is_valid_temperature(kelvin: float) -> bool:
    """Whether ``kelvin`` is a finite temperature in the physically sane band."""
    return (
        math.isfinite(kelvin)
        and MIN_PHYSICAL_TEMPERATURE <= kelvin <= MAX_PHYSICAL_TEMPERATURE
    )
