"""Command-line interface: regenerate any paper figure from the terminal.

Usage::

    repro list                      # what can be regenerated
    repro fig2                      # one figure
    repro fig6 --seed 7 --machines 20 --plot
    repro all                       # every figure + headline numbers
    repro profile --save model.json # profile and persist the fitted model
    repro solve --load 400          # run the optimizer on a profiled rack
    repro solve --load 400 --model model.json   # ... on a saved model
    repro metrics --load 400        # instrumented run + registry dump (JSON)
    repro index --machines 20 --save idx.npz   # build + persist Algorithm 1
    repro index --cache-dir .repro-cache       # warm a reusable index cache
    repro index --machines 5000 --pods 100     # pod-sharded index at scale
    repro trace --out trace.jsonl   # traced + watched controller scenario
    repro trace --chrome trace.json # ... also export for chrome://tracing
    repro dashboard --trace trace.jsonl   # render a recorded trace
    repro dashboard                 # run the scenario and render it live
    repro faults --machines 6       # fault campaign -> resilience.json
    repro faults --quick --seed 7   # two-scenario smoke campaign
    repro mpc --machines 6          # MPC demand campaign -> mpc.json
    repro mpc --quick --horizon 4   # shortened traces, 4-step lookahead
    repro weather                   # seasonal sweep -> cooling_plant.json
    repro weather --quick --site hot-humid   # one site, daily buckets
    repro serve --socket repro.sock # allocation daemon on a unix socket
    repro serve --port 7077 --model model.json  # ... over TCP, saved model
    repro serve --socket repro.sock --pods 24   # ... on a sharded index
    repro serve --socket repro.sock --trace-path traces/serve.jsonl \\
        --slo-p99-ms 50   # ... with span export and a latency SLO
    repro top --socket repro.sock   # live windowed view of a daemon
    repro top --socket repro.sock --iterations 1   # one frame (CI smoke)
    repro bench-check               # gate results/ against baselines/
    repro bench-check --update      # snapshot results/ as new baselines

Heavy contexts (profiling campaigns) are cached per process, so ``repro
all`` profiles the testbed once.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Optional, Sequence

from repro.experiments.algorithms import run_algorithm_study
from repro.experiments.common import default_context
from repro.experiments.fig1_particle_example import run_fig1
from repro.experiments.fig2_power_profiling import run_fig2
from repro.experiments.fig3_temperature_profiling import run_fig3
from repro.experiments.fig5_consolidation_effect import run_fig5
from repro.experiments.fig6_all_methods import run_fig6
from repro.experiments.fig7_no_consolidation import run_fig7
from repro.experiments.fig8_with_consolidation import run_fig8
from repro.experiments.fig9_bottomup_vs_optimal import run_fig9
from repro.experiments.fig10_average_power import run_fig10
from repro.experiments.headline import run_headline


def _context_figures() -> dict[str, Callable]:
    """Figure drivers that take the shared evaluation context."""
    return {
        "fig2": run_fig2,
        "fig3": run_fig3,
        "fig5": run_fig5,
        "fig6": run_fig6,
        "fig7": run_fig7,
        "fig8": run_fig8,
        "fig9": run_fig9,
        "fig10": run_fig10,
        "headline": run_headline,
    }


def _standalone_figures() -> dict[str, Callable]:
    """Drivers that need no profiled testbed."""
    return {
        "fig1": run_fig1,
        "algorithms": run_algorithm_study,
    }


def build_parser() -> argparse.ArgumentParser:
    """The repro CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the figures of 'Joint Optimization of Computing "
            "and Cooling Energy' (ICDCS 2012) on a simulated testbed."
        ),
    )
    parser.add_argument(
        "target",
        help="figure id (fig1..fig10, headline, algorithms), 'all', "
        "'list', 'profile', 'solve', 'index', 'metrics', 'trace', "
        "'dashboard', 'faults', 'mpc', 'weather', 'serve', 'top', or "
        "'bench-check'",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=2012,
        help="the single determinism seed: testbed build, profiling "
        "noise, fault schedules, and harness sensors all derive from it "
        "(see docs/resilience.md for the contract)",
    )
    parser.add_argument(
        "--machines", type=int, default=20, help="machines on the rack"
    )
    parser.add_argument(
        "--load",
        type=float,
        default=None,
        help="total load in tasks/s (solve target only)",
    )
    parser.add_argument(
        "--budget",
        type=float,
        default=None,
        help="power budget in W: solve for the maximum servable load "
        "instead of a given load (solve target only)",
    )
    parser.add_argument(
        "--model",
        default=None,
        help="path to a saved fitted model (solve target only)",
    )
    parser.add_argument(
        "--save",
        default=None,
        help="where to write the fitted model (profile target) or the "
        "pre-processed index .npz (index target)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="directory of persisted consolidation indexes; the index "
        "target loads a matching index from here instead of rebuilding, "
        "and writes fresh builds back (index target only)",
    )
    parser.add_argument(
        "--pods",
        type=int,
        default=None,
        help="shard the consolidation index into this many contiguous "
        "pods (selection='sharded'): per-pod Algorithm-1 tables with a "
        "shared-ratio cross-pod query, the scaling path beyond n≈500 "
        "(index and serve targets; see docs/algorithms.md)",
    )
    parser.add_argument(
        "--plot",
        action="store_true",
        help="render figure targets as ASCII charts instead of tables",
    )
    parser.add_argument(
        "--out",
        default=None,
        help="output path: the JSONL trace (trace target; default "
        "trace.jsonl) or the campaign document (faults target; default "
        "benchmarks/results/resilience.json)",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="run the two-scenario smoke campaign instead of the full "
        "reference set (faults target), time-compressed demand "
        "traces (mpc target), or daily instead of 3-hour weather "
        "buckets (weather target)",
    )
    parser.add_argument(
        "--horizon",
        type=int,
        default=6,
        help="MPC lookahead depth in control intervals (mpc target only)",
    )
    parser.add_argument(
        "--scenario",
        default=None,
        help="path to a scenario JSON spec to run instead of the "
        "built-in reference scenarios (faults target only)",
    )
    parser.add_argument(
        "--load-fraction",
        type=float,
        default=0.7,
        help="operating point for a --scenario campaign, as a fraction "
        "of cluster capacity (faults target only)",
    )
    parser.add_argument(
        "--site",
        action="append",
        default=None,
        help="climate preset for the seasonal sweep; repeatable, "
        "defaults to every preset (weather target only)",
    )
    parser.add_argument(
        "--events-out",
        default=None,
        help="directory for per-scenario fault-event JSONL exports — "
        "the byte-identical determinism artifact (faults target only)",
    )
    parser.add_argument(
        "--chrome",
        default=None,
        help="also export the trace in Chrome trace-event format to this "
        "path (trace target only)",
    )
    parser.add_argument(
        "--trace",
        default=None,
        help="render this recorded JSONL trace instead of running a new "
        "scenario (dashboard target only)",
    )
    parser.add_argument(
        "--policy",
        choices=("warn", "raise"),
        default="warn",
        help="watchdog violation policy for the traced scenario "
        "(trace/dashboard targets only)",
    )
    parser.add_argument(
        "--socket",
        default=None,
        help="serve on this unix domain socket path (serve target only)",
    )
    parser.add_argument(
        "--host",
        default="127.0.0.1",
        help="TCP bind address for --port (serve target only)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="serve on this TCP port; 0 binds an ephemeral port "
        "(serve target only)",
    )
    parser.add_argument(
        "--batch-window",
        type=float,
        default=0.005,
        help="micro-batching collection window in seconds: how long the "
        "first request of a batch waits for concurrent company "
        "(serve target only; see docs/serving.md for tuning)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=512,
        help="requests per batched dispatch, at most (serve target only)",
    )
    parser.add_argument(
        "--no-batching",
        action="store_true",
        help="disable micro-batching: dispatch every request alone "
        "(the benchmark baseline; serve target only)",
    )
    parser.add_argument(
        "--trace-path",
        default=None,
        help="export serving request/batch spans to this rotating JSONL "
        "file (serve target only; see docs/observability.md)",
    )
    parser.add_argument(
        "--slo-p99-ms",
        type=float,
        default=None,
        help="latency SLO: windowed p99 must stay below this many "
        "milliseconds (serve target only)",
    )
    parser.add_argument(
        "--slo-queue-depth",
        type=int,
        default=None,
        help="queue-depth SLO: peak batcher depth over the SLO horizon "
        "must stay at or below this (serve target only)",
    )
    parser.add_argument(
        "--slo-error-rate",
        type=float,
        default=None,
        help="error-rate SLO: windowed errors/requests must stay at or "
        "below this fraction (serve target only)",
    )
    parser.add_argument(
        "--slo-max-loop-lag",
        type=float,
        default=None,
        help="event-loop stall SLO: peak watchdog tick lag in seconds "
        "(serve target only)",
    )
    parser.add_argument(
        "--slo-policy",
        choices=("warn", "raise"),
        default="warn",
        help="SLO violation policy: 'warn' records violations and keeps "
        "serving, 'raise' marks the daemon failed after the first "
        "(serve target only)",
    )
    parser.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="seconds between refreshes (top target only)",
    )
    parser.add_argument(
        "--iterations",
        type=int,
        default=None,
        help="render this many frames then exit instead of looping "
        "forever (top target only)",
    )
    parser.add_argument(
        "--results",
        default="benchmarks/results",
        help="directory of fresh benchmark artifacts to gate "
        "(bench-check target only)",
    )
    parser.add_argument(
        "--baselines",
        default="benchmarks/baselines",
        help="directory of committed baseline artifacts "
        "(bench-check target only)",
    )
    parser.add_argument(
        "--update",
        action="store_true",
        help="snapshot the results directory as the new baselines "
        "instead of gating (bench-check target only)",
    )
    parser.add_argument(
        "--serving",
        default=None,
        help="serving benchmark document to render in the dashboard's "
        "Serving section (dashboard target only; default "
        "benchmarks/results/serving.json when it exists)",
    )
    parser.add_argument(
        "--mpc",
        default=None,
        help="MPC campaign document to render in the dashboard's MPC "
        "section (dashboard target only; default "
        "benchmarks/results/mpc.json when it exists)",
    )
    parser.add_argument(
        "--sim-engine",
        choices=("numpy", "python"),
        default="numpy",
        help="transient-simulation engine: the vectorized numpy pipeline "
        "(default) or the per-node python reference loop; both produce "
        "bit-identical trajectories (see docs/observability.md)",
    )
    return parser


def _run_traced_scenario(
    seed: int,
    machines: int,
    load: Optional[float],
    policy: str,
    sim_engine: str = "numpy",
):
    """One fully observed controller run: metrics + tracing + watchdogs.

    Drives a :class:`~repro.core.controller.RuntimeController` over a
    diurnal day (peaking at ``load``, default 70% of capacity), then
    stamps the watchdog's headroom summary into the trace so the
    exported file is self-contained.  Returns ``(buffer, watchdog)``
    and restores every observability switch to its prior state.
    """
    from repro import obs
    from repro.core.controller import RuntimeController
    from repro.workload.traces import diurnal_trace

    ctx = default_context(
        seed=seed, n_machines=machines, sim_engine=sim_engine
    )
    capacity = sum(ctx.model.capacities)
    peak = load if load is not None else 0.7 * capacity
    trace = diurnal_trace(base=0.3 * peak, peak=peak, duration=86400.0)

    was_enabled = obs.enabled()
    was_tracing = obs.tracing_enabled()
    previous_buffer = obs.get_trace_buffer()
    previous_watchdog = obs.watchdog.active()
    obs.enable()
    buffer = obs.enable_tracing(obs.TraceBuffer())
    wd = obs.watchdog.install(
        obs.WatchdogSet(policy=policy, t_max=ctx.model.t_max)
    )
    try:
        controller = RuntimeController(ctx.optimizer, min_dwell=1800.0)
        controller.run_trace(trace, dt=300.0)
        wd.emit_summary(buffer)
    finally:
        obs.enable_tracing(previous_buffer)
        if not was_tracing:
            obs.disable_tracing()
        if previous_watchdog is not None:
            obs.watchdog.install(previous_watchdog)
        else:
            obs.watchdog.uninstall()
        if not was_enabled:
            obs.disable()
    return buffer, wd


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = build_parser().parse_args(argv)
    contextual = _context_figures()
    standalone = _standalone_figures()

    if args.target == "list":
        for name in [*standalone, *contextual, "all", "profile", "solve",
                     "index", "report", "metrics", "trace", "dashboard",
                     "faults", "mpc", "weather", "serve", "top",
                     "bench-check"]:
            print(name)
        return 0

    if args.target == "bench-check":
        from repro.analysis.benchcheck import (
            check_benchmarks,
            render_report,
            update_baselines,
        )

        if args.update:
            copied = update_baselines(args.results, args.baselines)
            for name in copied:
                print(f"baseline updated: {args.baselines}/{name}")
            return 0
        report = check_benchmarks(args.results, args.baselines)
        print(render_report(report), end="")
        return 1 if report.regressed else 0

    if args.target == "top":
        import time

        from repro.analysis.report import render_top
        from repro.errors import ServingUnavailableError
        from repro.serving import ServingClient

        if args.socket is None and args.port is None:
            print(
                "top requires --socket <path> or --port <n>",
                file=sys.stderr,
            )
            return 2
        frames = 0
        try:
            # One short-lived connection per frame: a daemon drain or
            # restart between refreshes costs one "unavailable" frame,
            # never the session.
            while args.iterations is None or frames < args.iterations:
                try:
                    with ServingClient(
                        socket_path=args.socket,
                        host=None if args.socket else args.host,
                        port=None if args.socket else args.port,
                    ) as client:
                        frame = render_top(
                            client.telemetry(), client.stats()
                        )
                except ServingUnavailableError:
                    frame = "server unavailable (draining?)"
                if sys.stdout.isatty() and frames:
                    # Repaint in place between frames.
                    print("\x1b[2J\x1b[H", end="")
                print(frame, flush=True)
                frames += 1
                if args.iterations is None or frames < args.iterations:
                    time.sleep(args.interval)
        except KeyboardInterrupt:
            pass
        return 0

    if args.target == "serve":
        import asyncio

        from repro.core.optimizer import JointOptimizer
        from repro.serving import AllocationServer, ServingConfig

        if args.socket is None and args.port is None:
            print(
                "serve requires --socket <path> or --port <n>",
                file=sys.stderr,
            )
            return 2
        if args.model:
            from repro.core.serialization import load_system_model

            model = load_system_model(args.model)
        else:
            ctx = default_context(
                seed=args.seed, n_machines=args.machines,
                sim_engine=args.sim_engine,
            )
            model = ctx.model
        optimizer = JointOptimizer(
            model,
            selection="sharded" if args.pods is not None else "index",
            pods=args.pods,
            index_cache_dir=args.cache_dir,
        )
        config = ServingConfig(
            socket_path=args.socket,
            host=args.host,
            port=args.port,
            batch_window=args.batch_window,
            max_batch=args.max_batch,
            batching=not args.no_batching,
            trace_path=args.trace_path,
            slo_p99_ms=args.slo_p99_ms,
            slo_queue_depth=args.slo_queue_depth,
            slo_error_rate=args.slo_error_rate,
            slo_max_loop_lag=args.slo_max_loop_lag,
            slo_policy=args.slo_policy,
        )
        server = AllocationServer(optimizer, config)

        async def _serve() -> None:
            await server.start()
            mode = "off" if args.no_batching else (
                f"on, window {1e3 * config.batch_window:.1f} ms, "
                f"max {config.max_batch}"
            )
            print(
                f"warm index ready: {server.index_statuses} statuses over "
                f"{model.node_count} machines (batching {mode})"
            )
            if args.trace_path:
                print(f"exporting serving spans to {args.trace_path}")
            if server.address[0] == "unix":
                print(f"serving on unix socket {server.address[1]}",
                      flush=True)
            else:
                print(
                    f"serving on {server.address[1]}:{server.address[2]}",
                    flush=True,
                )
            await server.serve_forever()

        asyncio.run(_serve())
        print("drained cleanly")
        return 0

    if args.target == "faults":
        import pathlib

        from repro.faults import run_campaign
        from repro.faults.campaign import CONTROLLERS, ReferenceScenario
        from repro.faults.scenario import FaultScenario, events_to_jsonl
        from repro.obs.export import write_resilience

        scenarios = None
        if args.scenario:
            spec = FaultScenario.from_json(
                pathlib.Path(args.scenario).read_text()
            )
            scenarios = [
                ReferenceScenario(
                    scenario=spec.with_seed(args.seed),
                    load_fraction=args.load_fraction,
                    description=f"custom scenario from {args.scenario}",
                )
            ]
        results, document = run_campaign(
            seed=args.seed,
            n_machines=args.machines,
            quick=args.quick,
            scenarios=scenarios,
            sim_engine=args.sim_engine,
        )
        for entry in document["scenarios"]:
            print(f"{entry['name']} (load {entry['load_fraction']:.0%}):")
            for controller in CONTROLLERS:
                row = entry["controllers"][controller]
                overhead = row["energy_overhead_vs_oracle"]
                print(
                    f"  {controller:10s} "
                    f"violation={row['violation_seconds']:7.0f} s "
                    f"(graced {row['violation_seconds_after_grace']:6.0f} s) "
                    f"energy={row['energy_joules'] / 1e6:7.2f} MJ "
                    + (
                        f"(+{overhead:.1%} vs oracle)"
                        if overhead is not None and controller != "oracle"
                        else ""
                    )
                )
        out = pathlib.Path(args.out or "benchmarks/results/resilience.json")
        write_resilience(out, document)
        print(f"campaign document written to {out}")
        if args.events_out:
            events_dir = pathlib.Path(args.events_out)
            events_dir.mkdir(parents=True, exist_ok=True)
            for result in results:
                path = events_dir / f"{result.name}.events.jsonl"
                path.write_text(
                    events_to_jsonl(result.runs["resilient"].fault_events)
                )
                print(f"fault events written to {path}")
        return 0

    if args.target == "mpc":
        import pathlib

        from repro.control import MPC_CONTROLLERS, run_mpc_campaign
        from repro.obs.export import write_mpc

        results, document = run_mpc_campaign(
            seed=args.seed,
            n_machines=args.machines,
            quick=args.quick,
            horizon=args.horizon,
            sim_engine=args.sim_engine,
        )
        for entry in document["scenarios"]:
            peak = entry["peak_load_fraction"]
            tag = " [flash crowd]" if entry["flash_crowd"] else ""
            print(
                f"{entry['name']}{tag} "
                f"(peak {peak:.0%} of capacity):"
                if peak is not None
                else f"{entry['name']}{tag}:"
            )
            for controller in MPC_CONTROLLERS:
                row = entry["controllers"][controller]
                overhead = row["energy_overhead_vs_oracle"]
                print(
                    f"  {controller:10s} "
                    f"violation={row['violation_seconds']:7.0f} s "
                    f"energy={row['energy_joules'] / 1e6:7.2f} MJ "
                    f"moves={row['on_set_changes']:3d} "
                    + (
                        f"(+{overhead:.1%} vs oracle)"
                        if overhead is not None and controller != "oracle"
                        else ""
                    )
                )
        for row in document["dominance"]:
            if row["flash_crowd"]:
                verdict = "yes" if row["dominates"] else "NO"
                print(
                    f"MPC dominates reactive on {row['scenario']}: "
                    f"{verdict}"
                )
        out = pathlib.Path(args.out or "benchmarks/results/mpc.json")
        write_mpc(out, document)
        print(f"campaign document written to {out}")
        return 0

    if args.target == "weather":
        import pathlib

        from repro.experiments.weather import run_weather_study
        from repro.obs.export import write_cooling_plant

        study = run_weather_study(
            seed=args.seed,
            n_machines=args.machines,
            quick=args.quick,
            sites=args.site,
        )
        print(study.table())
        out = pathlib.Path(
            args.out or "benchmarks/results/cooling_plant.json"
        )
        write_cooling_plant(out, study.document())
        print(f"seasonal study written to {out}")
        return 0

    if args.target == "index":
        import time

        from repro.core.optimizer import JointOptimizer

        if args.model:
            from repro.core.serialization import load_system_model

            model = load_system_model(args.model)
        else:
            ctx = default_context(
                seed=args.seed,
                n_machines=args.machines,
                sim_engine=args.sim_engine,
            )
            model = ctx.model
        if args.pods is not None and args.save:
            print(
                "--save writes one monolithic .npz and cannot persist a "
                "sharded index; use --cache-dir (pods are cached there "
                "per content key)",
                file=sys.stderr,
            )
            return 2
        optimizer = JointOptimizer(
            model,
            selection="sharded" if args.pods is not None else "index",
            pods=args.pods,
            index_cache_dir=args.cache_dir,
        )
        start = time.perf_counter()
        index = optimizer.query_index
        elapsed = time.perf_counter() - start
        sharding = (
            f" in {index.pod_count} pods"
            if args.pods is not None
            else ""
        )
        print(
            f"consolidation index for {len(index.pairs)} machines"
            f"{sharding}: {index.event_count} events, "
            f"{index.status_count} statuses "
            f"({1e3 * elapsed:.1f} ms, key {index.cache_key[:12]})"
        )
        if args.save:
            path = index.save(args.save)
            print(
                f"index written to {path} ({path.stat().st_size} bytes)"
            )
        return 0

    if args.target == "trace":
        import json
        import pathlib

        buffer, wd = _run_traced_scenario(
            args.seed, args.machines, args.load, args.policy,
            sim_engine=args.sim_engine,
        )
        out = pathlib.Path(args.out or "trace.jsonl")
        out.write_text(buffer.to_jsonl())
        summary = buffer.summary()
        print(
            f"trace written to {out}: {summary['spans']} spans, "
            f"{summary['events']} events, "
            f"{wd.violation_count} constraint violations"
        )
        if args.chrome:
            chrome = pathlib.Path(args.chrome)
            chrome.write_text(json.dumps(buffer.to_chrome_trace()))
            print(f"chrome://tracing export written to {chrome}")
        return 0

    if args.target == "dashboard":
        import json
        import pathlib

        from repro.analysis.report import render_dashboard
        from repro.obs import TraceBuffer

        serving = None
        serving_path = pathlib.Path(
            args.serving or "benchmarks/results/serving.json"
        )
        if serving_path.exists():
            serving = json.loads(serving_path.read_text())
        elif args.serving:
            print(f"no serving document at {serving_path}", file=sys.stderr)
            return 2
        mpc = None
        mpc_path = pathlib.Path(args.mpc or "benchmarks/results/mpc.json")
        if mpc_path.exists():
            mpc = json.loads(mpc_path.read_text())
        elif args.mpc:
            print(f"no mpc document at {mpc_path}", file=sys.stderr)
            return 2
        if args.trace:
            buffer = TraceBuffer.from_jsonl(
                pathlib.Path(args.trace).read_text()
            )
            print(render_dashboard(buffer, serving=serving, mpc=mpc))
        else:
            buffer, wd = _run_traced_scenario(
                args.seed, args.machines, args.load, args.policy,
                sim_engine=args.sim_engine,
            )
            print(render_dashboard(buffer, watchdog=wd, serving=serving,
                                   mpc=mpc))
        return 0

    if args.target == "metrics":
        from repro import obs

        was_enabled = obs.enabled()
        registry = obs.enable()
        try:
            # One instrumented end-to-end run: profile the testbed, then
            # solve (at --load, or at 50% of capacity).  The registry dump
            # covers the campaign, the index build, and the solve.
            ctx = default_context(
                seed=args.seed,
                n_machines=args.machines,
                sim_engine=args.sim_engine,
            )
            load = (
                args.load
                if args.load is not None
                else 0.5 * sum(ctx.model.capacities)
            )
            ctx.optimizer.solve(load)
            print(registry.to_json(indent=2))
        finally:
            if not was_enabled:
                obs.disable()
        return 0

    if args.target == "report":
        from repro.analysis.report import write_report

        ctx = default_context(
            seed=args.seed, n_machines=args.machines,
            sim_engine=args.sim_engine,
        )
        target = args.save or "reproduction_report.md"
        path = write_report(target, ctx)
        print(f"reproduction report written to {path}")
        return 0

    if args.target == "profile":
        from repro.core.serialization import save_system_model

        ctx = default_context(
            seed=args.seed, n_machines=args.machines,
            sim_engine=args.sim_engine,
        )
        print(
            f"profiled {args.machines} machines: "
            f"P = {ctx.model.power.w1:.3f}*L + {ctx.model.power.w2:.2f}, "
            f"cooler slope {ctx.model.cooler.c_f_ac:.0f} W/K"
        )
        if args.save:
            save_system_model(ctx.model, args.save)
            print(f"fitted model written to {args.save}")
        return 0

    if args.target == "solve":
        if args.load is None and args.budget is None:
            print(
                "solve requires --load <tasks/s> or --budget <W>",
                file=sys.stderr,
            )
            return 2
        if args.model:
            from repro.core.serialization import load_system_model
            from repro.core.optimizer import JointOptimizer

            optimizer = JointOptimizer(load_system_model(args.model))
        else:
            ctx = default_context(
                seed=args.seed, n_machines=args.machines,
                sim_engine=args.sim_engine,
            )
            optimizer = ctx.optimizer
        if args.budget is not None:
            max_load, result = optimizer.max_load_under_budget(args.budget)
            print(
                f"maximum load under {args.budget:.0f} W: "
                f"{max_load:.2f} tasks/s"
            )
        else:
            result = optimizer.solve(args.load)
        print(f"ON set: {list(result.on_ids)}")
        print(f"T_ac = {result.t_ac:.2f} K, commanded T_SP = {result.t_sp:.2f} K")
        loads = ", ".join(
            f"{i}:{result.loads[i]:.2f}" for i in result.on_ids
        )
        print(f"loads (tasks/s): {loads}")
        print(
            "model-predicted total power: "
            f"{result.predicted_total_power:.1f} W"
        )
        return 0

    targets: list[str]
    if args.target == "all":
        targets = [*standalone, *contextual]
    elif args.target in contextual or args.target in standalone:
        targets = [args.target]
    else:
        print(f"unknown target {args.target!r}; try 'list'", file=sys.stderr)
        return 2

    ctx = None
    for name in targets:
        if name in standalone:
            result = standalone[name]()
        else:
            if ctx is None:
                ctx = default_context(
                    seed=args.seed, n_machines=args.machines,
                    sim_engine=args.sim_engine,
                )
            result = contextual[name](ctx)
        if args.plot and hasattr(result, "series"):
            from repro.analysis.plots import ascii_plot

            print(ascii_plot(result.series))
        else:
            print(result.table())
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
