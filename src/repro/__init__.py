"""repro — reproduction of "Joint Optimization of Computing and Cooling
Energy: Analytic Model and a Machine Room Case Study" (ICDCS 2012).

The package has three layers:

1. **Substrates** (:mod:`repro.thermal`, :mod:`repro.power`,
   :mod:`repro.workload`) — the simulated machine room, servers and batch
   workload standing in for the paper's physical 20-machine testbed.
2. **The paper's contribution** (:mod:`repro.core`,
   :mod:`repro.profiling`) — model profiling, the closed-form optimal
   load distribution (Eqs. 18-22), the optimal consolidation algorithms
   (Algorithms 1-2), and the eight evaluation policies.
3. **Evaluation** (:mod:`repro.testbed`, :mod:`repro.experiments`,
   :mod:`repro.analysis`) — the harness regenerating every figure of the
   paper's Section IV.

Quickstart::

    from repro import build_testbed, JointOptimizer

    testbed = build_testbed(seed=7)
    profiled = testbed.profile()
    optimizer = JointOptimizer(profiled.system_model)
    result = optimizer.solve(total_load=400.0)   # tasks/s
    print(result.on_ids, result.t_sp, result.loads)
"""

from repro import obs
from repro.core.closed_form import ClosedFormSolution, solve_closed_form
from repro.core.consolidation import ConsolidationIndex
from repro.core.model import (
    CoolerModel,
    NodeCoefficients,
    PowerModel,
    SystemModel,
)
from repro.core.optimizer import JointOptimizer, OptimizationResult
from repro.core.policies import (
    PolicyDecision,
    Scenario,
    paper_scenarios,
    scenario_by_number,
)
from repro.errors import (
    ConfigurationError,
    ConvergenceError,
    InfeasibleError,
    ProfilingError,
    ReproError,
    ServingUnavailableError,
    SimulationError,
)
from repro.testbed.experiment import ExperimentRecord, Testbed
from repro.testbed.rack import TestbedConfig, build_testbed

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # observability
    "obs",
    # errors
    "ReproError",
    "ConfigurationError",
    "InfeasibleError",
    "ConvergenceError",
    "ProfilingError",
    "SimulationError",
    "ServingUnavailableError",
    # models
    "PowerModel",
    "NodeCoefficients",
    "CoolerModel",
    "SystemModel",
    # optimization
    "ClosedFormSolution",
    "solve_closed_form",
    "ConsolidationIndex",
    "JointOptimizer",
    "OptimizationResult",
    # policies & evaluation
    "PolicyDecision",
    "Scenario",
    "paper_scenarios",
    "scenario_by_number",
    "Testbed",
    "TestbedConfig",
    "build_testbed",
    "ExperimentRecord",
]
