"""Wire protocol of the allocation-serving daemon (``repro serve``).

Newline-delimited JSON over a stream transport (TCP or a unix socket).
Each request is one JSON object on one line; each response is one JSON
object on one line, echoing the request ``id``.  The protocol is
deliberately small — three query operations against a warm
:class:`~repro.core.consolidation.ConsolidationIndex`, plus liveness
and introspection:

``allocate``
    One joint allocation: ``{"op": "allocate", "load": <tasks/s>}``
    (optional ``exclude`` list of machine ids).  Answers with the ON
    set, the supply/set-point temperatures, the per-machine load split,
    and the model-predicted total power — the serving form of
    :meth:`repro.core.optimizer.JointOptimizer.solve`.

``maxL``
    The paper's dual question: ``{"op": "maxL", "budget": <W>}`` —
    the maximum servable load under a power budget
    (:meth:`~repro.core.optimizer.JointOptimizer.max_load_under_budget`).

``what-if``
    A receding-horizon lookahead: ``{"op": "what-if", "loads": [...]}``
    answers every horizon point in one batched index pass
    (:meth:`~repro.core.consolidation.ConsolidationIndex.query_many`);
    an optional ``on_ids`` pins an explicit ON set instead, scoring the
    horizon against a fixed configuration.

``ping`` / ``stats``
    Liveness and the server's metrics snapshot (request counts, latency
    percentiles, batch-size distribution, watchdog stalls).

``telemetry``
    The live windowed view: per-horizon request rates, latency
    percentiles, queue depth, batch sizes, and SLO headroom — as
    structured JSON (default) or, with ``{"format": "prometheus"}``, as
    Prometheus text exposition ready for a scraper.

``trace``
    The most recent per-request span chains (request → batch →
    ``query_many``) as a self-contained trace-JSONL document; optional
    ``limit`` caps the span count.

Every parsed request is also stamped with a process-unique ``trace_id``
(not part of the wire format) that rides through the
:class:`~repro.serving.batcher.MicroBatcher` into the compute thread,
letting the server link each batch span to the request spans it served.

Responses are ``{"id": ..., "ok": true, "result": {...}}`` on success.
Failures are *structured*, reusing the :mod:`repro.errors` hierarchy:
``{"id": ..., "ok": false, "error": {"type": "InfeasibleError",
"message": "..."}}`` — the client re-raises the matching exception
class (:func:`raise_error`), so a remote infeasible load is caught with
the same ``except InfeasibleError`` as a local one.  A malformed
request never kills the connection: it yields a ``ConfigurationError``
response with ``id: null`` when no id could be recovered.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional

from repro import errors
from repro.errors import ConfigurationError, ReproError

#: Protocol schema stamp, echoed by ``ping`` and ``stats``.  Version 2
#: added the ``telemetry`` and ``trace`` ops (version 1 responses are a
#: strict subset, so v1 clients keep working).
PROTOCOL_VERSION = 2

#: Operations the daemon answers.
OPS = ("allocate", "maxL", "what-if", "ping", "stats", "telemetry", "trace")

#: ``telemetry`` output formats.
TELEMETRY_FORMATS = ("json", "prometheus")

#: Longest accepted request line, bytes (guards the stream reader
#: against unbounded buffering; a 10k-point what-if horizon fits).
MAX_LINE_BYTES = 1_000_000

#: Process-wide trace-id source; every parsed request gets the next one.
_TRACE_IDS = itertools.count(1)


@dataclass(frozen=True)
class Request:
    """One decoded, validated request.

    ``trace_id`` is server-side bookkeeping, not wire data: assigned at
    parse time, excluded from equality, and used to link the request's
    trace span to the batch span that eventually serves it.
    """

    op: str
    id: Optional[Any] = None
    load: Optional[float] = None
    budget: Optional[float] = None
    loads: Optional[tuple[float, ...]] = None
    on_ids: Optional[tuple[int, ...]] = None
    exclude: tuple[int, ...] = field(default=())
    limit: Optional[int] = None
    format: Optional[str] = None
    trace_id: Optional[int] = field(default=None, compare=False)


def _number(payload: Mapping, key: str, *, required: bool) -> Optional[float]:
    value = payload.get(key)
    if value is None:
        if required:
            raise ConfigurationError(f"{key!r} is required for this op")
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(f"{key!r} must be a number, got {value!r}")
    return float(value)


def _id_list(payload: Mapping, key: str) -> Optional[tuple[int, ...]]:
    value = payload.get(key)
    if value is None:
        return None
    if not isinstance(value, list) or any(
        isinstance(v, bool) or not isinstance(v, int) for v in value
    ):
        raise ConfigurationError(f"{key!r} must be a list of machine ids")
    return tuple(int(v) for v in value)


def parse_request(payload: Any) -> Request:
    """Validate a decoded JSON payload into a :class:`Request`.

    Raises
    ------
    ConfigurationError
        On any shape problem: not an object, unknown/missing ``op``,
        missing or mistyped parameters.  The message is safe to send
        back verbatim in a structured error response.
    """
    if not isinstance(payload, Mapping):
        raise ConfigurationError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    op = payload.get("op")
    if op not in OPS:
        raise ConfigurationError(
            f"unknown op {op!r}; expected one of {list(OPS)}"
        )
    request_id = payload.get("id")
    load = budget = None
    loads = on_ids = None
    limit: Optional[int] = None
    fmt: Optional[str] = None
    if op == "allocate":
        load = _number(payload, "load", required=True)
    elif op == "maxL":
        budget = _number(payload, "budget", required=True)
    elif op == "what-if":
        raw = payload.get("loads")
        if not isinstance(raw, list) or not raw or any(
            isinstance(v, bool) or not isinstance(v, (int, float))
            for v in raw
        ):
            raise ConfigurationError(
                "'loads' must be a non-empty list of numbers"
            )
        loads = tuple(float(v) for v in raw)
        on_ids = _id_list(payload, "on_ids")
    elif op == "telemetry":
        fmt = payload.get("format")
        if fmt is not None and fmt not in TELEMETRY_FORMATS:
            raise ConfigurationError(
                f"'format' must be one of {list(TELEMETRY_FORMATS)}, "
                f"got {fmt!r}"
            )
    elif op == "trace":
        raw_limit = payload.get("limit")
        if raw_limit is not None:
            if isinstance(raw_limit, bool) or not isinstance(
                raw_limit, int
            ) or raw_limit < 1:
                raise ConfigurationError(
                    f"'limit' must be a positive int, got {raw_limit!r}"
                )
            limit = raw_limit
    exclude = _id_list(payload, "exclude") or ()
    if exclude and op not in ("allocate",):
        raise ConfigurationError("'exclude' is only valid for 'allocate'")
    return Request(
        op=op, id=request_id, load=load, budget=budget,
        loads=loads, on_ids=on_ids, exclude=exclude,
        limit=limit, format=fmt, trace_id=next(_TRACE_IDS),
    )


def decode_request(line: str) -> Request:
    """Parse one wire line into a :class:`Request`.

    Raises :class:`ConfigurationError` on invalid JSON (the transport
    layer turns it into an error response, keeping the connection up).
    """
    try:
        payload = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ConfigurationError(f"request is not valid JSON: {exc}") from exc
    return parse_request(payload)


def ok_response(request_id: Optional[Any], result: Mapping) -> dict:
    """A success envelope for ``result``."""
    return {"id": request_id, "ok": True, "result": dict(result)}


def error_response(request_id: Optional[Any], exc: Exception) -> dict:
    """A structured-error envelope for ``exc``.

    The ``type`` field carries the :mod:`repro.errors` class name when
    ``exc`` belongs to the family, else the literal ``"ReproError"`` —
    a client always gets a raisable type.
    """
    name = type(exc).__name__
    if not isinstance(exc, ReproError) or not isinstance(
        getattr(errors, name, None), type
    ):
        name = "ReproError"
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": name, "message": str(exc)},
    }


def encode(message: Mapping) -> bytes:
    """One wire line (UTF-8 JSON + newline) for a request or response."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode()


def raise_error(response: Mapping) -> None:
    """Re-raise the :mod:`repro.errors` exception a failure encodes.

    No-op for success envelopes; raises :class:`ConfigurationError` on
    envelopes that are themselves malformed.
    """
    if not isinstance(response, Mapping) or "ok" not in response:
        raise ConfigurationError(f"malformed response envelope: {response!r}")
    if response["ok"]:
        return
    error = response.get("error")
    if not isinstance(error, Mapping) or "type" not in error:
        raise ConfigurationError(f"malformed error envelope: {response!r}")
    cls = getattr(errors, str(error["type"]), None)
    if not (isinstance(cls, type) and issubclass(cls, ReproError)):
        cls = ReproError
    raise cls(str(error.get("message", "remote error")))
