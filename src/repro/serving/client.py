"""Blocking client for the allocation-serving daemon.

A thin, dependency-free wrapper over the JSON-lines protocol: one
socket, one request per call, structured errors re-raised as the
matching :mod:`repro.errors` exception — so remote calls read exactly
like local library calls:

    with ServingClient(socket_path="repro.sock") as client:
        result = client.allocate(load=120.0)
        result["on_ids"], result["t_sp"]

Deliberately synchronous: the daemon's micro-batching coalesces many
*clients*, so each client stays simple.  Scripts that need concurrency
run many clients (threads/processes), which is exactly what the
benchmark's load generator simulates.
"""

from __future__ import annotations

import json
import pathlib
import socket
from typing import Optional, Sequence, Union

from repro.errors import ConfigurationError, ServingUnavailableError
from repro.serving.protocol import MAX_LINE_BYTES, encode, raise_error

#: OS-level errors meaning "the daemon is not there right now" — a
#: refused/reset/missing socket, or a pipe broken by a mid-call drain.
#: All of them are retryable, none of them are the caller's fault, so
#: the client maps every one to :class:`ServingUnavailableError`.
_UNAVAILABLE_ERRORS = (
    ConnectionRefusedError,
    ConnectionResetError,
    BrokenPipeError,
    FileNotFoundError,
    socket.timeout,
)


class ServingClient:
    """Talk to one ``repro serve`` daemon over unix socket or TCP.

    Daemon restarts and drains are part of normal operation, so the
    transport errors they cause (``ConnectionRefusedError``,
    ``BrokenPipeError``, a vanished socket file, a reset) never escape
    raw: every call surfaces them as the retryable
    :class:`~repro.errors.ServingUnavailableError` instead of a
    traceback.  Reconnect by constructing a fresh client.
    """

    def __init__(
        self,
        socket_path: Optional[Union[str, pathlib.Path]] = None,
        host: Optional[str] = None,
        port: Optional[int] = None,
        timeout: float = 60.0,
    ) -> None:
        if (socket_path is None) == (host is None or port is None):
            raise ConfigurationError(
                "connect with either socket_path or host+port"
            )
        try:
            if socket_path is not None:
                self._sock = socket.socket(
                    socket.AF_UNIX, socket.SOCK_STREAM
                )
                self._sock.settimeout(timeout)
                self._sock.connect(str(socket_path))
            else:
                self._sock = socket.create_connection(
                    (host, int(port)), timeout=timeout
                )
        except _UNAVAILABLE_ERRORS as exc:
            target = (
                str(socket_path) if socket_path is not None
                else f"{host}:{port}"
            )
            raise ServingUnavailableError(
                f"cannot reach serving daemon at {target}: {exc} "
                "(not started, draining, or restarting?)"
            ) from exc
        self._reader = self._sock.makefile("rb")
        self._next_id = 0

    # ------------------------------------------------------------------ #
    # Transport
    # ------------------------------------------------------------------ #

    def call(self, op: str, **params) -> dict:
        """Send one request, wait for its response, return the result.

        Raises the re-hydrated :mod:`repro.errors` exception on a
        structured error response, :class:`ConfigurationError` on a
        broken envelope, and the retryable
        :class:`~repro.errors.ServingUnavailableError` when the daemon
        dropped the connection (drain, restart, crash).
        """
        self._next_id += 1
        request_id = self._next_id
        payload = {"op": op, "id": request_id}
        payload.update(
            {key: value for key, value in params.items() if value is not None}
        )
        try:
            self._sock.sendall(encode(payload))
            line = self._reader.readline(MAX_LINE_BYTES)
        except _UNAVAILABLE_ERRORS as exc:
            raise ServingUnavailableError(
                f"serving daemon dropped the connection mid-call: {exc} "
                "(draining or restarting?)"
            ) from exc
        if not line:
            raise ServingUnavailableError(
                "connection closed by server (draining or crashed?)"
            )
        try:
            response = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ConfigurationError(
                f"response is not valid JSON: {exc}"
            ) from exc
        raise_error(response)
        if response.get("id") != request_id:
            raise ConfigurationError(
                f"response id {response.get('id')!r} does not match "
                f"request id {request_id!r}"
            )
        return response["result"]

    def close(self) -> None:
        try:
            self._reader.close()
        finally:
            self._sock.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # The protocol ops
    # ------------------------------------------------------------------ #

    def allocate(
        self, load: float, exclude: Optional[Sequence[int]] = None
    ) -> dict:
        """One joint allocation: ON set, load split, ``t_sp``, power."""
        return self.call(
            "allocate",
            load=load,
            exclude=None if exclude is None else [int(i) for i in exclude],
        )

    def max_load(self, budget: float) -> dict:
        """The paper's ``maxL``: max servable load under a power budget."""
        return self.call("maxL", budget=budget)

    def what_if(
        self,
        loads: Sequence[float],
        on_ids: Optional[Sequence[int]] = None,
    ) -> dict:
        """Score a lookahead horizon (optionally on a pinned ON set)."""
        return self.call(
            "what-if",
            loads=[float(v) for v in loads],
            on_ids=None if on_ids is None else [int(i) for i in on_ids],
        )

    def ping(self) -> dict:
        return self.call("ping")

    def stats(self) -> dict:
        return self.call("stats")

    def telemetry(self, format: Optional[str] = None) -> dict:
        """The windowed live view (``format="prometheus"`` for text)."""
        return self.call("telemetry", format=format)

    def trace(self, limit: Optional[int] = None) -> dict:
        """The most recent request/batch span chains (trace JSONL)."""
        return self.call("trace", limit=limit)
