"""repro.serving — the online allocation-serving daemon (``repro serve``).

Turns the batch library into a long-running system: an asyncio daemon
answering ``allocate`` / ``maxL`` / ``what-if`` queries over a unix
socket or TCP, against a warm in-memory
:class:`~repro.core.consolidation.ConsolidationIndex` (loaded from the
persistent ``.npz`` cache when available).  Concurrent requests are
micro-batched into single
:meth:`~repro.core.consolidation.ConsolidationIndex.query_many` passes.

Layers (see ``docs/serving.md`` for the architecture walkthrough):

- :mod:`repro.serving.protocol` — the JSON-lines wire format and the
  structured-error mapping onto :mod:`repro.errors`.
- :mod:`repro.serving.batcher` — the async collector that coalesces
  concurrent requests within a small window.
- :mod:`repro.serving.server` — :class:`AllocationServer`: warm start,
  transports, watchdog, latency histograms, graceful drain.
- :mod:`repro.serving.telemetry` — :class:`ServingTelemetry`: the
  windowed metrics + per-request span store behind the ``telemetry``
  and ``trace`` ops and the SLO watchdogs.
- :mod:`repro.serving.client` — a blocking JSON-lines client that
  re-raises remote errors as local :mod:`repro.errors` exceptions.
- :mod:`repro.serving.loadgen` — the in-process concurrent-client
  simulator behind ``benchmarks/bench_serving.py``.
"""

from repro.serving.batcher import MicroBatcher
from repro.serving.client import ServingClient
from repro.serving.loadgen import LoadgenReport, quantized_loads, run_load
from repro.serving.protocol import (
    MAX_LINE_BYTES,
    OPS,
    PROTOCOL_VERSION,
    TELEMETRY_FORMATS,
    Request,
    decode_request,
    encode,
    error_response,
    ok_response,
    parse_request,
    raise_error,
)
from repro.serving.server import (
    AllocationServer,
    ServingConfig,
    background_server,
)
from repro.serving.telemetry import ServingTelemetry

__all__ = [
    "PROTOCOL_VERSION",
    "OPS",
    "MAX_LINE_BYTES",
    "TELEMETRY_FORMATS",
    "Request",
    "parse_request",
    "decode_request",
    "encode",
    "ok_response",
    "error_response",
    "raise_error",
    "MicroBatcher",
    "AllocationServer",
    "ServingConfig",
    "ServingTelemetry",
    "background_server",
    "ServingClient",
    "LoadgenReport",
    "quantized_loads",
    "run_load",
]
