"""Live telemetry store of the serving daemon.

The ``stats`` op reports *lifetime* aggregates — totals since boot,
which an operator cannot act on during an incident because a morning of
healthy traffic drowns the last bad minute.  :class:`ServingTelemetry`
is the daemon's *windowed* view: every request, batch, queue-depth
sample, and watchdog tick lands in sliding-window instruments
(:class:`~repro.obs.metrics.WindowedCounter`,
:class:`~repro.obs.metrics.SlidingHistogram`), so the ``telemetry`` op
can answer "what are req/s and p99 over the last 10 s / 1 m / 5 m"
exactly, and the SLO monitors in :mod:`repro.obs.watchdog` can evaluate
burn rates against the same horizons.

It is also the daemon's trace store.  The process-global
:class:`~repro.obs.trace.TraceBuffer` belongs to the user (tests and
benchmarks enable/clear it at will), so the server keeps its own
bounded deque of recently *closed* spans and events: request spans,
batch spans, and the ``query_many`` child spans, linked by ids, plus
``slo.violation`` events.  The ``trace`` op serves the tail of that
deque as a self-contained trace-JSONL document, and an optional
:class:`~repro.obs.trace.RotatingTraceExporter` persists every closed
record to disk (flushed from the watchdog loop, never on the request
path).

Thread model: the event loop opens/closes request spans and feeds the
request instruments; the compute thread opens/closes batch spans and
annotates the request spans it serves.  One lock guards all of it —
every operation is a few list/dict writes, so contention is negligible
next to a solve.
"""

from __future__ import annotations

import threading
from collections import deque
from time import monotonic, perf_counter
from typing import Optional

from repro.errors import ConfigurationError
from repro.obs.metrics import (
    DEFAULT_HORIZONS,
    SlidingHistogram,
    WindowedCounter,
)
from repro.obs.trace import (
    RotatingTraceExporter,
    TraceBuffer,
    TraceEvent,
    TraceSpan,
)

#: Closed spans/events retained in memory for the ``trace`` op.
MAX_RECENT_SPANS = 2048
MAX_RECENT_EVENTS = 2048

#: Default (and maximum) span count the ``trace`` op returns.
DEFAULT_TRACE_LIMIT = 100
MAX_TRACE_LIMIT = 1000


class ServingTelemetry:
    """Windowed metrics plus a bounded span store for one daemon.

    Parameters
    ----------
    window:
        Seconds of history the sliding instruments retain; every
        reported horizon must fit inside it.
    horizons:
        The horizons (seconds) reported by :meth:`snapshot`.
    exporter:
        Optional :class:`~repro.obs.trace.RotatingTraceExporter`; when
        set, every closed span/event is also queued for :meth:`flush`.
    clock:
        Monotonic-seconds callable feeding the windowed instruments
        (swap in a fake for deterministic tests).  Span timestamps use
        ``perf_counter`` like the rest of :mod:`repro.obs.trace`.
    """

    def __init__(
        self,
        window: float = 300.0,
        horizons: tuple = DEFAULT_HORIZONS,
        exporter: Optional[RotatingTraceExporter] = None,
        clock=monotonic,
        keep_spans: int = MAX_RECENT_SPANS,
        keep_events: int = MAX_RECENT_EVENTS,
    ) -> None:
        bad = [h for h in horizons if not 0.0 < h <= window]
        if not horizons or bad:
            raise ConfigurationError(
                f"telemetry horizons must be in (0, {window}] seconds, "
                f"got {list(horizons)}"
            )
        self.window = float(window)
        self.horizons = tuple(float(h) for h in horizons)
        self.exporter = exporter
        self.clock = clock
        self._lock = threading.Lock()
        # Windowed instruments (guarded by the lock).
        self._requests = WindowedCounter("serving.requests", window)
        self._errors = WindowedCounter("serving.errors", window)
        self._latency_ms = SlidingHistogram("serving.latency_ms", window)
        self._latency_by_op: dict[str, SlidingHistogram] = {}
        self._queue_depth = SlidingHistogram("serving.queue_depth", window)
        self._batch_size = SlidingHistogram("serving.batch_size", window)
        self._loop_lag = SlidingHistogram("serving.loop_lag_seconds", window)
        # Trace store.
        self._next_span_id = 1
        self._recent_spans: deque = deque(maxlen=keep_spans)
        self._recent_events: deque = deque(maxlen=keep_events)
        self._pending_spans: list[TraceSpan] = []
        self._pending_events: list[TraceEvent] = []
        # SLO bookkeeping.
        self.violation_counts: dict[str, int] = {}
        self.worst_headroom: dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # Windowed instrument feeds (hot path: a few appends under the lock)
    # ------------------------------------------------------------------ #

    def observe_request(
        self, op: str, seconds: float, error: bool = False
    ) -> None:
        """One finished request: latency plus the request/error rates."""
        now = self.clock()
        with self._lock:
            self._requests.inc(now=now)
            if error:
                self._errors.inc(now=now)
            self._latency_ms.observe(seconds * 1e3, now=now)
            per_op = self._latency_by_op.get(op)
            if per_op is None:
                per_op = self._latency_by_op[op] = SlidingHistogram(
                    f"serving.latency_ms.{op}", self.window
                )
            per_op.observe(seconds * 1e3, now=now)

    def observe_queue_depth(self, depth: int) -> None:
        with self._lock:
            self._queue_depth.observe(depth, now=self.clock())

    def observe_batch(self, size: int) -> None:
        with self._lock:
            self._batch_size.observe(size, now=self.clock())

    def observe_loop_lag(self, lag_seconds: float) -> None:
        with self._lock:
            self._loop_lag.observe(lag_seconds, now=self.clock())

    # ------------------------------------------------------------------ #
    # Windowed reads (the duck-typed surface the SLO monitors consume)
    # ------------------------------------------------------------------ #

    def request_count(self, horizon: float) -> float:
        with self._lock:
            return self._requests.total(horizon, now=self.clock())

    def error_count(self, horizon: float) -> float:
        with self._lock:
            return self._errors.total(horizon, now=self.clock())

    def request_rate(self, horizon: float) -> float:
        with self._lock:
            return self._requests.rate(horizon, now=self.clock())

    def latency_p99_ms(self, horizon: float) -> float:
        with self._lock:
            return self._latency_ms.percentile(
                99.0, horizon, now=self.clock()
            )

    def latency_p50_ms(self, horizon: float) -> float:
        with self._lock:
            return self._latency_ms.percentile(
                50.0, horizon, now=self.clock()
            )

    def max_queue_depth(self, horizon: float) -> float:
        with self._lock:
            return self._queue_depth.max_value(horizon, now=self.clock())

    def max_loop_lag_seconds(self, horizon: float) -> float:
        with self._lock:
            return self._loop_lag.max_value(horizon, now=self.clock())

    # ------------------------------------------------------------------ #
    # Span store (request → batch → query_many linkage)
    # ------------------------------------------------------------------ #

    def start_span(
        self, name: str, parent: Optional[TraceSpan] = None, **attributes
    ) -> TraceSpan:
        """Open a span in the daemon's private trace namespace.

        Unlike :class:`~repro.obs.trace.TraceBuffer` there is no
        innermost-open-span stack — the loop and compute threads
        interleave — so the parent is always explicit.
        """
        with self._lock:
            span_id = self._next_span_id
            self._next_span_id += 1
        return TraceSpan(
            span_id=span_id,
            parent_id=None if parent is None else parent.span_id,
            name=name,
            start=perf_counter(),
            attributes=dict(attributes),
        )

    def annotate(self, span: TraceSpan, **attributes) -> None:
        """Attach attributes to a still-open span."""
        span.attributes.update(attributes)

    def end_span(self, span: TraceSpan, **attributes) -> None:
        """Close a span and commit it to the recent/pending stores."""
        span.end = perf_counter()
        if attributes:
            span.attributes.update(attributes)
        with self._lock:
            self._recent_spans.append(span)
            if self.exporter is not None:
                self._pending_spans.append(span)

    def add_event(
        self, name: str, span_id: Optional[int] = None, **attributes
    ) -> TraceEvent:
        event = TraceEvent(
            name=name,
            time=perf_counter(),
            span_id=span_id,
            attributes=dict(attributes),
        )
        with self._lock:
            self._recent_events.append(event)
            if self.exporter is not None:
                self._pending_events.append(event)
        return event

    def record_violation(self, violation) -> None:
        """Fold one watchdog :class:`~repro.obs.watchdog.Violation` in.

        Emits the ``slo.violation`` trace event and keeps per-monitor
        counts/headroom for the ``stats``/``telemetry`` ops.
        """
        self.add_event(
            "slo.violation",
            monitor=violation.monitor,
            metric=violation.metric,
            headroom=violation.headroom,
            message=violation.message,
        )
        with self._lock:
            self.violation_counts[violation.monitor] = (
                self.violation_counts.get(violation.monitor, 0) + 1
            )
            worst = self.worst_headroom.get(
                violation.metric, float("inf")
            )
            self.worst_headroom[violation.metric] = min(
                worst, violation.headroom
            )

    def trace_tail(self, limit: Optional[int] = None) -> dict:
        """The most recent closed spans (and their events) as JSONL.

        The result of the ``trace`` op: a ``TraceBuffer``-compatible
        JSONL document plus the span/event counts, small enough for one
        protocol line.
        """
        if limit is None:
            limit = DEFAULT_TRACE_LIMIT
        limit = min(int(limit), MAX_TRACE_LIMIT)
        with self._lock:
            spans = list(self._recent_spans)[-limit:]
            events = list(self._recent_events)[-limit:]
        buffer = TraceBuffer()
        buffer.spans = spans
        buffer.events = events
        if spans:
            buffer._next_id = max(s.span_id for s in spans) + 1
        return {
            "spans": len(spans),
            "events": len(events),
            "jsonl": buffer.to_jsonl(),
        }

    def flush(self) -> int:
        """Write pending records to the exporter; returns how many.

        Called from the daemon's watchdog loop so disk I/O never sits
        on the request path.  No-op without an exporter.
        """
        if self.exporter is None:
            return 0
        with self._lock:
            spans, self._pending_spans = self._pending_spans, []
            events, self._pending_events = self._pending_events, []
        if not spans and not events:
            return 0
        self.exporter.write(spans, events)
        return len(spans) + len(events)

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #

    def snapshot(self) -> dict:
        """JSON-safe windowed summary (the ``telemetry`` op's result)."""
        now = self.clock()
        with self._lock:
            per_op = {
                op: hist.summary(self.horizons, now=now)
                for op, hist in sorted(self._latency_by_op.items())
            }
            return {
                "window_seconds": self.window,
                "horizons": list(self.horizons),
                "requests": self._requests.summary(self.horizons, now=now),
                "errors": self._errors.summary(self.horizons, now=now),
                "latency_ms": self._latency_ms.summary(
                    self.horizons, now=now
                ),
                "latency_ms_by_op": per_op,
                "queue_depth": self._queue_depth.summary(
                    self.horizons, now=now
                ),
                "batch_size": self._batch_size.summary(
                    self.horizons, now=now
                ),
                "loop_lag_seconds": self._loop_lag.summary(
                    self.horizons, now=now
                ),
                "slo": {
                    "violations": dict(self.violation_counts),
                    "worst_headroom": {
                        k: v
                        for k, v in sorted(self.worst_headroom.items())
                    },
                },
                "trace": {
                    "recent_spans": len(self._recent_spans),
                    "recent_events": len(self._recent_events),
                    "pending_export": (
                        len(self._pending_spans)
                        + len(self._pending_events)
                    ),
                },
            }
