"""The async micro-batching collector behind the serving daemon.

Concurrent requests are coalesced into one dispatch: the first request
of a batch arms a collection window (``batch_window`` seconds); every
request that arrives before the window closes — or before the batch
reaches ``max_batch`` — rides along, and the whole batch is handed to
the dispatch callable at once.  While a batch is computing, the next
one keeps filling ("collect while computing"), so under sustained load
the effective batch size grows toward ``max_batch`` without any
request waiting longer than one window plus one dispatch.

Why this is the right lever here: the downstream work is dominated by
:meth:`repro.core.consolidation.ConsolidationIndex.query_many`, whose
batched contract (one vectorized ``searchsorted`` pass, duplicate
loads answered once, shared refined-scan caches — see
``docs/algorithms.md``) makes a batch of queries far cheaper than the
same queries issued one at a time.  The batcher converts *concurrency*
(many clients in flight) into *batches* (one indexed pass), which is
exactly the transformation ``benchmarks/bench_serving.py`` measures.

With ``batching=False`` the collector degenerates to strict one-at-a-
time dispatch through the same queue and future machinery — the
apples-to-apples baseline for the benchmark.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Optional

from repro import obs
from repro.errors import ConfigurationError, ServingUnavailableError

#: Queue sentinel that tells the worker to finish and exit.
_STOP = object()

#: Dispatch callable: a batch of requests in, one outcome per request
#: out (a result mapping, or an exception instance to deliver).
DispatchFn = Callable[[list], Awaitable[list]]


class MicroBatcher:
    """Coalesce concurrent ``submit`` calls into batched dispatches.

    Parameters
    ----------
    dispatch:
        Async callable receiving the batch (a list of requests) and
        returning one outcome per request, positionally: a result to
        resolve the caller's future with, or an :class:`Exception`
        instance to raise into the caller.
    batch_window:
        Seconds the first request of a batch waits for company.  ``0``
        disables the timed wait (opportunistic same-tick coalescing
        still happens via queue draining).
    max_batch:
        Hard cap on requests per dispatch.
    batching:
        ``False`` forces singleton dispatches (the benchmark baseline).
    on_batch:
        Optional callback invoked with each dispatched batch's size —
        the hook the server uses to feed its windowed batch-size
        telemetry without the batcher importing the telemetry layer.
    """

    def __init__(
        self,
        dispatch: DispatchFn,
        batch_window: float = 0.005,
        max_batch: int = 256,
        batching: bool = True,
        on_batch: Optional[Callable[[int], None]] = None,
    ) -> None:
        if batch_window < 0.0:
            raise ConfigurationError(
                f"batch_window must be non-negative, got {batch_window}"
            )
        if max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be at least 1, got {max_batch}"
            )
        self._dispatch = dispatch
        self.batch_window = float(batch_window)
        self.max_batch = int(max_batch)
        self.batching = bool(batching)
        self.on_batch = on_batch
        self._queue: Optional[asyncio.Queue] = None
        self._worker: Optional[asyncio.Task] = None
        self._draining = False
        # Exact dispatch statistics (the batch-size histogram of
        # ``serving.json`` and the ``stats`` op).
        self.batches = 0
        self.dispatched = 0
        self.batch_sizes: dict[int, int] = {}

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def start(self) -> None:
        """Create the queue and the worker task (requires a running
        event loop)."""
        if self._worker is not None:
            raise ConfigurationError("batcher is already started")
        self._draining = False
        self._queue = asyncio.Queue()
        self._worker = asyncio.create_task(
            self._run(), name="repro-serve-batcher"
        )

    async def drain(self) -> None:
        """Finish every accepted request, then stop the worker.

        New :meth:`submit` calls fail with
        :class:`~repro.errors.ServingUnavailableError` the moment drain
        begins; everything already queued (or mid-batch) completes and
        resolves its caller's future before the worker exits.
        """
        if self._queue is None:
            return
        if not self._draining:
            self._draining = True
            self._queue.put_nowait(_STOP)
        if self._worker is not None:
            await self._worker
            self._worker = None
            self._queue = None

    @property
    def depth(self) -> int:
        """Requests currently queued (excludes the batch in dispatch)."""
        return 0 if self._queue is None else self._queue.qsize()

    @property
    def mean_batch_size(self) -> float:
        """Average dispatched batch size (0.0 before any dispatch)."""
        return self.dispatched / self.batches if self.batches else 0.0

    # ------------------------------------------------------------------ #
    # Submission
    # ------------------------------------------------------------------ #

    async def submit(self, request: Any) -> Any:
        """Queue ``request`` and wait for its batched outcome.

        Raises whatever exception the dispatcher returned for this
        request, or :class:`~repro.errors.ServingUnavailableError` when
        the batcher is draining or not started.
        """
        if self._queue is None or self._draining:
            raise ServingUnavailableError(
                "serving batcher is not accepting requests "
                "(draining or not started)"
            )
        future: asyncio.Future = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((request, future))
        return await future

    # ------------------------------------------------------------------ #
    # Worker
    # ------------------------------------------------------------------ #

    async def _collect(self) -> tuple[list, bool]:
        """Gather the next batch; returns ``(items, stop_seen)``."""
        queue = self._queue
        assert queue is not None
        first = await queue.get()
        if first is _STOP:
            return [], True
        items = [first]
        stop = False
        loop = asyncio.get_running_loop()
        if self.batching:
            # Opportunistic same-tick coalescing: anything already
            # queued joins for free (this is what keeps batches full
            # while a previous dispatch is computing).
            while len(items) < self.max_batch:
                try:
                    nxt = queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is _STOP:
                    return items, True
                items.append(nxt)
            # Timed collection window for company still on the wire.
            deadline = loop.time() + self.batch_window
            while len(items) < self.max_batch:
                timeout = deadline - loop.time()
                if timeout <= 0.0:
                    break
                try:
                    nxt = await asyncio.wait_for(queue.get(), timeout)
                except asyncio.TimeoutError:
                    break
                if nxt is _STOP:
                    stop = True
                    break
                items.append(nxt)
        return items, stop

    async def _run(self) -> None:
        stop = False
        while not stop:
            items, stop = await self._collect()
            if not items:
                break
            self.batches += 1
            self.dispatched += len(items)
            self.batch_sizes[len(items)] = (
                self.batch_sizes.get(len(items), 0) + 1
            )
            obs.observe("serving.batch_size", len(items))
            if self.on_batch is not None:
                self.on_batch(len(items))
            requests = [request for request, _ in items]
            try:
                outcomes = await self._dispatch(requests)
                if len(outcomes) != len(items):
                    raise ConfigurationError(
                        f"dispatch returned {len(outcomes)} outcomes "
                        f"for a batch of {len(items)}"
                    )
            except Exception as exc:  # noqa: BLE001 — worker must survive
                outcomes = [exc] * len(items)
            for (_, future), outcome in zip(items, outcomes):
                if future.cancelled():
                    continue
                if isinstance(outcome, Exception):
                    future.set_exception(outcome)
                else:
                    future.set_result(outcome)
