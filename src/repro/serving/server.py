"""The allocation-serving daemon: a warm index behind an asyncio loop.

:class:`AllocationServer` turns the batch library into an online
system: it warm-starts a :class:`~repro.core.consolidation.ConsolidationIndex`
(from the persistent ``.npz`` cache when the optimizer has an
``index_cache_dir``), listens on a unix socket or TCP, and answers the
protocol's ``allocate`` / ``maxL`` / ``what-if`` queries.

Concurrency model — one event loop, one compute thread:

- The loop owns all I/O (connections, the :class:`MicroBatcher`
  collection window, the watchdog).
- All numeric work runs on a single-worker ``ThreadPoolExecutor``, so
  the loop keeps collecting the *next* batch while the current one
  computes, and the (non-thread-safe) index caches are only ever
  touched from one thread.

Batched ``allocate`` dispatch groups the batch's loads into one
:meth:`~repro.core.consolidation.ConsolidationIndex.query_many` call
and answers duplicate concurrent loads once (closed form included) —
the coalescing the serving benchmark measures.  Every path that can
fail returns the same :mod:`repro.errors` exception the library call
would raise locally; the protocol layer turns it into a structured
error response.

Shutdown is a *drain*: stop accepting, finish every in-flight batched
request, then close.  ``serve_forever`` wires SIGTERM/SIGINT to the
drain, so ``kill <pid>`` loses no accepted request.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import pathlib
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Union

from repro import obs
from repro.core.closed_form import solve_closed_form
from repro.core.optimizer import JointOptimizer
from repro.errors import (
    ConfigurationError,
    ConstraintViolationError,
    InfeasibleError,
    ReproError,
    ServingUnavailableError,
)
from repro.obs.metrics import DEFAULT_HORIZONS, Histogram
from repro.obs.trace import RotatingTraceExporter
from repro.obs.watchdog import WatchdogSet, serving_monitors
from repro.serving.batcher import MicroBatcher
from repro.serving.protocol import (
    MAX_LINE_BYTES,
    OPS,
    PROTOCOL_VERSION,
    Request,
    decode_request,
    encode,
    error_response,
    ok_response,
    parse_request,
)
from repro.serving.telemetry import ServingTelemetry


def _recover_request_id(message: Any) -> Any:
    """Best-effort ``id`` extraction from an unparseable request.

    Echoing the id back (when the envelope was at least valid JSON)
    lets pipelined clients correlate the structured error with the
    request that caused it.
    """
    if isinstance(message, str):
        try:
            message = json.loads(message)
        except ValueError:
            return None
    if isinstance(message, Mapping):
        candidate = message.get("id")
        if isinstance(candidate, (str, int)) and not isinstance(
            candidate, bool
        ):
            return candidate
    return None


@dataclass
class ServingConfig:
    """Tunables of one :class:`AllocationServer`.

    Exactly one transport may be configured: ``socket_path`` (unix
    domain socket) or ``port`` (TCP on ``host``; port ``0`` binds an
    ephemeral port, reported in :attr:`AllocationServer.address`).
    With neither, the server is in-process only — :meth:`AllocationServer.handle`
    still works, which is how the load generator drives it.

    ``batch_window`` is the micro-batching lever (see
    ``docs/serving.md`` for tuning guidance): the seconds the first
    request of a batch waits for concurrent company.  ``batching=False``
    keeps the identical queue/dispatch machinery but forces singleton
    batches — the benchmark baseline.

    ``telemetry_window`` bounds the windowed metrics the ``telemetry``
    op reports; ``trace_path`` turns on the rotating on-disk span
    exporter.  The ``slo_*`` thresholds are each optional — only the
    ones given become live SLO monitors (see
    :func:`repro.obs.watchdog.serving_monitors`), evaluated every
    watchdog tick over ``slo_horizon`` seconds with the usual
    ``warn``/``raise`` policy.
    """

    socket_path: Optional[Union[str, pathlib.Path]] = None
    host: str = "127.0.0.1"
    port: Optional[int] = None
    batch_window: float = 0.005
    max_batch: int = 512
    batching: bool = True
    drain_grace: float = 10.0
    watchdog_interval: float = 0.25
    stall_threshold: float = 0.25
    telemetry_window: float = 300.0
    trace_path: Optional[Union[str, pathlib.Path]] = None
    trace_max_bytes: int = 1_000_000
    trace_keep_files: int = 3
    slo_p99_ms: Optional[float] = None
    slo_queue_depth: Optional[int] = None
    slo_error_rate: Optional[float] = None
    slo_max_loop_lag: Optional[float] = None
    slo_horizon: float = 60.0
    slo_policy: str = "warn"

    def __post_init__(self) -> None:
        if self.socket_path is not None and self.port is not None:
            raise ConfigurationError(
                "configure either socket_path or port, not both"
            )
        if self.batch_window < 0.0:
            raise ConfigurationError(
                f"batch_window must be non-negative, got {self.batch_window}"
            )
        if self.max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be at least 1, got {self.max_batch}"
            )
        if self.drain_grace <= 0.0:
            raise ConfigurationError(
                f"drain_grace must be positive, got {self.drain_grace}"
            )
        if self.watchdog_interval <= 0.0 or self.stall_threshold <= 0.0:
            raise ConfigurationError(
                "watchdog_interval and stall_threshold must be positive"
            )
        if self.telemetry_window <= 0.0:
            raise ConfigurationError(
                f"telemetry_window must be positive, "
                f"got {self.telemetry_window}"
            )
        if self.trace_max_bytes < 1 or self.trace_keep_files < 1:
            raise ConfigurationError(
                "trace_max_bytes and trace_keep_files must be positive"
            )
        if not 0.0 < self.slo_horizon <= self.telemetry_window:
            raise ConfigurationError(
                f"slo_horizon must be in (0, telemetry_window="
                f"{self.telemetry_window}], got {self.slo_horizon}"
            )
        if self.slo_policy not in ("warn", "raise"):
            raise ConfigurationError(
                f"unknown slo_policy {self.slo_policy!r} "
                "(expected 'warn' or 'raise')"
            )


class AllocationServer:
    """Serve joint allocation queries from a warm in-memory index."""

    def __init__(
        self,
        optimizer: JointOptimizer,
        config: Optional[ServingConfig] = None,
    ) -> None:
        self.optimizer = optimizer
        self.config = config or ServingConfig()
        exporter = None
        if self.config.trace_path is not None:
            exporter = RotatingTraceExporter(
                self.config.trace_path,
                max_bytes=self.config.trace_max_bytes,
                keep_files=self.config.trace_keep_files,
            )
        window = self.config.telemetry_window
        horizons = tuple(
            h for h in DEFAULT_HORIZONS if h <= window
        ) or (window,)
        #: The windowed metrics + span store behind ``telemetry``/``trace``.
        self.telemetry = ServingTelemetry(
            window=window, horizons=horizons, exporter=exporter
        )
        slo = serving_monitors(
            target_p99_ms=self.config.slo_p99_ms,
            max_queue_depth=self.config.slo_queue_depth,
            max_error_rate=self.config.slo_error_rate,
            max_loop_lag_seconds=self.config.slo_max_loop_lag,
            horizon=self.config.slo_horizon,
        )
        #: SLO watchdog — built only when a threshold is configured, so
        #: an unconfigured daemon runs zero checks (and zero warnings).
        self._slo_watchdog: Optional[WatchdogSet] = (
            WatchdogSet(slo, policy=self.config.slo_policy) if slo else None
        )
        #: Message of the violation that tripped a ``raise`` SLO policy
        #: (the watchdog loop fail-stops its checks and surfaces it here).
        self.slo_failure: Optional[str] = None
        self._batcher = MicroBatcher(
            self._dispatch,
            batch_window=self.config.batch_window,
            max_batch=self.config.max_batch,
            batching=self.config.batching,
            on_batch=self.telemetry.observe_batch,
        )
        #: Per-op end-to-end latency (includes batching wait), seconds.
        self.latency: dict[str, Histogram] = {
            op: Histogram(f"serving.latency.{op}") for op in OPS
        }
        self.requests: dict[str, int] = {}
        self.errors: dict[str, int] = {}
        self.invalid_requests = 0
        self.coalesced = 0
        self.stalls = 0
        self.max_loop_lag = 0.0
        self.index_statuses = 0
        self.index_cache_key: Optional[str] = None
        #: Open request spans by ``trace_id`` (loop thread writes,
        #: compute thread annotates): ``{trace_id: (span, enqueued_at)}``.
        self._trace_pending: dict[int, tuple] = {}
        #: ``("unix", path)`` or ``("tcp", host, port)`` once bound.
        self.address: Optional[tuple] = None
        self._inflight = 0
        self._started = False
        self._draining = False
        self._started_at = 0.0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._asyncio_server: Optional[asyncio.AbstractServer] = None
        self._watchdog_task: Optional[asyncio.Task] = None
        self._drained_event: Optional[asyncio.Event] = None
        self._writers: set = set()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def _warm_start(self) -> None:
        """Force the index build (or ``.npz`` cache load) before the
        first request, so no client pays the O(n^3 log n) cold start."""
        with obs.timed("serving/warm_start"):
            index = self.optimizer.query_index
        self.index_statuses = index.status_count
        self.index_cache_key = getattr(index, "cache_key", None)

    async def start(self) -> None:
        """Warm the index, start the batcher/watchdog, bind transports."""
        if self._started:
            raise ConfigurationError("server is already started")
        self._started = True
        self._loop = asyncio.get_running_loop()
        self._drained_event = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        # Warm on the compute thread: the loop (and any already-bound
        # signal handling) stays responsive during a long cold build.
        await self._loop.run_in_executor(self._executor, self._warm_start)
        self._batcher.start()
        self._watchdog_task = asyncio.create_task(
            self._watchdog_loop(), name="repro-serve-watchdog"
        )
        if self.config.socket_path is not None:
            path = str(self.config.socket_path)
            with contextlib.suppress(OSError):
                os.unlink(path)  # stale socket from a killed process
            self._asyncio_server = await asyncio.start_unix_server(
                self._serve_connection, path=path, limit=MAX_LINE_BYTES
            )
            self.address = ("unix", path)
        elif self.config.port is not None:
            self._asyncio_server = await asyncio.start_server(
                self._serve_connection,
                host=self.config.host,
                port=self.config.port,
                limit=MAX_LINE_BYTES,
            )
            bound = self._asyncio_server.sockets[0].getsockname()
            self.address = ("tcp", self.config.host, int(bound[1]))
        self._started_at = time.monotonic()

    async def drain(self) -> None:
        """Graceful shutdown: reject new work, finish in-flight work.

        Idempotent; concurrent callers all wait for the single drain to
        complete.  Order matters: close the listeners first (no new
        connections), flip the draining flag (new requests on live
        connections get :class:`~repro.errors.ServingUnavailableError`),
        then drain the batcher so every already-accepted request
        resolves before the compute thread shuts down.
        """
        if self._drained_event is None:
            return
        if self._draining:
            await self._drained_event.wait()
            return
        self._draining = True
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
        await self._batcher.drain()
        deadline = self._loop.time() + self.config.drain_grace
        while self._inflight > 0 and self._loop.time() < deadline:
            await asyncio.sleep(0.005)
        if self._watchdog_task is not None:
            self._watchdog_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._watchdog_task
        # Final span flush: anything closed since the last watchdog
        # tick still reaches the rotating exporter before shutdown.
        self.telemetry.flush()
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                writer.close()
        if self.address is not None and self.address[0] == "unix":
            with contextlib.suppress(OSError):
                os.unlink(self.address[1])
        self._drained_event.set()

    async def serve_forever(self, handle_signals: bool = True) -> None:
        """Run until SIGTERM/SIGINT, then drain — the daemon main loop."""
        if not self._started:
            await self.start()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        installed = []
        if handle_signals:
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, stop.set)
                    installed.append(sig)
                except (NotImplementedError, RuntimeError):
                    pass  # non-main thread or unsupported platform
        try:
            await stop.wait()
        finally:
            # Keep the handlers installed until the drain finishes: a
            # repeated SIGINT mid-drain (shells and process supervisors
            # often signal the whole group) must not abort the graceful
            # shutdown with a KeyboardInterrupt.
            try:
                await self.drain()
            finally:
                for sig in installed:
                    loop.remove_signal_handler(sig)

    async def _watchdog_loop(self) -> None:
        """Self-check heartbeat: event-loop lag and queue depth.

        A sleep that oversleeps by more than ``stall_threshold`` means
        the loop was blocked (a compute leak onto the loop thread, or a
        starved host) — counted as a stall and recorded as a trace
        event so post-mortems can line it up with the request timeline.

        Each tick also feeds the windowed telemetry (queue depth, loop
        lag), evaluates the configured SLO monitors, and flushes closed
        spans to the rotating exporter — keeping every byte of disk I/O
        and every SLO evaluation off the request path.  Under the
        ``raise`` policy the first violation fail-stops further SLO
        checks and is surfaced in ``stats()["slo"]["failure"]`` (the
        daemon keeps serving; a background task has no caller to raise
        into).
        """
        interval = self.config.watchdog_interval
        loop = asyncio.get_running_loop()
        while True:
            before = loop.time()
            await asyncio.sleep(interval)
            lag = loop.time() - before - interval
            if lag > self.max_loop_lag:
                self.max_loop_lag = lag
            if lag > self.config.stall_threshold:
                self.stalls += 1
                obs.count("serving.watchdog_stalls")
                obs.add_event(
                    "serving.stall",
                    lag_seconds=round(lag, 6),
                    queue_depth=self._batcher.depth,
                    inflight=self._inflight,
                )
            obs.set_gauge("serving.queue_depth", self._batcher.depth)
            obs.set_gauge("serving.inflight", self._inflight)
            self.telemetry.observe_queue_depth(self._batcher.depth)
            self.telemetry.observe_loop_lag(max(lag, 0.0))
            self._check_slo()
            self.telemetry.flush()

    def _check_slo(self) -> None:
        """One SLO evaluation pass (called from the watchdog tick)."""
        if self._slo_watchdog is None or self.slo_failure is not None:
            return
        try:
            violations = self._slo_watchdog.check_serving(self.telemetry)
        except ConstraintViolationError as exc:
            # raise policy: the violation is already recorded on the
            # watchdog set; mirror it into telemetry and fail-stop.
            if self._slo_watchdog.violations:
                self.telemetry.record_violation(
                    self._slo_watchdog.violations[-1]
                )
            self.slo_failure = str(exc)
            obs.count("serving.slo_failures")
            return
        for violation in violations:
            self.telemetry.record_violation(violation)

    # ------------------------------------------------------------------ #
    # Request handling
    # ------------------------------------------------------------------ #

    async def handle(self, message: Any) -> dict:
        """Answer one request (wire line, JSON payload, or Request).

        Always returns a response envelope — library errors become
        structured error responses, never exceptions, so one bad
        request cannot take down a connection (or the caller's task).
        """
        t0 = time.perf_counter()
        try:
            if isinstance(message, Request):
                request = message
            elif isinstance(message, str):
                request = decode_request(message)
            else:
                request = parse_request(message)
        except ConfigurationError as exc:
            self.invalid_requests += 1
            obs.count("serving.invalid_requests")
            return error_response(_recover_request_id(message), exc)
        op = request.op
        self.requests[op] = self.requests.get(op, 0) + 1
        span = None
        ok = True
        try:
            if self._draining and op not in (
                "ping", "stats", "telemetry", "trace"
            ):
                raise ServingUnavailableError(
                    "server is draining; retry against a healthy replica"
                )
            with obs.timed(f"serving/{op}"):
                if op == "ping":
                    result = {
                        "protocol": PROTOCOL_VERSION,
                        "status": "draining" if self._draining else "ok",
                        "machines": self.optimizer.model.node_count,
                    }
                elif op == "stats":
                    result = self.stats()
                elif op == "telemetry":
                    result = self.telemetry_payload(request.format)
                elif op == "trace":
                    result = self.telemetry.trace_tail(request.limit)
                else:
                    if request.trace_id is not None:
                        span = self.telemetry.start_span(
                            "serving.request",
                            op=op,
                            trace_id=request.trace_id,
                            request_id=request.id,
                        )
                        self._trace_pending[request.trace_id] = (
                            span, time.perf_counter(),
                        )
                    self._inflight += 1
                    try:
                        result = await self._batcher.submit(request)
                    finally:
                        self._inflight -= 1
                        if request.trace_id is not None:
                            self._trace_pending.pop(request.trace_id, None)
            response = ok_response(request.id, result)
        except ReproError as exc:
            ok = False
            self.errors[op] = self.errors.get(op, 0) + 1
            obs.count("serving.errors")
            response = error_response(request.id, exc)
        elapsed = time.perf_counter() - t0
        self.latency[op].observe(elapsed)
        self.telemetry.observe_request(op, elapsed, error=not ok)
        if span is not None:
            self.telemetry.end_span(span, ok=ok)
        return response

    async def _serve_connection(self, reader, writer) -> None:
        """One JSON-lines connection: requests in, envelopes out."""
        self._writers.add(writer)
        obs.count("serving.connections")
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Oversized line: the buffer can no longer be
                    # trusted to frame requests — answer and hang up.
                    writer.write(encode(error_response(
                        None,
                        ConfigurationError(
                            f"request line exceeds {MAX_LINE_BYTES} bytes"
                        ),
                    )))
                    await writer.drain()
                    break
                if not line:
                    break
                text = line.decode("utf-8", errors="replace")
                if not text.strip():
                    continue
                writer.write(encode(await self.handle(text)))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()

    # ------------------------------------------------------------------ #
    # Batched compute (runs on the single compute thread)
    # ------------------------------------------------------------------ #

    async def _dispatch(self, batch: list[Request]) -> list:
        return await self._loop.run_in_executor(
            self._executor, self._compute_batch, batch
        )

    def _compute_batch(self, requests: list[Request]) -> list:
        """One outcome (result dict or exception) per request.

        Opens one ``serving.batch`` span carrying the ``trace_id`` of
        every request it serves, and annotates each request's still-open
        span with the batch link plus its wait/compute split — the
        linkage the ``trace`` op exposes.
        """
        t_compute = time.perf_counter()
        trace_ids = [
            r.trace_id for r in requests if r.trace_id is not None
        ]
        batch_span = self.telemetry.start_span(
            "serving.batch", batch=len(requests), trace_ids=trace_ids
        )
        for request in requests:
            pending = self._trace_pending.get(request.trace_id)
            if pending is not None:
                self.telemetry.annotate(
                    pending[0],
                    batch_span_id=batch_span.span_id,
                    wait_seconds=t_compute - pending[1],
                )
        with obs.timed("serving/batch"):
            outcomes: list = [None] * len(requests)
            grouped = []
            for i, request in enumerate(requests):
                if (
                    request.op == "allocate"
                    and not request.exclude
                    and self.optimizer.selection == "index"
                ):
                    grouped.append(i)
                else:
                    outcomes[i] = self._compute_single(request)
            if grouped:
                self._compute_grouped_allocations(
                    requests, grouped, outcomes, batch_span=batch_span
                )
            obs.set_span_attributes(
                batch=len(requests), grouped=len(grouped)
            )
        compute_seconds = time.perf_counter() - t_compute
        for request in requests:
            pending = self._trace_pending.get(request.trace_id)
            if pending is not None:
                self.telemetry.annotate(
                    pending[0], compute_seconds=compute_seconds
                )
        self.telemetry.end_span(batch_span, grouped=len(grouped))
        return outcomes

    def _compute_single(self, request: Request):
        """The ungrouped fallback: exactly the library call, per request."""
        try:
            if request.op == "allocate":
                result = self.optimizer.solve(
                    request.load,
                    exclude=list(request.exclude) or None,
                )
                return self._allocation_payload(result.solution, result.method)
            if request.op == "maxL":
                max_load, result = self.optimizer.max_load_under_budget(
                    request.budget
                )
                return {
                    "max_load": float(max_load),
                    "allocation": self._allocation_payload(
                        result.solution, result.method
                    ),
                }
            if request.op == "what-if":
                return self._what_if(request)
        except ReproError as exc:
            return exc
        return ConfigurationError(f"unserveable op {request.op!r}")

    def _compute_grouped_allocations(
        self,
        requests: list[Request],
        grouped: list[int],
        outcomes: list,
        batch_span=None,
    ) -> None:
        """All plain ``allocate`` ops of a batch in one index pass.

        Duplicate loads share one answer — ON set *and* closed form —
        which is the serving-level coalescing win on top of
        ``query_many``'s internal dedup.  Guards mirror
        :meth:`JointOptimizer.select_on_set` so a batched request fails
        with exactly the error its unbatched twin would raise.
        """
        capacity = float(sum(self.optimizer.model.capacities))
        positions, loads = [], []
        for i in grouped:
            load = requests[i].load
            if load <= 0.0:
                outcomes[i] = ConfigurationError(
                    "total load must be positive to select machines, "
                    f"got {load}"
                )
            else:
                positions.append(i)
                loads.append(load)
        if not positions:
            return
        query_span = self.telemetry.start_span(
            "serving.query_many", parent=batch_span, loads=len(loads)
        )
        on_sets = self.optimizer.query_index.query_many(
            loads, skip_infeasible=True
        )
        self.telemetry.end_span(query_span)
        shared: dict[float, Any] = {}
        coalesced = 0
        for i, load, chosen in zip(positions, loads, on_sets):
            if load in shared:
                outcomes[i] = shared[load]
                coalesced += 1
                continue
            if chosen is None:
                outcome: Any = InfeasibleError(
                    f"load {load:.3f} exceeds capacity {capacity:.3f}"
                )
            else:
                try:
                    solution = solve_closed_form(
                        self.optimizer.model, chosen, load
                    )
                    outcome = self._allocation_payload(solution, "index")
                except ReproError as exc:
                    outcome = exc
            shared[load] = outcome
            outcomes[i] = outcome
        if coalesced:
            self.coalesced += coalesced
            obs.count("serving.coalesced", coalesced)

    def _allocation_payload(self, solution, method: str) -> dict:
        return {
            "method": method,
            "on_ids": [int(i) for i in solution.on_ids],
            "machines_on": len(solution.on_ids),
            "t_ac": float(solution.t_ac),
            "t_sp": float(solution.t_sp),
            "loads": {
                str(int(i)): float(solution.loads[i])
                for i in solution.on_ids
            },
            "predicted_total_power": float(solution.predicted_total_power),
            "clamped": bool(solution.clamped),
            "repaired": bool(solution.repaired),
        }

    def _what_if(self, request: Request) -> dict:
        """A lookahead horizon, scored in one batched pass."""
        model = self.optimizer.model

        def feasible_entry(load: float, solution) -> dict:
            return {
                "load": float(load),
                "feasible": True,
                "machines_on": len(solution.on_ids),
                "t_sp": float(solution.t_sp),
                "predicted_total_power": float(
                    solution.predicted_total_power
                ),
            }

        def infeasible_entry(load: float, exc: Exception) -> dict:
            return {"load": float(load), "feasible": False,
                    "error": str(exc)}

        entries: list[dict] = []
        if request.on_ids is not None:
            # Pinned configuration: score the horizon against it.
            for load in request.loads:
                try:
                    solution = solve_closed_form(
                        model, list(request.on_ids), load
                    )
                    entries.append(feasible_entry(load, solution))
                except ReproError as exc:
                    entries.append(infeasible_entry(load, exc))
        elif self.optimizer.selection == "index":
            shared: dict[float, dict] = {}
            valid = [
                (k, load)
                for k, load in enumerate(request.loads)
                if load > 0.0
            ]
            slots: dict[int, dict] = {}
            for k, load in enumerate(request.loads):
                if load <= 0.0:
                    slots[k] = infeasible_entry(
                        load, ConfigurationError("load must be positive")
                    )
            on_sets = self.optimizer.query_index.query_many(
                [load for _, load in valid], skip_infeasible=True
            )
            for (k, load), chosen in zip(valid, on_sets):
                if load in shared:
                    slots[k] = shared[load]
                    continue
                if chosen is None:
                    entry = infeasible_entry(
                        load,
                        InfeasibleError(f"no subset can serve {load:.3f}"),
                    )
                else:
                    try:
                        entry = feasible_entry(
                            load, solve_closed_form(model, chosen, load)
                        )
                    except ReproError as exc:
                        entry = infeasible_entry(load, exc)
                shared[load] = entry
                slots[k] = entry
            entries = [slots[k] for k in range(len(request.loads))]
        else:
            for load in request.loads:
                try:
                    result = self.optimizer.solve(load)
                    entries.append(feasible_entry(load, result.solution))
                except ReproError as exc:
                    entries.append(infeasible_entry(load, exc))
        return {"count": len(entries), "entries": entries}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        """JSON-safe metrics snapshot (the ``stats`` op's result)."""
        batcher = self._batcher
        latency = {}
        for op, hist in self.latency.items():
            if hist.count:
                latency[op] = {
                    "count": hist.count,
                    "mean_ms": hist.mean * 1e3,
                    "p50_ms": hist.percentile(50.0) * 1e3,
                    "p99_ms": hist.percentile(99.0) * 1e3,
                }
        return {
            "protocol": PROTOCOL_VERSION,
            "batching": self.config.batching,
            "batch_window_seconds": self.config.batch_window,
            "max_batch": self.config.max_batch,
            "draining": self._draining,
            "uptime_seconds": (
                time.monotonic() - self._started_at if self._started else 0.0
            ),
            "machines": self.optimizer.model.node_count,
            "index_statuses": self.index_statuses,
            "cache_key": self.index_cache_key,
            "requests": dict(self.requests),
            "errors": dict(self.errors),
            "invalid_requests": self.invalid_requests,
            "inflight": self._inflight,
            "queue_depth": batcher.depth,
            "batches": batcher.batches,
            "mean_batch_size": batcher.mean_batch_size,
            "max_batch_size": max(batcher.batch_sizes, default=0),
            "batch_size_histogram": {
                str(size): count
                for size, count in sorted(batcher.batch_sizes.items())
            },
            "coalesced": self.coalesced,
            "latency": latency,
            "watchdog": {
                "stalls": self.stalls,
                "max_loop_lag_seconds": round(self.max_loop_lag, 6),
                "interval_seconds": self.config.watchdog_interval,
            },
            "slo": {
                "configured": self._slo_watchdog is not None,
                "policy": self.config.slo_policy,
                "horizon_seconds": self.config.slo_horizon,
                "violations": dict(self.telemetry.violation_counts),
                "worst_headroom": dict(
                    sorted(self.telemetry.worst_headroom.items())
                ),
                "failure": self.slo_failure,
            },
        }

    def telemetry_payload(self, format: Optional[str] = None) -> dict:
        """The ``telemetry`` op's result: windowed JSON or Prometheus.

        The default JSON form is :meth:`ServingTelemetry.snapshot` plus
        the protocol/uptime stamps; ``format="prometheus"`` renders the
        same state as text exposition (v0.0.4) wrapped in an envelope
        carrying the scrape ``content_type``.
        """
        if format == "prometheus":
            return {
                "content_type": "text/plain; version=0.0.4",
                "text": obs.render_prometheus(self.prometheus_families()),
            }
        payload = self.telemetry.snapshot()
        payload["protocol"] = PROTOCOL_VERSION
        payload["uptime_seconds"] = (
            time.monotonic() - self._started_at if self._started else 0.0
        )
        payload["slo"]["configured"] = self._slo_watchdog is not None
        payload["slo"]["policy"] = self.config.slo_policy
        payload["slo"]["failure"] = self.slo_failure
        return payload

    def prometheus_families(self) -> list[dict]:
        """The daemon's metrics as Prometheus metric families.

        Lifetime totals export as counters, point-in-time state as
        gauges, and the windowed views as gauges labelled by horizon
        (``window="10"`` means "over the last 10 seconds") — the shape
        :func:`repro.obs.export.render_prometheus` renders and the CI
        smoke job validates.
        """
        snap = self.telemetry.snapshot()
        families: list[dict] = []

        def family(name, kind, help_text, samples):
            families.append({
                "name": name, "type": kind, "help": help_text,
                "samples": samples,
            })

        family(
            "repro_serving_uptime_seconds", "gauge",
            "Seconds since the daemon finished starting.",
            [{"value": (
                time.monotonic() - self._started_at
                if self._started else 0.0
            )}],
        )
        family(
            "repro_serving_requests_total", "counter",
            "Requests handled since boot, by op.",
            [{"labels": {"op": op}, "value": count}
             for op, count in sorted(self.requests.items())],
        )
        family(
            "repro_serving_errors_total", "counter",
            "Structured error responses since boot, by op.",
            [{"labels": {"op": op}, "value": count}
             for op, count in sorted(self.errors.items())],
        )
        family(
            "repro_serving_invalid_requests_total", "counter",
            "Requests rejected before dispatch (bad JSON or shape).",
            [{"value": self.invalid_requests}],
        )
        family(
            "repro_serving_inflight", "gauge",
            "Requests currently being served.",
            [{"value": self._inflight}],
        )
        family(
            "repro_serving_queue_depth", "gauge",
            "Requests waiting in the micro-batcher queue.",
            [{"value": self._batcher.depth}],
        )
        family(
            "repro_serving_batches_total", "counter",
            "Batches dispatched to the compute thread since boot.",
            [{"value": self._batcher.batches}],
        )
        family(
            "repro_serving_coalesced_total", "counter",
            "Duplicate in-batch loads answered from a shared solve.",
            [{"value": self.coalesced}],
        )
        family(
            "repro_serving_watchdog_stalls_total", "counter",
            "Event-loop stalls beyond the configured threshold.",
            [{"value": self.stalls}],
        )
        family(
            "repro_serving_request_rate", "gauge",
            "Requests per second over the labelled window (seconds).",
            [{"labels": {"window": h}, "value": entry["rate"]}
             for h, entry in snap["requests"].items()],
        )
        family(
            "repro_serving_error_rate", "gauge",
            "Errors per second over the labelled window (seconds).",
            [{"labels": {"window": h}, "value": entry["rate"]}
             for h, entry in snap["errors"].items()],
        )
        family(
            "repro_serving_latency_ms", "gauge",
            "Request latency quantiles over the labelled window.",
            [{"labels": {"window": h, "quantile": q}, "value": entry[key]}
             for h, entry in snap["latency_ms"].items()
             for q, key in (("0.5", "p50"), ("0.99", "p99"))],
        )
        family(
            "repro_serving_batch_size_mean", "gauge",
            "Mean dispatched batch size over the labelled window.",
            [{"labels": {"window": h}, "value": entry["mean"]}
             for h, entry in snap["batch_size"].items()],
        )
        family(
            "repro_serving_queue_depth_max", "gauge",
            "Peak sampled queue depth over the labelled window.",
            [{"labels": {"window": h}, "value": entry["max"]}
             for h, entry in snap["queue_depth"].items()],
        )
        family(
            "repro_serving_slo_violations_total", "counter",
            "SLO violations recorded since boot, by monitor.",
            [{"labels": {"monitor": monitor}, "value": count}
             for monitor, count in sorted(
                 self.telemetry.violation_counts.items()
             )],
        )
        family(
            "repro_serving_slo_headroom", "gauge",
            "Worst observed SLO headroom, by metric (negative = burned).",
            [{"labels": {"metric": metric}, "value": worst}
             for metric, worst in sorted(
                 self.telemetry.worst_headroom.items()
             )],
        )
        return families


@contextlib.contextmanager
def background_server(
    optimizer: JointOptimizer,
    config: Optional[ServingConfig] = None,
    start_timeout: float = 120.0,
):
    """Run an :class:`AllocationServer` on a daemon thread.

    The docs-and-tests convenience: starts the server's own event loop
    on a background thread, yields the started server (``.address``
    holds the bound transport), and drains it on exit — so examples and
    tests can talk to a real socket without managing asyncio.
    """
    server = AllocationServer(optimizer, config)
    ready = threading.Event()
    state: dict = {}

    async def _main() -> None:
        try:
            await server.start()
        except BaseException as exc:  # noqa: BLE001 — surfaced to caller
            state["error"] = exc
            ready.set()
            return
        state["loop"] = asyncio.get_running_loop()
        ready.set()
        await server._drained_event.wait()

    thread = threading.Thread(
        target=lambda: asyncio.run(_main()),
        name="repro-serve-loop",
        daemon=True,
    )
    thread.start()
    if not ready.wait(start_timeout):
        raise ConfigurationError(
            f"serving daemon did not start within {start_timeout}s"
        )
    if "error" in state:
        raise state["error"]
    try:
        yield server
    finally:
        future = asyncio.run_coroutine_threadsafe(
            server.drain(), state["loop"]
        )
        with contextlib.suppress(Exception):
            future.result(timeout=server.config.drain_grace + 30.0)
        thread.join(timeout=30.0)
