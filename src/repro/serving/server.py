"""The allocation-serving daemon: a warm index behind an asyncio loop.

:class:`AllocationServer` turns the batch library into an online
system: it warm-starts a :class:`~repro.core.consolidation.ConsolidationIndex`
(from the persistent ``.npz`` cache when the optimizer has an
``index_cache_dir``), listens on a unix socket or TCP, and answers the
protocol's ``allocate`` / ``maxL`` / ``what-if`` queries.

Concurrency model — one event loop, one compute thread:

- The loop owns all I/O (connections, the :class:`MicroBatcher`
  collection window, the watchdog).
- All numeric work runs on a single-worker ``ThreadPoolExecutor``, so
  the loop keeps collecting the *next* batch while the current one
  computes, and the (non-thread-safe) index caches are only ever
  touched from one thread.

Batched ``allocate`` dispatch groups the batch's loads into one
:meth:`~repro.core.consolidation.ConsolidationIndex.query_many` call
and answers duplicate concurrent loads once (closed form included) —
the coalescing the serving benchmark measures.  Every path that can
fail returns the same :mod:`repro.errors` exception the library call
would raise locally; the protocol layer turns it into a structured
error response.

Shutdown is a *drain*: stop accepting, finish every in-flight batched
request, then close.  ``serve_forever`` wires SIGTERM/SIGINT to the
drain, so ``kill <pid>`` loses no accepted request.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import pathlib
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Mapping, Optional, Union

from repro import obs
from repro.core.closed_form import solve_closed_form
from repro.core.optimizer import JointOptimizer
from repro.errors import (
    ConfigurationError,
    InfeasibleError,
    ReproError,
    ServingUnavailableError,
)
from repro.obs.metrics import Histogram
from repro.serving.batcher import MicroBatcher
from repro.serving.protocol import (
    MAX_LINE_BYTES,
    OPS,
    PROTOCOL_VERSION,
    Request,
    decode_request,
    encode,
    error_response,
    ok_response,
    parse_request,
)


def _recover_request_id(message: Any) -> Any:
    """Best-effort ``id`` extraction from an unparseable request.

    Echoing the id back (when the envelope was at least valid JSON)
    lets pipelined clients correlate the structured error with the
    request that caused it.
    """
    if isinstance(message, str):
        try:
            message = json.loads(message)
        except ValueError:
            return None
    if isinstance(message, Mapping):
        candidate = message.get("id")
        if isinstance(candidate, (str, int)) and not isinstance(
            candidate, bool
        ):
            return candidate
    return None


@dataclass
class ServingConfig:
    """Tunables of one :class:`AllocationServer`.

    Exactly one transport may be configured: ``socket_path`` (unix
    domain socket) or ``port`` (TCP on ``host``; port ``0`` binds an
    ephemeral port, reported in :attr:`AllocationServer.address`).
    With neither, the server is in-process only — :meth:`AllocationServer.handle`
    still works, which is how the load generator drives it.

    ``batch_window`` is the micro-batching lever (see
    ``docs/serving.md`` for tuning guidance): the seconds the first
    request of a batch waits for concurrent company.  ``batching=False``
    keeps the identical queue/dispatch machinery but forces singleton
    batches — the benchmark baseline.
    """

    socket_path: Optional[Union[str, pathlib.Path]] = None
    host: str = "127.0.0.1"
    port: Optional[int] = None
    batch_window: float = 0.005
    max_batch: int = 512
    batching: bool = True
    drain_grace: float = 10.0
    watchdog_interval: float = 0.25
    stall_threshold: float = 0.25

    def __post_init__(self) -> None:
        if self.socket_path is not None and self.port is not None:
            raise ConfigurationError(
                "configure either socket_path or port, not both"
            )
        if self.batch_window < 0.0:
            raise ConfigurationError(
                f"batch_window must be non-negative, got {self.batch_window}"
            )
        if self.max_batch < 1:
            raise ConfigurationError(
                f"max_batch must be at least 1, got {self.max_batch}"
            )
        if self.drain_grace <= 0.0:
            raise ConfigurationError(
                f"drain_grace must be positive, got {self.drain_grace}"
            )
        if self.watchdog_interval <= 0.0 or self.stall_threshold <= 0.0:
            raise ConfigurationError(
                "watchdog_interval and stall_threshold must be positive"
            )


class AllocationServer:
    """Serve joint allocation queries from a warm in-memory index."""

    def __init__(
        self,
        optimizer: JointOptimizer,
        config: Optional[ServingConfig] = None,
    ) -> None:
        self.optimizer = optimizer
        self.config = config or ServingConfig()
        self._batcher = MicroBatcher(
            self._dispatch,
            batch_window=self.config.batch_window,
            max_batch=self.config.max_batch,
            batching=self.config.batching,
        )
        #: Per-op end-to-end latency (includes batching wait), seconds.
        self.latency: dict[str, Histogram] = {
            op: Histogram(f"serving.latency.{op}") for op in OPS
        }
        self.requests: dict[str, int] = {}
        self.errors: dict[str, int] = {}
        self.invalid_requests = 0
        self.coalesced = 0
        self.stalls = 0
        self.max_loop_lag = 0.0
        self.index_statuses = 0
        #: ``("unix", path)`` or ``("tcp", host, port)`` once bound.
        self.address: Optional[tuple] = None
        self._inflight = 0
        self._started = False
        self._draining = False
        self._started_at = 0.0
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._executor: Optional[ThreadPoolExecutor] = None
        self._asyncio_server: Optional[asyncio.AbstractServer] = None
        self._watchdog_task: Optional[asyncio.Task] = None
        self._drained_event: Optional[asyncio.Event] = None
        self._writers: set = set()

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def _warm_start(self) -> None:
        """Force the index build (or ``.npz`` cache load) before the
        first request, so no client pays the O(n^3 log n) cold start."""
        with obs.timed("serving/warm_start"):
            index = self.optimizer.index
        self.index_statuses = index.status_count

    async def start(self) -> None:
        """Warm the index, start the batcher/watchdog, bind transports."""
        if self._started:
            raise ConfigurationError("server is already started")
        self._started = True
        self._loop = asyncio.get_running_loop()
        self._drained_event = asyncio.Event()
        self._executor = ThreadPoolExecutor(
            max_workers=1, thread_name_prefix="repro-serve"
        )
        # Warm on the compute thread: the loop (and any already-bound
        # signal handling) stays responsive during a long cold build.
        await self._loop.run_in_executor(self._executor, self._warm_start)
        self._batcher.start()
        self._watchdog_task = asyncio.create_task(
            self._watchdog_loop(), name="repro-serve-watchdog"
        )
        if self.config.socket_path is not None:
            path = str(self.config.socket_path)
            with contextlib.suppress(OSError):
                os.unlink(path)  # stale socket from a killed process
            self._asyncio_server = await asyncio.start_unix_server(
                self._serve_connection, path=path, limit=MAX_LINE_BYTES
            )
            self.address = ("unix", path)
        elif self.config.port is not None:
            self._asyncio_server = await asyncio.start_server(
                self._serve_connection,
                host=self.config.host,
                port=self.config.port,
                limit=MAX_LINE_BYTES,
            )
            bound = self._asyncio_server.sockets[0].getsockname()
            self.address = ("tcp", self.config.host, int(bound[1]))
        self._started_at = time.monotonic()

    async def drain(self) -> None:
        """Graceful shutdown: reject new work, finish in-flight work.

        Idempotent; concurrent callers all wait for the single drain to
        complete.  Order matters: close the listeners first (no new
        connections), flip the draining flag (new requests on live
        connections get :class:`~repro.errors.ServingUnavailableError`),
        then drain the batcher so every already-accepted request
        resolves before the compute thread shuts down.
        """
        if self._drained_event is None:
            return
        if self._draining:
            await self._drained_event.wait()
            return
        self._draining = True
        if self._asyncio_server is not None:
            self._asyncio_server.close()
            await self._asyncio_server.wait_closed()
        await self._batcher.drain()
        deadline = self._loop.time() + self.config.drain_grace
        while self._inflight > 0 and self._loop.time() < deadline:
            await asyncio.sleep(0.005)
        if self._watchdog_task is not None:
            self._watchdog_task.cancel()
            with contextlib.suppress(asyncio.CancelledError):
                await self._watchdog_task
        if self._executor is not None:
            self._executor.shutdown(wait=True)
        for writer in list(self._writers):
            with contextlib.suppress(Exception):
                writer.close()
        if self.address is not None and self.address[0] == "unix":
            with contextlib.suppress(OSError):
                os.unlink(self.address[1])
        self._drained_event.set()

    async def serve_forever(self, handle_signals: bool = True) -> None:
        """Run until SIGTERM/SIGINT, then drain — the daemon main loop."""
        if not self._started:
            await self.start()
        loop = asyncio.get_running_loop()
        stop = asyncio.Event()
        installed = []
        if handle_signals:
            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    loop.add_signal_handler(sig, stop.set)
                    installed.append(sig)
                except (NotImplementedError, RuntimeError):
                    pass  # non-main thread or unsupported platform
        try:
            await stop.wait()
        finally:
            for sig in installed:
                loop.remove_signal_handler(sig)
            await self.drain()

    async def _watchdog_loop(self) -> None:
        """Self-check heartbeat: event-loop lag and queue depth.

        A sleep that oversleeps by more than ``stall_threshold`` means
        the loop was blocked (a compute leak onto the loop thread, or a
        starved host) — counted as a stall and recorded as a trace
        event so post-mortems can line it up with the request timeline.
        """
        interval = self.config.watchdog_interval
        loop = asyncio.get_running_loop()
        while True:
            before = loop.time()
            await asyncio.sleep(interval)
            lag = loop.time() - before - interval
            if lag > self.max_loop_lag:
                self.max_loop_lag = lag
            if lag > self.config.stall_threshold:
                self.stalls += 1
                obs.count("serving.watchdog_stalls")
                obs.add_event(
                    "serving.stall",
                    lag_seconds=round(lag, 6),
                    queue_depth=self._batcher.depth,
                    inflight=self._inflight,
                )
            obs.set_gauge("serving.queue_depth", self._batcher.depth)
            obs.set_gauge("serving.inflight", self._inflight)

    # ------------------------------------------------------------------ #
    # Request handling
    # ------------------------------------------------------------------ #

    async def handle(self, message: Any) -> dict:
        """Answer one request (wire line, JSON payload, or Request).

        Always returns a response envelope — library errors become
        structured error responses, never exceptions, so one bad
        request cannot take down a connection (or the caller's task).
        """
        t0 = time.perf_counter()
        try:
            if isinstance(message, Request):
                request = message
            elif isinstance(message, str):
                request = decode_request(message)
            else:
                request = parse_request(message)
        except ConfigurationError as exc:
            self.invalid_requests += 1
            obs.count("serving.invalid_requests")
            return error_response(_recover_request_id(message), exc)
        op = request.op
        self.requests[op] = self.requests.get(op, 0) + 1
        try:
            if self._draining and op not in ("ping", "stats"):
                raise ServingUnavailableError(
                    "server is draining; retry against a healthy replica"
                )
            with obs.timed(f"serving/{op}"):
                if op == "ping":
                    result = {
                        "protocol": PROTOCOL_VERSION,
                        "status": "draining" if self._draining else "ok",
                        "machines": self.optimizer.model.node_count,
                    }
                elif op == "stats":
                    result = self.stats()
                else:
                    self._inflight += 1
                    try:
                        result = await self._batcher.submit(request)
                    finally:
                        self._inflight -= 1
            response = ok_response(request.id, result)
        except ReproError as exc:
            self.errors[op] = self.errors.get(op, 0) + 1
            obs.count("serving.errors")
            response = error_response(request.id, exc)
        self.latency[op].observe(time.perf_counter() - t0)
        return response

    async def _serve_connection(self, reader, writer) -> None:
        """One JSON-lines connection: requests in, envelopes out."""
        self._writers.add(writer)
        obs.count("serving.connections")
        try:
            while True:
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    # Oversized line: the buffer can no longer be
                    # trusted to frame requests — answer and hang up.
                    writer.write(encode(error_response(
                        None,
                        ConfigurationError(
                            f"request line exceeds {MAX_LINE_BYTES} bytes"
                        ),
                    )))
                    await writer.drain()
                    break
                if not line:
                    break
                text = line.decode("utf-8", errors="replace")
                if not text.strip():
                    continue
                writer.write(encode(await self.handle(text)))
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            self._writers.discard(writer)
            with contextlib.suppress(Exception):
                writer.close()

    # ------------------------------------------------------------------ #
    # Batched compute (runs on the single compute thread)
    # ------------------------------------------------------------------ #

    async def _dispatch(self, batch: list[Request]) -> list:
        return await self._loop.run_in_executor(
            self._executor, self._compute_batch, batch
        )

    def _compute_batch(self, requests: list[Request]) -> list:
        """One outcome (result dict or exception) per request."""
        with obs.timed("serving/batch"):
            outcomes: list = [None] * len(requests)
            grouped = []
            for i, request in enumerate(requests):
                if (
                    request.op == "allocate"
                    and not request.exclude
                    and self.optimizer.selection == "index"
                ):
                    grouped.append(i)
                else:
                    outcomes[i] = self._compute_single(request)
            if grouped:
                self._compute_grouped_allocations(
                    requests, grouped, outcomes
                )
            obs.set_span_attributes(
                batch=len(requests), grouped=len(grouped)
            )
        return outcomes

    def _compute_single(self, request: Request):
        """The ungrouped fallback: exactly the library call, per request."""
        try:
            if request.op == "allocate":
                result = self.optimizer.solve(
                    request.load,
                    exclude=list(request.exclude) or None,
                )
                return self._allocation_payload(result.solution, result.method)
            if request.op == "maxL":
                max_load, result = self.optimizer.max_load_under_budget(
                    request.budget
                )
                return {
                    "max_load": float(max_load),
                    "allocation": self._allocation_payload(
                        result.solution, result.method
                    ),
                }
            if request.op == "what-if":
                return self._what_if(request)
        except ReproError as exc:
            return exc
        return ConfigurationError(f"unserveable op {request.op!r}")

    def _compute_grouped_allocations(
        self, requests: list[Request], grouped: list[int], outcomes: list
    ) -> None:
        """All plain ``allocate`` ops of a batch in one index pass.

        Duplicate loads share one answer — ON set *and* closed form —
        which is the serving-level coalescing win on top of
        ``query_many``'s internal dedup.  Guards mirror
        :meth:`JointOptimizer.select_on_set` so a batched request fails
        with exactly the error its unbatched twin would raise.
        """
        capacity = float(sum(self.optimizer.model.capacities))
        positions, loads = [], []
        for i in grouped:
            load = requests[i].load
            if load <= 0.0:
                outcomes[i] = ConfigurationError(
                    "total load must be positive to select machines, "
                    f"got {load}"
                )
            else:
                positions.append(i)
                loads.append(load)
        if not positions:
            return
        on_sets = self.optimizer.index.query_many(
            loads, skip_infeasible=True
        )
        shared: dict[float, Any] = {}
        coalesced = 0
        for i, load, chosen in zip(positions, loads, on_sets):
            if load in shared:
                outcomes[i] = shared[load]
                coalesced += 1
                continue
            if chosen is None:
                outcome: Any = InfeasibleError(
                    f"load {load:.3f} exceeds capacity {capacity:.3f}"
                )
            else:
                try:
                    solution = solve_closed_form(
                        self.optimizer.model, chosen, load
                    )
                    outcome = self._allocation_payload(solution, "index")
                except ReproError as exc:
                    outcome = exc
            shared[load] = outcome
            outcomes[i] = outcome
        if coalesced:
            self.coalesced += coalesced
            obs.count("serving.coalesced", coalesced)

    def _allocation_payload(self, solution, method: str) -> dict:
        return {
            "method": method,
            "on_ids": [int(i) for i in solution.on_ids],
            "machines_on": len(solution.on_ids),
            "t_ac": float(solution.t_ac),
            "t_sp": float(solution.t_sp),
            "loads": {
                str(int(i)): float(solution.loads[i])
                for i in solution.on_ids
            },
            "predicted_total_power": float(solution.predicted_total_power),
            "clamped": bool(solution.clamped),
            "repaired": bool(solution.repaired),
        }

    def _what_if(self, request: Request) -> dict:
        """A lookahead horizon, scored in one batched pass."""
        model = self.optimizer.model

        def feasible_entry(load: float, solution) -> dict:
            return {
                "load": float(load),
                "feasible": True,
                "machines_on": len(solution.on_ids),
                "t_sp": float(solution.t_sp),
                "predicted_total_power": float(
                    solution.predicted_total_power
                ),
            }

        def infeasible_entry(load: float, exc: Exception) -> dict:
            return {"load": float(load), "feasible": False,
                    "error": str(exc)}

        entries: list[dict] = []
        if request.on_ids is not None:
            # Pinned configuration: score the horizon against it.
            for load in request.loads:
                try:
                    solution = solve_closed_form(
                        model, list(request.on_ids), load
                    )
                    entries.append(feasible_entry(load, solution))
                except ReproError as exc:
                    entries.append(infeasible_entry(load, exc))
        elif self.optimizer.selection == "index":
            shared: dict[float, dict] = {}
            valid = [
                (k, load)
                for k, load in enumerate(request.loads)
                if load > 0.0
            ]
            slots: dict[int, dict] = {}
            for k, load in enumerate(request.loads):
                if load <= 0.0:
                    slots[k] = infeasible_entry(
                        load, ConfigurationError("load must be positive")
                    )
            on_sets = self.optimizer.index.query_many(
                [load for _, load in valid], skip_infeasible=True
            )
            for (k, load), chosen in zip(valid, on_sets):
                if load in shared:
                    slots[k] = shared[load]
                    continue
                if chosen is None:
                    entry = infeasible_entry(
                        load,
                        InfeasibleError(f"no subset can serve {load:.3f}"),
                    )
                else:
                    try:
                        entry = feasible_entry(
                            load, solve_closed_form(model, chosen, load)
                        )
                    except ReproError as exc:
                        entry = infeasible_entry(load, exc)
                shared[load] = entry
                slots[k] = entry
            entries = [slots[k] for k in range(len(request.loads))]
        else:
            for load in request.loads:
                try:
                    result = self.optimizer.solve(load)
                    entries.append(feasible_entry(load, result.solution))
                except ReproError as exc:
                    entries.append(infeasible_entry(load, exc))
        return {"count": len(entries), "entries": entries}

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    def stats(self) -> dict:
        """JSON-safe metrics snapshot (the ``stats`` op's result)."""
        batcher = self._batcher
        latency = {}
        for op, hist in self.latency.items():
            if hist.count:
                latency[op] = {
                    "count": hist.count,
                    "mean_ms": hist.mean * 1e3,
                    "p50_ms": hist.percentile(50.0) * 1e3,
                    "p99_ms": hist.percentile(99.0) * 1e3,
                }
        return {
            "protocol": PROTOCOL_VERSION,
            "batching": self.config.batching,
            "batch_window_seconds": self.config.batch_window,
            "max_batch": self.config.max_batch,
            "draining": self._draining,
            "uptime_seconds": (
                time.monotonic() - self._started_at if self._started else 0.0
            ),
            "machines": self.optimizer.model.node_count,
            "index_statuses": self.index_statuses,
            "requests": dict(self.requests),
            "errors": dict(self.errors),
            "invalid_requests": self.invalid_requests,
            "inflight": self._inflight,
            "queue_depth": batcher.depth,
            "batches": batcher.batches,
            "mean_batch_size": batcher.mean_batch_size,
            "max_batch_size": max(batcher.batch_sizes, default=0),
            "batch_size_histogram": {
                str(size): count
                for size, count in sorted(batcher.batch_sizes.items())
            },
            "coalesced": self.coalesced,
            "latency": latency,
            "watchdog": {
                "stalls": self.stalls,
                "max_loop_lag_seconds": round(self.max_loop_lag, 6),
                "interval_seconds": self.config.watchdog_interval,
            },
        }


@contextlib.contextmanager
def background_server(
    optimizer: JointOptimizer,
    config: Optional[ServingConfig] = None,
    start_timeout: float = 120.0,
):
    """Run an :class:`AllocationServer` on a daemon thread.

    The docs-and-tests convenience: starts the server's own event loop
    on a background thread, yields the started server (``.address``
    holds the bound transport), and drains it on exit — so examples and
    tests can talk to a real socket without managing asyncio.
    """
    server = AllocationServer(optimizer, config)
    ready = threading.Event()
    state: dict = {}

    async def _main() -> None:
        try:
            await server.start()
        except BaseException as exc:  # noqa: BLE001 — surfaced to caller
            state["error"] = exc
            ready.set()
            return
        state["loop"] = asyncio.get_running_loop()
        ready.set()
        await server._drained_event.wait()

    thread = threading.Thread(
        target=lambda: asyncio.run(_main()),
        name="repro-serve-loop",
        daemon=True,
    )
    thread.start()
    if not ready.wait(start_timeout):
        raise ConfigurationError(
            f"serving daemon did not start within {start_timeout}s"
        )
    if "error" in state:
        raise state["error"]
    try:
        yield server
    finally:
        future = asyncio.run_coroutine_threadsafe(
            server.drain(), state["loop"]
        )
        with contextlib.suppress(Exception):
            future.result(timeout=server.config.drain_grace + 30.0)
        thread.join(timeout=30.0)
