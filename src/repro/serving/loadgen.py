"""In-process load generator for the serving daemon.

Simulates N concurrent clients against an :class:`AllocationServer`
without sockets: every client is an asyncio task calling
:meth:`~repro.serving.server.AllocationServer.handle` directly, so the
measured difference between batched and unbatched runs is the queueing
and compute discipline — not TCP accept limits or client-side
scheduling noise.  This is how ``benchmarks/bench_serving.py`` reaches
100k concurrent clients on one core.

The workload is *telemetry-quantized*: offered loads are drawn from a
small set of discrete levels (:func:`quantized_loads`), the way a real
front end reports demand in rounded steps.  Quantization is what gives
micro-batching its coalescing surface — concurrent requests for the
same level are answered once per batch.
"""

from __future__ import annotations

import asyncio
import time
from dataclasses import dataclass

import numpy as np

from repro.core.optimizer import JointOptimizer
from repro.errors import ConfigurationError
from repro.serving.server import AllocationServer, ServingConfig


def quantized_loads(
    requests: int,
    capacity: float,
    levels: int = 48,
    low: float = 0.1,
    high: float = 0.8,
    seed: int = 0,
) -> list[float]:
    """``requests`` offered loads drawn from ``levels`` discrete steps.

    Levels are evenly spaced over ``[low, high] * capacity`` and drawn
    uniformly with a seeded generator, so runs are reproducible and the
    batched/unbatched comparison sees the identical request stream.
    """
    if requests < 1:
        raise ConfigurationError(f"requests must be positive, got {requests}")
    if levels < 1:
        raise ConfigurationError(f"levels must be positive, got {levels}")
    if not 0.0 < low < high <= 1.0:
        raise ConfigurationError(
            f"need 0 < low < high <= 1, got low={low} high={high}"
        )
    grid = np.linspace(low * capacity, high * capacity, levels)
    rng = np.random.default_rng(seed)
    return [float(v) for v in grid[rng.integers(0, levels, size=requests)]]


@dataclass(frozen=True)
class LoadgenReport:
    """One load-generation run, summarized for ``serving.json``."""

    clients: int
    batching: bool
    batch_window_seconds: float
    max_batch: int
    requests: int
    errors: int
    duration_seconds: float
    latencies: np.ndarray  # seconds, one per completed request
    batches: int
    mean_batch_size: float
    max_batch_size: int
    coalesced: int
    batch_sizes: dict  # dispatch size -> count of dispatches

    @property
    def requests_per_second(self) -> float:
        return self.requests / self.duration_seconds

    def percentile_ms(self, q: float) -> float:
        """Exact latency percentile over every request, milliseconds."""
        return float(np.percentile(self.latencies, q) * 1e3)

    def entry(self, identical_answers: bool = False) -> dict:
        """The schema-validated ``serving.json`` entry for this run."""
        return {
            "clients": self.clients,
            "batching": self.batching,
            "batch_window_seconds": self.batch_window_seconds,
            "max_batch": self.max_batch,
            "requests": self.requests,
            "errors": self.errors,
            "duration_seconds": self.duration_seconds,
            "requests_per_second": self.requests_per_second,
            "latency_mean_ms": float(np.mean(self.latencies) * 1e3),
            "latency_p50_ms": self.percentile_ms(50.0),
            "latency_p99_ms": self.percentile_ms(99.0),
            "batches": self.batches,
            "mean_batch_size": self.mean_batch_size,
            "max_batch_size": self.max_batch_size,
            "coalesced": self.coalesced,
            "identical_answers": identical_answers,
            "batch_size_histogram": {
                str(size): count
                for size, count in sorted(self.batch_sizes.items())
            },
        }


def run_load(
    optimizer: JointOptimizer,
    loads: list[float],
    batching: bool = True,
    batch_window: float = 0.005,
    max_batch: int = 512,
) -> tuple[LoadgenReport, list[dict]]:
    """One run: ``len(loads)`` concurrent clients, one ``allocate`` each.

    Builds a fresh transport-less :class:`AllocationServer` (so batch
    statistics are per-run), launches every client as a task in the
    same tick — the "everyone hits the daemon at once" worst case —
    and waits for all responses plus a full drain.

    Returns the report and the raw result payloads (request order), so
    the benchmark can cross-check answers against direct library calls.
    Raises :class:`ConfigurationError` if any request failed: the
    benchmark workload is designed to be fully feasible, so an error
    means a bug, not an expected outcome.
    """
    config = ServingConfig(
        batch_window=batch_window, max_batch=max_batch, batching=batching
    )
    server = AllocationServer(optimizer, config)
    latencies = np.zeros(len(loads))
    results: list = [None] * len(loads)

    async def _client(k: int, load: float) -> None:
        t0 = time.perf_counter()
        response = await server.handle(
            {"op": "allocate", "id": k, "load": load}
        )
        latencies[k] = time.perf_counter() - t0
        results[k] = response

    async def _main() -> float:
        await server.start()
        tasks = [
            asyncio.ensure_future(_client(k, load))
            for k, load in enumerate(loads)
        ]
        t0 = time.perf_counter()
        await asyncio.gather(*tasks)
        duration = time.perf_counter() - t0
        await server.drain()
        return duration

    duration = asyncio.run(_main())
    failed = [r for r in results if not r["ok"]]
    if failed:
        raise ConfigurationError(
            f"{len(failed)} requests failed; first: {failed[0]['error']}"
        )
    report = LoadgenReport(
        clients=len(loads),
        batching=batching,
        batch_window_seconds=batch_window,
        max_batch=max_batch,
        requests=len(loads),
        errors=0,
        duration_seconds=duration,
        latencies=latencies,
        batches=server._batcher.batches,
        mean_batch_size=server._batcher.mean_batch_size,
        max_batch_size=max(server._batcher.batch_sizes, default=0),
        coalesced=server.coalesced,
        batch_sizes=dict(server._batcher.batch_sizes),
    )
    return report, [r["result"] for r in results]
